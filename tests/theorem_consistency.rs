//! Cross-crate property tests: every syntactic criterion in the paper is
//! checked against an independent decision procedure on randomized schemas.
//!
//! * tree-schema-ness: GYO (incremental) ≡ GYO (naive) ≡ max-weight
//!   spanning tree ≡ brute-force qual-tree enumeration;
//! * `CC ≤ GR` (Thm 3.3(i)) and `CC = GR` on trees (Thm 3.3(ii));
//! * lossless joins: CC criterion ≡ frozen-tableau semantics (Thm 5.1),
//!   ≡ subtree on trees (Cor. 5.2);
//! * γ-acyclicity: pairwise test ≡ cycle search ≡ subtree oracle
//!   (Thm 5.3) ≡ "all connected sub-databases lossless" (Fagin's (*)).

use gyo::gamma::{find_weak_gamma_cycle, is_gamma_acyclic, is_gamma_acyclic_via_subtrees};
use gyo::prelude::*;
use gyo::query::implies_lossless_semantic;
use gyo::reduce::oracle;
use gyo::reduce::{gyo_reduce_naive, is_subtree};
use gyo::schema::qual::maximum_weight_join_tree;
use gyo::tableau::cc_via_minimization;
use gyo_workloads::{random_schema, random_tree_schema};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_random_schema(seed: u64, n_rels: usize, n_attrs: usize, arity: usize) -> DbSchema {
    let mut rng = StdRng::seed_from_u64(seed);
    random_schema(&mut rng, n_rels, n_attrs, arity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_deciders_agree(seed in any::<u64>(), n in 2usize..6, attrs in 3usize..7) {
        let d = small_random_schema(seed, n, attrs, 3);
        let by_gyo = is_tree_schema(&d);
        let by_naive = gyo_reduce_naive(&d, &AttrSet::empty());
        let naive_total = by_naive.result.is_empty()
            || (by_naive.result.len() == 1 && by_naive.result.rel(0).is_empty());
        let by_mst = maximum_weight_join_tree(&d).is_some();
        let by_brute = oracle::is_tree_schema_bruteforce(&d);
        prop_assert_eq!(by_gyo, naive_total);
        prop_assert_eq!(by_gyo, by_mst);
        prop_assert_eq!(by_gyo, by_brute);
    }

    #[test]
    fn gyo_result_is_engine_independent(seed in any::<u64>(), n in 1usize..7, attrs in 2usize..8) {
        let d = small_random_schema(seed, n, attrs, 4);
        // sacred set: first half of the universe
        let u: Vec<AttrId> = d.attributes().iter().collect();
        let x = AttrSet::from_iter(u.iter().take(u.len() / 2).copied());
        let fast = gyo_reduce(&d, &x).result;
        let slow = gyo_reduce_naive(&d, &x).result;
        prop_assert_eq!(&fast, &slow);
        prop_assert!(fast.is_reduced());
    }

    #[test]
    fn trace_trees_validate(seed in any::<u64>(), n in 1usize..10, attrs in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, attrs, 0.5);
        let red = gyo_reduce(&d, &AttrSet::empty());
        prop_assert!(red.is_total());
        let tree = gyo::join_tree_from_trace(&d, &red).expect("tree schema");
        prop_assert!(tree.graph().is_valid_for(&d));
        prop_assert!(tree.attribute_connectivity_holds(&d));
    }

    #[test]
    fn cc_le_gr_always(seed in any::<u64>(), n in 1usize..5, attrs in 2usize..6) {
        let d = small_random_schema(seed, n, attrs, 3);
        let u: Vec<AttrId> = d.attributes().iter().collect();
        let x = AttrSet::from_iter(u.iter().take(2).copied());
        let cc = cc_via_minimization(&d, &x);
        let g = gyo::gr(&d, &x);
        prop_assert!(cc.le(&g), "CC={cc:?} GR={g:?}");
        // and the fast-path CC agrees with the definitional CC
        prop_assert_eq!(cc, canonical_connection(&d, &x));
    }

    #[test]
    fn lossless_deciders_agree(seed in any::<u64>(), n in 2usize..5, attrs in 3usize..6) {
        let d = small_random_schema(seed, n, attrs, 3);
        let count = d.len();
        for mask in 1u32..(1 << count) {
            let nodes: Vec<usize> = (0..count).filter(|&i| mask >> i & 1 == 1).collect();
            let by_cc = implies_lossless(&d, &nodes);
            let by_sem = implies_lossless_semantic(&d, &nodes);
            prop_assert_eq!(by_cc, by_sem, "nodes {:?} of {:?}", nodes, d);
            if is_tree_schema(&d) {
                prop_assert_eq!(by_cc, is_subtree(&d, &nodes));
            }
        }
    }

    #[test]
    fn gamma_characterizations_agree(seed in any::<u64>(), n in 2usize..5, attrs in 3usize..6) {
        let d = small_random_schema(seed, n, attrs, 3);
        let by_pairs = is_gamma_acyclic(&d);
        let by_cycles = find_weak_gamma_cycle(&d).is_none();
        let by_subtrees = is_gamma_acyclic_via_subtrees(&d);
        prop_assert_eq!(by_pairs, by_cycles, "{:?}", d);
        prop_assert_eq!(by_pairs, by_subtrees, "{:?}", d);
    }

    #[test]
    fn gamma_cycles_verify(seed in any::<u64>(), n in 3usize..6, attrs in 3usize..7) {
        let d = small_random_schema(seed, n, attrs, 3);
        if let Some(cycle) = find_weak_gamma_cycle(&d) {
            prop_assert!(cycle.verify(&d), "cycle {:?} of {:?}", cycle, d);
        }
    }

    #[test]
    fn subtree_criterion_matches_bruteforce(seed in any::<u64>(), n in 1usize..6, attrs in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, attrs, 0.5);
        let count = d.len();
        for mask in 0u32..(1 << count) {
            let nodes: Vec<usize> = (0..count).filter(|&i| mask >> i & 1 == 1).collect();
            prop_assert_eq!(
                is_subtree(&d, &nodes),
                oracle::is_subtree_bruteforce(&d, &nodes),
                "nodes {:?} of {:?}", nodes, d
            );
        }
    }

    #[test]
    fn corollary_3_2_minimal_fix(seed in any::<u64>(), n in 3usize..6, attrs in 3usize..6) {
        let d = small_random_schema(seed, n, attrs, 3);
        let w = treeifying_relation(&d);
        prop_assert!(is_tree_schema(&d.with_rel(w.clone())));
        if !is_tree_schema(&d) {
            // dropping any single attribute of W breaks the fix
            for a in w.iter() {
                let mut smaller = w.clone();
                smaller.remove(a);
                prop_assert!(
                    !is_tree_schema(&d.with_rel(smaller)),
                    "dropping {:?} from W should fail", a
                );
            }
        }
    }
}
