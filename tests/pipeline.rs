//! End-to-end pipelines through the public API: schema → classification →
//! plan → execution, checked against naive evaluation on real data.

use gyo::prelude::*;
use gyo::query::{full_reduce, solve_with_tree_projection};
use gyo::tableau::Tableau;
use gyo::treeproj::find_tree_projection;
use gyo_workloads::{jd_closed_universal, random_tree_schema, random_universal, ur_state};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Yannakakis (full reducer + early-projection joins) equals naive
    /// join-project on random tree schemas and random UR data.
    #[test]
    fn yannakakis_equals_naive(seed in any::<u64>(), n in 1usize..8, rows in 5usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.4);
        let u: Vec<AttrId> = d.attributes().iter().collect();
        let x = AttrSet::from_iter([u[0], u[u.len() - 1]]);
        let i = random_universal(&mut rng, &d.attributes(), rows, 5);
        let state = ur_state(&i, &d);
        let fast = solve_tree_query(&d, &state, &x).expect("tree schema");
        prop_assert_eq!(fast, state.eval_join_query(&x));
    }

    /// Full reduction reaches global consistency: every reduced relation
    /// equals the projection of the total join.
    #[test]
    fn full_reducer_global_consistency(seed in any::<u64>(), n in 1usize..7, rows in 5usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.4);
        let i = random_universal(&mut rng, &d.attributes(), rows, 4);
        let state = ur_state(&i, &d);
        let reduced = full_reduce(&d, &state).expect("tree schema");
        let total = state.join_all();
        for (k, r) in d.iter().enumerate() {
            prop_assert_eq!(reduced.rel(k), &total.project(r), "node {}", k);
        }
    }

    /// The §4 cyclic-schema strategy (treeification) equals naive
    /// evaluation on arbitrary schemas.
    #[test]
    fn treeification_equals_naive(seed in any::<u64>(), rows in 5usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = gyo_workloads::random_cyclic_schema(&mut rng, 5, 6, 3, 5);
        let u: Vec<AttrId> = d.attributes().iter().collect();
        let x = AttrSet::from_iter([u[0], u[u.len() - 1]]);
        let i = random_universal(&mut rng, &d.attributes(), rows, 4);
        let state = ur_state(&i, &d);
        prop_assert_eq!(
            solve_via_treeification(&d, &state, &x),
            state.eval_join_query(&x)
        );
    }

    /// CC-pruned evaluation equals naive on random tree schemas (where CC
    /// is computed by the GR fast path).
    #[test]
    fn pruning_equals_naive(seed in any::<u64>(), n in 1usize..7, rows in 5usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.5);
        let u: Vec<AttrId> = d.attributes().iter().collect();
        let x = AttrSet::from_iter(u.iter().take(2).copied());
        let q = JoinQuery::new(d.clone(), x.clone());
        let pruned = prune_irrelevant(&d, &x);
        let i = random_universal(&mut rng, &d.attributes(), rows, 4);
        let state = ur_state(&i, &d);
        prop_assert_eq!(q.eval(&state), pruned.eval(&d, &state));
    }

    /// jd-closed universal relations satisfy every lossless sub-join the CC
    /// criterion promises (Theorem 5.1 on real data).
    #[test]
    fn lossless_promises_hold_on_data(seed in any::<u64>(), n in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = gyo_workloads::random_schema(&mut rng, n, 5, 3);
        let i = jd_closed_universal(&mut rng, &d, 15, 6);
        let count = d.len();
        for mask in 1u32..(1 << count) {
            let nodes: Vec<usize> = (0..count).filter(|&k| mask >> k & 1 == 1).collect();
            if implies_lossless(&d, &nodes) {
                let d_prime = d.project_rels(&nodes);
                prop_assert!(
                    gyo::relation::satisfies_jd(&i, &d_prime),
                    "⋈D' broken for {:?} of {:?}", nodes, d
                );
            }
        }
    }
}

/// The Theorem 6.1 pipeline on the 4-ring, deterministic version (the
/// randomized variants live in `gyo-query`'s unit tests).
#[test]
fn theorem_6_1_pipeline_on_ring() {
    let mut cat = Catalog::alphabetic();
    let d = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
    let x = AttrSet::parse("bd", &mut cat).unwrap();
    let q = JoinQuery::new(d.clone(), x.clone());

    let mut p = Program::new(d.clone());
    p.join(0, 1); // abc
    p.join(2, 3); // acd — wait: bd needs a member containing bd
    let j = p.join(1, 2); // bcd
    let _ = j;
    p.join(3, 0); // abd

    let goal = canonical_connection(&d, &x).with_rel(x.clone());
    let tp = find_tree_projection(&p.p_of_d(), &goal, 2, 2_000_000)
        .expect("bcd + abd triangulate the ring around bd");

    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..6 {
        let i = random_universal(&mut rng, &d.attributes(), 25, 3);
        let state = ur_state(&i, &d);
        assert_eq!(
            solve_with_tree_projection(&p, &tp, &state, &x),
            q.eval(&state)
        );
    }
}

/// Frozen tableaux round-trip through the engine: evaluating (D, X) on the
/// frozen instance of Tab(D, X) always recovers the summary row (the
/// identity containment).
#[test]
fn frozen_tableau_identity() {
    let mut cat = Catalog::alphabetic();
    for (s, xs) in [
        ("ab, bc", "ac"),
        ("ab, bc, cd, da", "bd"),
        ("abc, cde", "ae"),
    ] {
        let d = DbSchema::parse(s, &mut cat).unwrap();
        let x = AttrSet::parse(xs, &mut cat).unwrap();
        let frozen = Tableau::standard(&d, &x).freeze();
        let i = frozen.to_relation();
        let state = ur_state(&i, &d);
        let answer = state.eval_join_query(&x);
        assert!(answer.contains(&frozen.summary), "case ({s}, {xs})");
    }
}
