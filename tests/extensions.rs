//! Integration coverage for the post-midpoint extensions, exercised
//! through the facade: UJR, the acyclicity ladder, symbolic tableau
//! evaluation, the §4 UR transformation, and program optimization.

use gyo::gamma::{acyclicity_report, AcyclicityLevel};
use gyo::prelude::*;
use gyo::query::{eliminate_dead_statements, is_ujr, is_ur_state, to_ur_state};
use gyo::tableau::evaluate;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ladder_separating_examples_through_facade() {
    let mut cat = Catalog::alphabetic();
    let levels = [
        ("ab, bc, cd", AcyclicityLevel::Gamma),
        ("abc, ab, bc", AcyclicityLevel::Beta),
        ("abc, ab, bc, ac", AcyclicityLevel::Alpha),
        ("ab, bc, cd, da", AcyclicityLevel::Cyclic),
    ];
    for (s, expected) in levels {
        let d = DbSchema::parse(s, &mut cat).unwrap();
        assert_eq!(acyclicity_report(&d).level, expected, "case {s}");
    }
}

#[test]
fn ujr_tree_vs_cyclic_through_facade() {
    let mut cat = Catalog::alphabetic();
    let mut rng = StdRng::seed_from_u64(91);
    // tree: random UR states are UJR
    let chain = DbSchema::parse("ab, bc, cd", &mut cat).unwrap();
    let i = gyo_workloads::random_universal(&mut rng, &chain.attributes(), 20, 4);
    let state = DbState::from_universal(&i, &chain);
    assert!(is_ujr(&chain, &state));
    // cyclic: the classic triangle UR state is not
    let tri = DbSchema::parse("ab, bc, ac", &mut cat).unwrap();
    let i = Relation::new(tri.attributes(), vec![vec![0, 0, 1], vec![1, 0, 0]]);
    let state = DbState::from_universal(&i, &tri);
    assert!(!is_ujr(&tri, &state));
}

#[test]
fn symbolic_and_algebraic_semantics_coincide() {
    let mut cat = Catalog::alphabetic();
    let mut rng = StdRng::seed_from_u64(92);
    let d = DbSchema::parse("abg, bcg, acf, ad, de, ea", &mut cat).unwrap();
    let x = AttrSet::parse("abc", &mut cat).unwrap();
    let t = Tableau::standard(&d, &x);
    for _ in 0..5 {
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 15, 4);
        let state = DbState::from_universal(&i, &d);
        let algebraic = state.eval_join_query(&x);
        let symbolic = evaluate(&t, &i);
        assert_eq!(symbolic, algebraic);
    }
}

/// Regression: symbolic tableau evaluation over the flat row-slice API
/// agrees with [`NaiveEngine`](gyo::NaiveEngine) answers on the paper's
/// worked examples — the chain (§3), the triangle and 4-ring (cyclic
/// cases), and the §6 running example with its irrelevant tail.
#[test]
fn tableau_evaluation_agrees_with_naive_engine_on_paper_examples() {
    use gyo::{Engine, NaiveEngine};
    let mut cat = Catalog::alphabetic();
    let mut rng = StdRng::seed_from_u64(0x1983);
    for (schema, xs) in [
        ("ab, bc, cd", "ad"),                 // §3 chain
        ("ab, bc, ac", "abc"),                // triangle
        ("ab, bc, cd, da", "ac"),             // 4-ring (Fig. 2 style)
        ("abg, bcg, acf, ad, de, ea", "abc"), // §6 running example
        ("abc, ab, bc", "ac"),                // β-separating example
    ] {
        let d = DbSchema::parse(schema, &mut cat).unwrap();
        let x = AttrSet::parse(xs, &mut cat).unwrap();
        let t = Tableau::standard(&d, &x);
        for round in 0..4 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 14, 4);
            let state = DbState::from_universal(&i, &d);
            let engine_answer = NaiveEngine
                .answer(&d, &state, &x)
                .expect("naive answers every schema");
            assert_eq!(
                evaluate(&t, &i),
                engine_answer,
                "case ({schema}, {xs}), round {round}"
            );
        }
    }
}

#[test]
fn ur_transformation_pipeline() {
    let mut cat = Catalog::alphabetic();
    let mut rng = StdRng::seed_from_u64(93);
    let d = DbSchema::parse("ab, bc, cd, de", &mut cat).unwrap();
    let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 20, 60);
    let noisy = gyo_workloads::noisy_ur_state(&mut rng, &i, &d, 15, 2000);
    assert!(!is_ur_state(&d, &noisy));
    let fixed = to_ur_state(&d, &noisy).expect("tree schema");
    assert!(is_ur_state(&d, &fixed));
    // queries agree on the noisy original and its UR reduction
    let x = AttrSet::parse("ae", &mut cat).unwrap();
    assert_eq!(noisy.eval_join_query(&x), fixed.eval_join_query(&x));
}

#[test]
fn optimizer_cooperates_with_tree_projection_machinery() {
    // Build a wasteful program for the ring query, slim it, and verify the
    // slimmed program still admits the tree projection and solves.
    let mut cat = Catalog::alphabetic();
    let d = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
    let x = AttrSet::parse("ac", &mut cat).unwrap();
    let q = JoinQuery::new(d.clone(), x.clone());

    let mut p = Program::new(d.clone());
    let abc = p.join(0, 1);
    let _waste1 = p.semijoin(3, 0);
    let _waste2 = p.join(1, 2);
    let acd = p.join(2, 3);
    let top = p.join(abc, acd);
    p.project(top, x.clone());

    let slim = eliminate_dead_statements(&p).program;
    assert!(slim.len() < p.len());

    let mut rng = StdRng::seed_from_u64(94);
    for _ in 0..5 {
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 25, 3);
        let state = DbState::from_universal(&i, &d);
        assert_eq!(slim.run(&state), q.eval(&state));
        assert_eq!(slim.run(&state), p.run(&state));
    }
}
