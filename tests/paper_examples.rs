//! Every worked example of the paper, asserted end-to-end through the
//! public facade (`gyo`). These duplicate a few crate-level unit tests on
//! purpose: the integration suite proves the *published API* reproduces the
//! paper, independent of crate internals.

use gyo::gamma::is_gamma_acyclic;
use gyo::prelude::*;
use gyo::reduce::cores::{classify_core, CoreKind};
use gyo::treeproj::{is_tree_projection, validate};

fn parse(s: &str, cat: &mut Catalog) -> DbSchema {
    DbSchema::parse(s, cat).unwrap()
}

#[test]
fn figure_1_classifications_and_qual_graphs() {
    let mut cat = Catalog::alphabetic();
    assert_eq!(classify(&parse("ab, bc, cd", &mut cat)), SchemaKind::Tree);
    assert_eq!(classify(&parse("ab, bc, ac", &mut cat)), SchemaKind::Cyclic);
    let row3 = parse("abc, cde, ace, afe", &mut cat);
    assert_eq!(classify(&row3), SchemaKind::Tree);

    // The figure's stated qual tree for row 3: abc - ace - afe with cde
    // attached to ace. Validate it explicitly as a qual graph.
    let g = QualGraph::new(4, [(0, 2), (1, 2), (2, 3)]);
    assert!(g.is_valid_for(&row3));
    assert!(g.is_tree());

    // The figure's claim that the triangle's only qual graph is the
    // triangle itself: no tree validates.
    let triangle = parse("ab, bc, ac", &mut cat);
    let chain_graph = QualGraph::new(3, [(0, 1), (1, 2)]);
    assert!(!chain_graph.is_valid_for(&triangle));
}

#[test]
fn figure_2_cores() {
    let mut cat = Catalog::alphabetic();
    assert_eq!(
        classify_core(&parse("ab, bc, cd, da", &mut cat)),
        Some(CoreKind::Aring(4))
    );
    assert_eq!(
        classify_core(&parse("bcd, acd, abd, abc", &mut cat)),
        Some(CoreKind::Aclique(4))
    );
}

#[test]
fn section_3_2_tree_projection_example() {
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, bc, cd, de, ef, fg, gh, ha", &mut cat);
    let d_pp = parse("ab, abch, cdgh, defg, ef", &mut cat);
    let d_p = parse("abef, abch, cdgh, defg, ef", &mut cat);
    assert!(d.le(&d_pp) && d_pp.le(&d_p), "D ≤ D″ ≤ D′");
    assert!(is_tree_schema(&d_pp), "D″ is a tree schema");
    assert_eq!(classify(&d), SchemaKind::Cyclic, "D is cyclic (the 8-ring)");
    assert_eq!(classify(&d_p), SchemaKind::Cyclic, "D′ is cyclic");
    assert!(is_tree_projection(&d_pp, &d_p, &d));
    // The qual tree the paper names: ab - abch - cdgh - defg - ef.
    let g = QualGraph::new(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
    assert!(JoinTree::try_new(g, &d_pp).is_some());
}

#[test]
fn section_5_1_lossless_join_example() {
    let mut cat = Catalog::alphabetic();
    let d = parse("abc, ab, bc", &mut cat);
    // ⋈D ⊭ ⋈D' for D' = (ab, bc), and D' is not a subtree of D.
    assert!(!implies_lossless(&d, &[1, 2]));
    assert!(!is_subtree(&d, &[1, 2]));
    // D is a tree schema but NOT γ-acyclic (it has the weak γ-cycle the
    // example exploits).
    assert!(is_tree_schema(&d));
    assert!(!is_gamma_acyclic(&d));
    assert!(find_weak_gamma_cycle(&d).unwrap().verify(&d));
}

#[test]
fn section_6_irrelevant_relations_example() {
    let mut cat = Catalog::alphabetic();
    let d = parse("abg, bcg, acf, ad, de, ea", &mut cat);
    let x = AttrSet::parse("abc", &mut cat).unwrap();
    // "to solve Q, R4, R5, and R6 are irrelevant, as is the f column in R3.
    //  Hence we can solve (D', abc) where D' = (R1, R2, π_ac R3)."
    let cc = canonical_connection(&d, &x);
    assert_eq!(cc, parse("abg, bcg, ac", &mut cat));
    // and joining exactly {R1, R2, R3} is sufficient (CC ≤ those three)...
    assert!(joins_only_solvable(&d, &x, &[0, 1, 2]));
    // ...but no two of them suffice.
    for pair in [[0usize, 1], [0, 2], [1, 2]] {
        assert!(!joins_only_solvable(&d, &x, &pair));
    }
}

#[test]
fn lemma_3_1_on_the_paper_style_schema() {
    let mut cat = Catalog::alphabetic();
    // Fig. 2c in spirit: two witnesses expose the two different cores.
    let d = parse("abce, bef, dif, cda, dab, bcd, cg", &mut cat);
    assert_eq!(classify(&d), SchemaKind::Cyclic);
    let x1 = AttrSet::parse("abgi", &mut cat).unwrap();
    assert_eq!(
        classify_core(&d.delete_attrs(&x1).reduce()),
        Some(CoreKind::Aring(4))
    );
    let x2 = AttrSet::parse("efgi", &mut cat).unwrap();
    assert_eq!(
        classify_core(&d.delete_attrs(&x2).reduce()),
        Some(CoreKind::Aclique(4))
    );
    let w = find_cyclic_core(&d).unwrap();
    assert_eq!(
        classify_core(&d.delete_attrs(&w.deleted).reduce()),
        Some(w.kind)
    );
}

#[test]
fn corollaries_3_1_and_3_2() {
    let mut cat = Catalog::alphabetic();
    // Corollary 3.1: D tree ⟺ GR(D) = (∅).
    for (s, tree) in [("ab, bc, cd", true), ("ab, bc, ac", false)] {
        let d = parse(s, &mut cat);
        let red = gyo_reduce(&d, &AttrSet::empty());
        assert_eq!(red.is_total(), tree, "case {s}");
    }
    // Corollary 3.2 on the ring.
    let ring = parse("ab, bc, cd, da", &mut cat);
    let w = treeifying_relation(&ring);
    assert_eq!(w, AttrSet::parse("abcd", &mut cat).unwrap());
    assert!(is_tree_schema(&ring.with_rel(w)));
}

#[test]
fn theorem_5_1_equality_iff_reduced() {
    // "(There is equality in (i) iff D' is reduced.)"
    let mut cat = Catalog::alphabetic();
    let d = parse("abc, ab, bc", &mut cat);
    // D' = (abc, ab): lossless but not reduced ⇒ CC(D, U(D')) ⊊ D'.
    assert!(implies_lossless(&d, &[0, 1]));
    let cc = canonical_connection(&d, &d.project_rels(&[0, 1]).attributes());
    assert_ne!(cc, d.project_rels(&[0, 1]));
    assert!(cc.le(&d.project_rels(&[0, 1])));
    // D' = (abc) alone: reduced ⇒ equality.
    let cc1 = canonical_connection(&d, &d.project_rels(&[0]).attributes());
    assert_eq!(cc1, d.project_rels(&[0]));
}

#[test]
fn tree_projection_hosts_support_execution() {
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, bc, cd, da", &mut cat);
    let d_p = parse("abc, acd", &mut cat);
    let tp = validate(&d_p, &d_p, &d).expect("the triangulation is its own TP");
    assert_eq!(tp.hosts, vec![0, 1]);
}
