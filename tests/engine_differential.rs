//! Differential engine suite: the naive, incremental (per-call Yannakakis),
//! cached full-reducer, and treeification-backed engines must produce
//! identical reduced states and identical query answers on every workload
//! family — chains, stars, rings, grids, random trees, and the TPC-H-like
//! snowflake in both its acyclic and cyclic forms.
//!
//! Tree families: all four engines reduce and answer, and must agree with
//! the definitional results (`π_{Rᵢ}(⋈ state)` and `π_X(⋈ state)`).
//! Cyclic families (rings, non-degenerate grids, `tpch_cyclic`): the
//! semijoin engines must *decline* with an [`EngineError::Cyclic`] whose
//! residue names the stuck cycle, while the naive AND treeify engines —
//! the two total ones — still answer, identically. The treeify engine's
//! per-call reference (`reduce_via_treeification`) is cross-checked on the
//! same states, so the cached plan and the per-call path are held together
//! too.
//!
//! The cached engines are shared across all cases (and test threads)
//! through static instances, so both plan caches (tree plans and treeified
//! plans) are exercised under heavy reuse — a disagreement caused by a
//! stale or miskeyed plan would surface here. Case counts honor
//! `PROPTEST_CASES` (CI caps at 32; nightly runs full).

use std::sync::OnceLock;

use gyo::{
    is_tree_schema, reduce_via_treeification, AttrSet, DbSchema, DbState, Engine,
    FullReducerEngine, IncrementalEngine, NaiveEngine, TreeifyEngine,
};
use gyo_workloads::{
    aring_n, chain, engine_families, family_state, grid, random_tree_schema, star, tpch_like_cyclic,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One engine instance for the whole suite: reusing it across cases is the
/// point (plan-cache hits must not change any answer).
fn cached_engine() -> &'static FullReducerEngine {
    static ENGINE: OnceLock<FullReducerEngine> = OnceLock::new();
    ENGINE.get_or_init(FullReducerEngine::new)
}

/// One treeify engine for the whole suite, for the same reason — its two
/// plan caches (tree plans in the shared inner cache, treeified plans for
/// cyclic schemas) see every schema this suite generates.
fn treeify_engine() -> &'static TreeifyEngine {
    static ENGINE: OnceLock<TreeifyEngine> = OnceLock::new();
    ENGINE.get_or_init(TreeifyEngine::new)
}

/// A two-attribute target spanning `U(D)` (first and last attribute).
fn span_target(d: &DbSchema) -> AttrSet {
    let u = d.attributes();
    let ends: Vec<_> = u
        .iter()
        .take(1)
        .chain(u.iter().skip(u.len().saturating_sub(1)))
        .collect();
    AttrSet::from_iter(ends)
}

/// Safety valve for randomized schemas: the naive ground truth materializes
/// the cross product across disconnected components (random tree schemas
/// can grow several private-attribute singletons), so cases with many
/// components are skipped — the engines' behavior there is covered by the
/// deterministic disjoint-schema cases elsewhere.
fn naive_is_tractable(d: &DbSchema) -> bool {
    d.connected_components().len() <= 3
}

/// The core differential check: reduced states and answers of all four
/// engines on `(d, state, x)`.
fn check_engines(label: &str, d: &DbSchema, state: &DbState, x: &AttrSet) {
    let naive = NaiveEngine;
    let incremental = IncrementalEngine;
    let cached = cached_engine();
    let treeify = treeify_engine();
    let tree = is_tree_schema(d);

    let n_red = naive.reduce(d, state).expect("naive reduces every schema");
    let i_red = incremental.reduce(d, state);
    let c_red = cached.reduce(d, state);
    let t_red = treeify
        .reduce(d, state)
        .expect("treeify engine is total: every schema reduces");
    assert_eq!(
        i_red.is_ok(),
        tree,
        "{label}: incremental supports iff tree"
    );
    assert_eq!(c_red.is_ok(), tree, "{label}: cached supports iff tree");
    for k in 0..d.len() {
        assert_eq!(
            t_red.rel(k),
            n_red.rel(k),
            "{label}: treeify node {k} reaches global consistency"
        );
    }
    if tree {
        let i_red = i_red.unwrap();
        let c_red = c_red.unwrap();
        for k in 0..d.len() {
            assert_eq!(
                i_red.rel(k),
                n_red.rel(k),
                "{label}: incremental node {k} reaches global consistency"
            );
            assert_eq!(
                c_red.rel(k),
                n_red.rel(k),
                "{label}: cached node {k} reaches global consistency"
            );
        }
    } else {
        // The declines must carry the cyclicity diagnostic: a nonempty
        // residue whose survivor list is parallel to it, drawn from D's
        // original indices — and both semijoin engines must agree on it.
        let i_err = i_red.unwrap_err();
        let c_err = c_red.unwrap_err();
        assert_eq!(i_err, c_err, "{label}: engines agree on the diagnostic");
        assert!(
            i_err.residue().len() >= 3,
            "{label}: a cyclic residue has at least 3 relations"
        );
        assert_eq!(
            i_err.survivors().len(),
            i_err.residue().len(),
            "{label}: survivors parallel the residue"
        );
        assert!(
            i_err.survivors().iter().all(|&i| i < d.len()),
            "{label}: survivor indices point into D"
        );
        // The per-call treeified reduction agrees with the cached one.
        let p_red = reduce_via_treeification(d, state);
        assert_eq!(
            p_red, t_red,
            "{label}: per-call treeification matches the cached plan"
        );
    }

    // Ground truth computed definitionally here (join everything, project)
    // rather than through any engine's own code path, so the naive engine
    // is under test too instead of being compared against itself.
    let joined = state
        .rels()
        .iter()
        .fold(gyo::Relation::identity(), |acc, r| acc.natural_join(r));
    let expected = if joined.is_empty() {
        gyo::Relation::empty(x.clone())
    } else {
        joined.project(x)
    };
    assert_eq!(
        naive.answer(d, state, x).expect("naive answers everything"),
        expected,
        "{label}: naive answer"
    );
    let i_ans = incremental.answer(d, state, x);
    let c_ans = cached.answer(d, state, x);
    assert_eq!(i_ans.is_ok(), tree, "{label}: incremental answers iff tree");
    assert_eq!(c_ans.is_ok(), tree, "{label}: cached answers iff tree");
    if tree {
        assert_eq!(i_ans.unwrap(), expected, "{label}: incremental answer");
        assert_eq!(c_ans.unwrap(), expected, "{label}: cached answer");
    }
    assert_eq!(
        treeify
            .answer(d, state, x)
            .expect("treeify answers everything"),
        expected,
        "{label}: treeify answer"
    );
}

fn run_family(label: &str, d: &DbSchema, seed: u64, rows: usize, domain: u64, noise: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let state = family_state(&mut rng, d, rows, domain, noise);
    let x = span_target(d);
    check_engines(label, d, &state, &x);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The naive engine is the ground truth, and it materializes `⋈D` —
    // whose size grows like (rows/domain)^|D| along join paths. Long
    // schemas therefore get domains comfortably above the row count
    // (expected fanout ≤ 1); dense joins (domain ≪ rows) are exercised on
    // short schemas where the blow-up is bounded.

    #[test]
    fn chains_agree(n in 1usize..14, rows in 4usize..13, domain in 16u64..48, seed in any::<u64>()) {
        run_family("chain", &chain(n), seed, rows, domain, 6);
    }

    #[test]
    fn short_dense_chains_agree(n in 1usize..5, rows in 5usize..25, domain in 2u64..5, seed in any::<u64>()) {
        run_family("chain_dense", &chain(n), seed, rows, domain, 6);
    }

    #[test]
    fn stars_agree(n in 1usize..11, rows in 4usize..13, domain in 24u64..48, seed in any::<u64>()) {
        run_family("star", &star(n), seed, rows, domain, 4);
    }

    #[test]
    fn small_dense_stars_agree(n in 1usize..5, rows in 5usize..25, domain in 2u64..5, seed in any::<u64>()) {
        run_family("star_dense", &star(n), seed, rows, domain, 6);
    }

    #[test]
    fn rings_decline_semijoin_engines(n in 3usize..10, rows in 4usize..13, domain in 16u64..32, seed in any::<u64>()) {
        run_family("ring", &aring_n(n), seed, rows, domain, 4);
    }

    #[test]
    fn short_dense_rings_agree(n in 3usize..6, rows in 5usize..25, domain in 2u64..5, seed in any::<u64>()) {
        // Dense cyclic data: the W-join is large relative to the state, so
        // the treeify engine's core join does real work.
        run_family("ring_dense", &aring_n(n), seed, rows, domain, 6);
    }

    #[test]
    fn dense_grids_agree(rows in 5usize..20, domain in 2u64..4, seed in any::<u64>()) {
        // The 2×2 grid is the smallest cyclic grid; dense domains make its
        // unit-square join nontrivial.
        run_family("grid_dense", &grid(2, 2), seed, rows, domain, 5);
    }

    #[test]
    fn tpch_cyclic_agrees(rows in 4usize..13, domain in 4u64..32, seed in any::<u64>()) {
        // The snowflake's cyclic closure: W is a strict subset of U(D), so
        // answer targets routinely fall outside W and exercise the
        // join-up-the-extended-tree path.
        run_family("tpch_cyclic", &tpch_like_cyclic(), seed, rows, domain, 4);
    }

    #[test]
    fn grids_agree_or_decline(r in 1usize..4, c in 2usize..4, rows in 5usize..13, domain in 16u64..40, seed in any::<u64>()) {
        // 1×c grids are paths (tree); r,c ≥ 2 grids are cyclic — both sides
        // of the dichotomy get exercised.
        run_family("grid", &grid(r, c), seed, rows, domain, 4);
    }

    #[test]
    fn random_trees_agree(n in 1usize..11, rows in 5usize..13, domain in 16u64..32, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.4);
        if naive_is_tractable(&d) {
            run_family("random_tree", &d, seed ^ 0x9E37, rows, domain, 4);
        }
    }

    #[test]
    fn engine_family_sweep(scale in 3usize..13, rows in 5usize..13, domain in 24u64..48, seed in any::<u64>()) {
        // End-to-end over the canonical family list the benches use.
        let mut rng = StdRng::seed_from_u64(seed);
        for fam in engine_families(&mut rng, scale) {
            if naive_is_tractable(&fam.schema) {
                run_family(fam.name, &fam.schema, seed ^ fam.schema.len() as u64, rows, domain, 4);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Storage equivalence: the flat row-major layout is invisible to
    /// semantics. Every relation of a reduced state round-trips unchanged
    /// through the `Vec<Vec<u64>>` shim (`to_vecs` → `Relation::new`), the
    /// masked executor's output (cached engine, `filter_by_mask` path)
    /// matches the per-call semijoin path bit for bit, and answers over
    /// shim-reconstructed states equal answers over the originals.
    #[test]
    fn flat_storage_is_semantically_invisible(n in 1usize..10, rows in 4usize..13, domain in 8u64..32, seed in any::<u64>()) {
        let d = chain(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let state = family_state(&mut rng, &d, rows, domain, 6);
        let x = span_target(&d);

        let reduced = cached_engine().reduce(&d, &state).expect("chain is a tree");
        prop_assert_eq!(
            &reduced,
            &IncrementalEngine.reduce(&d, &state).unwrap(),
            "masked executor vs per-call semijoins"
        );
        for k in 0..d.len() {
            let r = reduced.rel(k);
            // normalized invariant: rows() is strictly increasing, stride-aligned
            prop_assert_eq!(r.data().len(), r.len() * r.arity());
            let round_tripped = gyo::Relation::new(r.attrs().clone(), r.to_vecs());
            prop_assert_eq!(&round_tripped, r, "node {} round-trips through the shim", k);
        }

        // Rebuild the whole state through the shim: answers must not move.
        let rebuilt = DbState::new(
            &d,
            state.rels().iter().map(|r| gyo::Relation::new(r.attrs().clone(), r.to_vecs())).collect(),
        );
        prop_assert_eq!(&rebuilt, &state);
        prop_assert_eq!(
            cached_engine().answer(&d, &rebuilt, &x).unwrap(),
            NaiveEngine.answer(&d, &state, &x).unwrap()
        );
    }
}

#[test]
fn answers_are_stable_across_repeated_cached_calls() {
    // Plan-cache hits must be observationally identical to misses.
    let d = chain(6);
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let state = family_state(&mut rng, &d, 30, 5, 8);
    let x = span_target(&d);
    let cached = cached_engine();
    let first = cached.answer(&d, &state, &x).unwrap();
    for _ in 0..3 {
        assert_eq!(cached.answer(&d, &state, &x).unwrap(), first);
        assert_eq!(
            cached.reduce(&d, &state).unwrap(),
            NaiveEngine.reduce(&d, &state).unwrap()
        );
    }
}
