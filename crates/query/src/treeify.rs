//! §4's strategy for cyclic schemas: add the Corollary 3.2 relation
//! `W = U(GR(D))`, materialize a state for it with joins and projects, and
//! solve the resulting *tree* schema with semijoins.
//!
//! Corollary 3.2 says `W` is the least-cardinality single relation schema
//! whose addition turns `D` into a tree schema (Theorem 3.2(ii)/(iii)). The
//! W-state is built by joining the original relations that correspond to
//! GYO survivors (the "cyclic core") and projecting onto `W` — the
//! expensive step that cyclicity forces; everything after is linear
//! semijoin processing.
//!
//! The functions here — [`solve_via_treeification`] for answers,
//! [`reduce_via_treeification`] for full reductions — are deliberately
//! **per-call**: every invocation re-runs the GYO reduction, re-derives
//! the extended schema's join tree, and re-materializes each semijoin.
//! They are the reference implementations (and benchmark foils) for
//! [`TreeifyEngine`](crate::TreeifyEngine), which compiles all of the
//! data-independent work into a cached [`TreeifyPlan`](crate::TreeifyPlan)
//! once per schema; the `classify/engines/treeify_*` bench family measures
//! what the cache buys.
//!
//! # Examples
//!
//! The 4-ring is cyclic, yet treeification answers it exactly:
//!
//! ```
//! use gyo_schema::{AttrSet, Catalog, DbSchema};
//! use gyo_relation::{DbState, Relation};
//! use gyo_query::{reduce_via_treeification, solve_via_treeification};
//!
//! let mut cat = Catalog::alphabetic();
//! let ring = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
//! let i = Relation::new(
//!     ring.attributes(),
//!     vec![vec![1, 1, 1, 1], vec![1, 2, 1, 2], vec![2, 2, 2, 2]],
//! );
//! let state = DbState::from_universal(&i, &ring);
//!
//! let x = AttrSet::parse("ac", &mut cat).unwrap();
//! assert_eq!(
//!     solve_via_treeification(&ring, &state, &x),
//!     state.eval_join_query(&x),
//! );
//!
//! // Full reduction via the same route: every relation drops to its
//! // projection of the total join — on any schema, cyclic included.
//! let reduced = reduce_via_treeification(&ring, &state);
//! let total = state.join_all();
//! for (k, r) in ring.iter().enumerate() {
//!     assert_eq!(reduced.rel(k), &total.project(r));
//! }
//! ```

use gyo_reduce::{gyo_reduce, treeifying_relation};
use gyo_relation::{DbState, Relation};
use gyo_schema::{AttrSet, DbSchema};

use crate::yannakakis::{full_reduce, solve_tree_query};

/// Solves `(D, X)` on a cyclic (or tree) schema via treeification:
///
/// 1. compute `W = U(GR(D))` and the GYO survivors;
/// 2. `state(W) := π_W(⋈ of the survivors' original states)`;
/// 3. run the tree-query solver on `D ∪ (W)`.
///
/// For tree schemas `W = ∅` and the procedure degenerates to the plain
/// tree solver. Returns the query answer (always succeeds).
///
/// # Panics
///
/// Panics if `X ⊄ U(D)` or the state does not match `d`.
pub fn solve_via_treeification(d: &DbSchema, state: &DbState, x: &AttrSet) -> Relation {
    assert!(
        x.is_subset(&d.attributes()),
        "target X must be a subset of U(D)"
    );
    let red = gyo_reduce(d, &AttrSet::empty());
    if red.is_total() {
        return solve_tree_query(d, state, x).expect("total reduction ⟹ tree schema");
    }
    let w = treeifying_relation(d);
    debug_assert_eq!(w, red.result.attributes());

    // Materialize state(W) by joining the survivors' original relations.
    let mut acc = Relation::identity();
    for &i in &red.survivors {
        acc = acc.natural_join(state.rel(i));
        // early projection: only W-attributes (plus nothing else) matter,
        // but attributes needed to join later survivors must be kept; since
        // survivors' attributes ⊆ ... keep everything within U(survivors),
        // projecting onto W once at the end.
    }
    let w_state = acc.project(&w);

    let extended_schema = d.with_rel(w.clone());
    let mut rels: Vec<Relation> = state.rels().to_vec();
    rels.push(w_state);
    let extended_state = DbState::new(&extended_schema, rels);
    solve_tree_query(&extended_schema, &extended_state, x)
        .expect("Theorem 3.2(ii): D ∪ (U(GR(D))) is a tree schema")
}

/// Fully reduces a state over **any** schema — cyclic included — via
/// treeification: materialize `state(W)` for `W = U(GR(D))`, full-reduce
/// the extended tree state `D ∪ (W)`, and drop the `W` slot. The result is
/// globally consistent (`result[i] = π_{Rᵢ}(⋈ state)` for every `i`), the
/// same state [`NaiveEngine`](crate::NaiveEngine) reaches by materializing
/// the monolithic join — because `⋈(D ∪ (W)) = ⋈D` (the added relation is
/// a projection of a superset of the total join, so it filters nothing).
///
/// For tree schemas `W = ∅` and this is plain full reduction. Per-call,
/// like everything in this module; [`TreeifyEngine`](crate::TreeifyEngine)
/// is the cached counterpart.
///
/// # Panics
///
/// Panics if the state does not match `d`.
pub fn reduce_via_treeification(d: &DbSchema, state: &DbState) -> DbState {
    let red = gyo_reduce(d, &AttrSet::empty());
    if red.is_total() {
        return full_reduce(d, state).expect("total reduction ⟹ tree schema");
    }
    let w = red.result.attributes();
    let mut acc = Relation::identity();
    for &i in &red.survivors {
        acc = acc.natural_join(state.rel(i));
    }
    let w_state = acc.project(&w);

    let extended_schema = d.with_rel(w.clone());
    let mut rels: Vec<Relation> = state.rels().to_vec();
    rels.push(w_state);
    let extended_state = DbState::new(&extended_schema, rels);
    let reduced = full_reduce(&extended_schema, &extended_state)
        .expect("Theorem 3.2(ii): D ∪ (U(GR(D))) is a tree schema");
    DbState::new(d, reduced.rels()[..d.len()].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    #[test]
    fn ring_query_solved_correctly() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da", &mut cat);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        for round in 0..8 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 30, 3);
            let state = DbState::from_universal(&i, &d);
            assert_eq!(
                solve_via_treeification(&d, &state, &x),
                state.eval_join_query(&x),
                "round {round}"
            );
        }
    }

    #[test]
    fn clique_query_solved_correctly() {
        let mut cat = Catalog::alphabetic();
        let d = db("bcd, acd, abd, abc", &mut cat);
        let x = AttrSet::parse("ab", &mut cat).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..5 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 25, 3);
            let state = DbState::from_universal(&i, &d);
            assert_eq!(
                solve_via_treeification(&d, &state, &x),
                state.eval_join_query(&x),
                "round {round}"
            );
        }
    }

    #[test]
    fn reduce_via_treeification_reaches_global_consistency() {
        let mut cat = Catalog::alphabetic();
        let mut rng = StdRng::seed_from_u64(45);
        for s in ["ab, bc, ca", "ab, bc, cd, da", "ab, bc, cd, da, ax, cy"] {
            let d = db(s, &mut cat);
            for round in 0..4 {
                let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 25, 3);
                let state = DbState::from_universal(&i, &d);
                let reduced = reduce_via_treeification(&d, &state);
                let total = state.join_all();
                for (k, r) in d.iter().enumerate() {
                    let expected = if total.is_empty() {
                        Relation::empty(r.clone())
                    } else {
                        total.project(r)
                    };
                    assert_eq!(reduced.rel(k), &expected, "{s} round {round} node {k}");
                }
            }
        }
    }

    #[test]
    fn tree_schema_degenerates_to_tree_solver() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        let x = AttrSet::parse("ad", &mut cat).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 20, 3);
        let state = DbState::from_universal(&i, &d);
        assert_eq!(
            solve_via_treeification(&d, &state, &x),
            state.eval_join_query(&x)
        );
    }

    #[test]
    fn partially_cyclic_schema_joins_only_the_core() {
        // A ring with two pendant relations: survivors are the ring, the
        // pendants are handled by semijoins.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da, ax, cy", &mut cat);
        let x = AttrSet::parse("xy", &mut cat).unwrap();
        let red = gyo_reduce(&d, &AttrSet::empty());
        assert_eq!(red.survivors.len(), 4, "only the ring survives GYO");
        let mut rng = StdRng::seed_from_u64(44);
        for round in 0..5 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 30, 3);
            let state = DbState::from_universal(&i, &d);
            assert_eq!(
                solve_via_treeification(&d, &state, &x),
                state.eval_join_query(&x),
                "round {round}"
            );
        }
    }
}
