//! The §4 non-UR → UR transformation.
//!
//! "If D is a tree schema, the non-UR transformation can be done
//! efficiently using semijoins \[5\]." A database state is **UR** when it
//! consists of the projections of a single universal relation; an arbitrary
//! state (e.g. with dangling tuples) is not. For tree schemas, a full
//! reducer produces the largest UR sub-state: after global consistency,
//! every relation equals the projection of the states' own join, i.e. the
//! state *is* `{π_R(I) | R ∈ D}` for `I = ⋈ D`.
//!
//! For cyclic schemas semijoins provably cannot do this (the parity
//! instance in this module's tests is pairwise consistent yet globally
//! empty), so [`to_ur_state`] returns the
//! [`EngineError::Cyclic`](crate::EngineError) diagnostic; the
//! treeification route ([`crate::TreeifyEngine`],
//! [`crate::reduce_via_treeification`]) reaches the same largest UR
//! sub-state on any schema by paying one core join.
//!
//! # Examples
//!
//! ```
//! use gyo_schema::{Catalog, DbSchema};
//! use gyo_relation::{DbState, Relation};
//! use gyo_query::{is_ur_state, to_ur_state};
//!
//! let mut cat = Catalog::alphabetic();
//! let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
//! // The tuple (5, 6) in ab dangles: no bc tuple joins it.
//! let ab = Relation::new(d.rel(0).clone(), vec![vec![1, 2], vec![5, 6]]);
//! let bc = Relation::new(d.rel(1).clone(), vec![vec![2, 3]]);
//! let state = DbState::new(&d, vec![ab, bc]);
//! assert!(!is_ur_state(&d, &state));
//!
//! let fixed = to_ur_state(&d, &state).expect("chains are tree schemas");
//! assert!(is_ur_state(&d, &fixed));
//! assert_eq!(fixed.rel(0).len(), 1, "the dangling tuple is gone");
//!
//! // Cyclic schemas decline, naming the stuck residue.
//! let ring = DbSchema::parse("ab, bc, ca", &mut cat).unwrap();
//! let rstate = DbState::new(&ring, ring.iter()
//!     .map(|r| Relation::empty(r.clone()))
//!     .collect());
//! let err = to_ur_state(&ring, &rstate).unwrap_err();
//! assert_eq!(err.residue(), &ring);
//! ```

use gyo_relation::DbState;
use gyo_schema::DbSchema;

use crate::engine::EngineError;
use crate::yannakakis::full_reduce;

/// Whether the state is a UR database state: every relation equals the
/// projection of the join of all relations (equivalently, the projections
/// of `I = ⋈ D` reproduce the state exactly).
///
/// Computes the full join — use on test-sized states.
pub fn is_ur_state(d: &DbSchema, state: &DbState) -> bool {
    let joined = state.join_all();
    d.iter()
        .enumerate()
        .all(|(i, r)| state.rel(i) == &joined.project(r))
}

/// §4's transformation for tree schemas: semijoin-reduce the state into a
/// UR database state (the largest UR sub-state — only dangling tuples are
/// removed, the join is unchanged). Returns [`EngineError::Cyclic`] for
/// cyclic schemas, where semijoins alone cannot achieve this (see the
/// parity instance in this module's tests); the error names the stuck GYO
/// residue. [`crate::TreeifyEngine`] reaches the same largest UR sub-state
/// on *any* schema by paying one core join.
pub fn to_ur_state(d: &DbSchema, state: &DbState) -> Result<DbState, EngineError> {
    let reduced = full_reduce(d, state)?;
    debug_assert!(is_ur_state(d, &reduced), "full reduction must yield UR");
    Ok(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_relation::Relation;
    use gyo_schema::{AttrSet, Catalog};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    #[test]
    fn projections_of_a_universal_relation_need_not_be_ur() {
        // Surprising but central: {π_R I} is "UR" in the paper's sense
        // (projections of SOME universal relation), yet the state-level
        // check compares against the join of the state itself — which is
        // m_D(I), and π_R(m_D(I)) = π_R(I). So projections ARE UR states.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc", &mut cat);
        let i = Relation::new(
            d.attributes(),
            vec![vec![1, 2, 3], vec![4, 2, 5], vec![6, 7, 8]],
        );
        let state = DbState::from_universal(&i, &d);
        assert!(is_ur_state(&d, &state));
    }

    #[test]
    fn dangling_tuples_break_ur_and_reduction_restores_it() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        let mut rng = StdRng::seed_from_u64(81);
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 15, 40);
        let noisy = gyo_workloads::noisy_ur_state(&mut rng, &i, &d, 10, 1000);
        assert!(!is_ur_state(&d, &noisy), "noise tuples dangle");
        let fixed = to_ur_state(&d, &noisy).expect("tree schema");
        assert!(is_ur_state(&d, &fixed));
        // the transformation preserves the join exactly
        assert_eq!(fixed.join_all(), noisy.join_all());
    }

    #[test]
    fn cyclic_schema_not_transformable_by_semijoins() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ca", &mut cat);
        let ab = AttrSet::parse("ab", &mut cat).unwrap();
        let bc = AttrSet::parse("bc", &mut cat).unwrap();
        let ca = AttrSet::parse("ac", &mut cat).unwrap();
        // The parity instance: a+b odd, b+c odd, a+c odd. Every pair of
        // relations is semijoin-consistent (no semijoin removes anything),
        // yet the triangle join is empty — so no amount of semijoining can
        // turn this state into a UR database, which is why `to_ur_state`
        // refuses cyclic schemas.
        let state = DbState::new(
            &d,
            vec![
                Relation::new(ab, vec![vec![0, 1], vec![1, 0]]),
                Relation::new(bc, vec![vec![0, 1], vec![1, 0]]),
                Relation::new(ca, vec![vec![0, 1], vec![1, 0]]),
            ],
        );
        let err = to_ur_state(&d, &state).unwrap_err();
        assert_eq!(err.residue(), &d, "the triangle is its own residue");
        assert!(!is_ur_state(&d, &state), "empty join, nonempty relations");
        assert!(state.join_all().is_empty());
        // pairwise consistency: every semijoin is a no-op
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert_eq!(state.rel(i).semijoin(state.rel(j)), *state.rel(i));
                }
            }
        }
    }

    #[test]
    fn empty_states_are_ur() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc", &mut cat);
        let i = Relation::empty(d.attributes());
        let state = DbState::from_universal(&i, &d);
        assert!(is_ur_state(&d, &state));
    }
}
