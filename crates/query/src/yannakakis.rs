//! Semijoin processing of tree queries (the "tree case" of §4, following
//! Bernstein–Chiu \[5\] and Yannakakis \[18\]).
//!
//! For a tree schema, a **full reducer** — one upward and one downward pass
//! of semijoins along a join tree, `2·(n−1)` semijoins total — makes every
//! relation state globally consistent (`Rᵢ = π_{Rᵢ}(⋈ D)`). The query
//! `(D, X)` is then answered by joining along the tree with early
//! projection, never materializing more columns than `X` plus the
//! attributes still needed by unjoined subtrees.
//!
//! Execution here is deliberately **per-call and operator-at-a-time**
//! (each semijoin/join/projection runs through `gyo_relation`'s columnar
//! kernels, but every step materializes its result): this module is the
//! reference path the cached engine's batched selection-vector executor
//! ([`gyo_relation::semijoin_program`]) is differentially tested against —
//! two independent routes to the same reduced states and answers.

use gyo_reduce::{gyo_reduce, join_tree_from_trace};
use gyo_relation::{DbState, Relation};
use gyo_schema::{AttrSet, DbSchema, JoinTree, RootedTree};

use crate::engine::EngineError;
use crate::program::Program;

/// Builds a full-reducer semijoin [`Program`] for a tree schema: child→
/// parent semijoins in post-order, then parent→child in reverse. Returns
/// [`EngineError::Cyclic`] when `d` is cyclic (no join tree exists), with
/// the stuck GYO residue attached.
///
/// Note: semijoin statements create *new* relations (§6 semantics), so the
/// program threads the latest version of each node through the passes; the
/// final statements leave the root's and every node's reduced state as the
/// most recent versions.
pub fn full_reducer_program(d: &DbSchema) -> Result<Program, EngineError> {
    let rooted = derive_rooted_tree(d)?;
    if d.len() <= 1 {
        return Ok(Program::new(d.clone()));
    }
    Ok(full_reducer_program_on_tree(d, &rooted))
}

/// Runs the GYO reduction and roots the derived join tree at node 0; the
/// shared decline path of every tree-only entry point — per-call solvers
/// here and [`FullReducerPlan`](crate::FullReducerPlan) compilation alike.
pub(crate) fn derive_rooted_tree(d: &DbSchema) -> Result<RootedTree, EngineError> {
    let red = gyo_reduce(d, &AttrSet::empty());
    if !red.is_total() {
        return Err(EngineError::cyclic(&red));
    }
    let tree = join_tree_from_trace(d, &red).expect("total GYO reduction yields a join tree");
    Ok(if d.is_empty() {
        RootedTree {
            root: 0,
            parent: Vec::new(),
            post_order: Vec::new(),
        }
    } else {
        tree.rooted_at(0)
    })
}

/// The full-reducer [`Program`] along an already-rooted join tree.
pub(crate) fn full_reducer_program_on_tree(d: &DbSchema, rooted: &RootedTree) -> Program {
    let mut p = Program::new(d.clone());
    // current[v] = latest program relation holding node v's state
    let mut current: Vec<usize> = (0..d.len()).collect();
    // Upward pass: children before parents.
    for &v in &rooted.post_order {
        if v == rooted.root {
            continue;
        }
        let parent = rooted.parent[v];
        current[parent] = p.semijoin(current[parent], current[v]);
    }
    // Downward pass: parents before children.
    for &v in rooted.post_order.iter().rev() {
        if v == rooted.root {
            continue;
        }
        let parent = rooted.parent[v];
        current[v] = p.semijoin(current[v], current[parent]);
    }
    p
}

/// Fully reduces a state over a tree schema in place-ish (returns the
/// reduced state): after this, `state[i] = π_{Rᵢ}(⋈ D)` for every `i`.
/// Returns [`EngineError::Cyclic`] when `d` is cyclic.
pub fn full_reduce(d: &DbSchema, state: &DbState) -> Result<DbState, EngineError> {
    let rooted = derive_rooted_tree(d)?;
    Ok(full_reduce_on_rooted(d, state, &rooted))
}

/// Full reduction along a given join tree.
pub fn full_reduce_on_tree(d: &DbSchema, state: &DbState, tree: &JoinTree) -> DbState {
    if d.len() > 1 {
        full_reduce_on_rooted(d, state, &tree.rooted_at(0))
    } else {
        DbState::new(d, state.rels().to_vec())
    }
}

/// Full reduction along an already-rooted join tree.
fn full_reduce_on_rooted(d: &DbSchema, state: &DbState, rooted: &RootedTree) -> DbState {
    let mut rels: Vec<Relation> = state.rels().to_vec();
    if d.len() > 1 {
        for &v in &rooted.post_order {
            if v != rooted.root {
                let parent = rooted.parent[v];
                rels[parent] = rels[parent].semijoin(&rels[v]);
            }
        }
        for &v in rooted.post_order.iter().rev() {
            if v != rooted.root {
                let parent = rooted.parent[v];
                rels[v] = rels[v].semijoin(&rels[parent]);
            }
        }
    }
    DbState::new(d, rels)
}

/// Solves `(D, X)` on a tree schema: full reduction, then joins up the tree
/// with early projection onto `X ∪ (attributes shared with the not-yet-
/// joined part)`. Output-sensitive in the Yannakakis sense. Returns
/// [`EngineError::Cyclic`] when `d` is cyclic.
///
/// # Panics
///
/// Panics if `X ⊄ U(D)`.
pub fn solve_tree_query(
    d: &DbSchema,
    state: &DbState,
    x: &AttrSet,
) -> Result<Relation, EngineError> {
    assert!(
        x.is_subset(&d.attributes()),
        "target X must be a subset of U(D)"
    );
    let rooted = derive_rooted_tree(d)?;
    if d.is_empty() {
        return Ok(if x.is_empty() {
            Relation::identity()
        } else {
            Relation::empty(x.clone())
        });
    }
    let reduced = full_reduce_on_rooted(d, state, &rooted);
    Ok(join_up_tree(d, &reduced, x, &rooted))
}

/// The join phase of the Yannakakis solver: joins a **fully reduced** state
/// up the rooted join tree with early projection onto `X ∪ (attributes
/// still needed by unjoined subtrees)`, then projects onto `X`.
pub(crate) fn join_up_tree(
    d: &DbSchema,
    reduced: &DbState,
    x: &AttrSet,
    rooted: &RootedTree,
) -> Relation {
    // subtree_x[v] = attributes of X present in the subtree rooted at v
    // (used to prune columns as joins climb toward the root).
    let n = d.len();
    let mut subtree_x: Vec<AttrSet> = (0..n).map(|v| d.rel(v).intersect(x)).collect();
    for &v in &rooted.post_order {
        if v != rooted.root {
            let parent = rooted.parent[v];
            let merged = subtree_x[parent].union(&subtree_x[v]);
            subtree_x[parent] = merged;
        }
    }

    // acc[v]: the running join of v's subtree, projected onto
    // subtree_x[v] ∪ (Rᵥ ∩ parent's schema) — enough for X and for the
    // upcoming connection to the parent.
    let mut acc: Vec<Option<Relation>> = (0..n).map(|v| Some(reduced.rel(v).clone())).collect();
    for &v in &rooted.post_order {
        if v == rooted.root {
            continue;
        }
        let parent = rooted.parent[v];
        let keep = subtree_x[v].union(&d.rel(v).intersect(d.rel(parent)));
        let mine = acc[v].take().expect("each node joined once");
        let pruned = mine.project(&keep.intersect(mine.attrs()));
        let parent_acc = acc[parent].take().expect("parent still pending");
        acc[parent] = Some(parent_acc.natural_join(&pruned));
    }
    let root_acc = acc[rooted.root]
        .take()
        .expect("root accumulates everything");
    if root_acc.is_empty() {
        return Relation::empty(x.clone());
    }
    root_acc.project(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    #[test]
    fn full_reducer_program_has_2n_minus_2_semijoins() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, de", &mut cat);
        let p = full_reducer_program(&d).expect("chain");
        assert_eq!(p.len(), 2 * (4 - 1));
    }

    #[test]
    fn cyclic_schema_has_no_full_reducer() {
        let mut cat = Catalog::alphabetic();
        assert!(full_reducer_program(&db("ab, bc, ca", &mut cat)).is_err());
        assert!(full_reduce(
            &db("ab, bc, ca", &mut cat),
            &DbState::from_universal(
                &Relation::new(AttrSet::parse("abc", &mut cat).unwrap(), vec![]),
                &db("ab, bc, ca", &mut cat)
            )
        )
        .is_err());
    }

    #[test]
    fn full_reduce_reaches_global_consistency() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 30, 4);
            let state = DbState::from_universal(&i, &d);
            let reduced = full_reduce(&d, &state).unwrap();
            let total = state.join_all();
            for (k, r) in d.iter().enumerate() {
                assert_eq!(reduced.rel(k), &total.project(r), "node {k}");
            }
        }
    }

    #[test]
    fn solve_tree_query_matches_naive() {
        let mut cat = Catalog::alphabetic();
        let mut rng = StdRng::seed_from_u64(78);
        for (s, xs) in [
            ("ab, bc, cd", "ad"),
            ("ab, bc, cd", "b"),
            ("abc, cde, ace, afe", "af"),
            ("abc, ab, bc", "ac"),
            ("ab, cd", "ad"),
        ] {
            let d = db(s, &mut cat);
            let x = AttrSet::parse(xs, &mut cat).unwrap();
            for round in 0..5 {
                let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 25, 3);
                let state = DbState::from_universal(&i, &d);
                let fast = solve_tree_query(&d, &state, &x).expect("tree schema");
                let naive = state.eval_join_query(&x);
                assert_eq!(fast, naive, "case ({s}, {xs}), round {round}");
            }
        }
    }

    #[test]
    fn reducer_program_execution_matches_direct_reduction() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        let mut rng = StdRng::seed_from_u64(79);
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 20, 3);
        let state = DbState::from_universal(&i, &d);
        let p = full_reducer_program(&d).unwrap();
        let rels = p.execute(&state);
        let reduced = full_reduce(&d, &state).unwrap();
        // The last version of each node in the program equals the directly
        // reduced state; the root is fully reduced after the upward pass.
        // Check via schema-matched comparison of the final relations.
        for k in 0..d.len() {
            // find the last program relation with node k's schema whose
            // lineage is node k: by construction the downward pass's
            // semijoin for node k (or the upward-pass result for the root)
            // is the latest relation with that schema.
            let last = (0..rels.len())
                .rev()
                .find(|&r| p.schema_of(r) == d.rel(k) && rels[r].is_subset(state.rel(k)))
                .expect("node version exists");
            assert_eq!(&rels[last], reduced.rel(k), "node {k}");
        }
    }

    #[test]
    fn empty_state_answers_empty() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc", &mut cat);
        let empty = Relation::empty(d.attributes());
        let state = DbState::from_universal(&empty, &d);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        let ans = solve_tree_query(&d, &state, &x).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn single_relation_schema() {
        let mut cat = Catalog::alphabetic();
        let d = db("abc", &mut cat);
        let i = Relation::new(d.attributes(), vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let state = DbState::from_universal(&i, &d);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        assert_eq!(
            solve_tree_query(&d, &state, &x).unwrap(),
            state.eval_join_query(&x)
        );
    }
}
