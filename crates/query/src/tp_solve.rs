//! The Theorem 6.1/6.2 construction: a program `P` whose materialized
//! schema `P(D)` admits a tree projection w.r.t. the query can be augmented
//! with at most `2·|D″|` semijoins to solve `(D, X)`.
//!
//! Given `D″ ∈ TP(P(D), CC(D, X) ∪ (X))` with host mapping:
//!
//! 1. run `P`, obtaining states for all of `P(D)`;
//! 2. materialize `state(S) := π_S(state(host(S)))` per member `S ∈ D″`;
//! 3. full-reduce the `D″` states along a join tree (≤ `2·(|D″|−1)`
//!    semijoins);
//! 4. the member containing `X` then holds `π_S(⋈ D″)`; project onto `X`.
//!
//! Correctness on UR databases follows from Theorem 6.2 (taking
//! `CC(D, X)` rather than `D` itself is the UR-specific strengthening);
//! the tests validate against naive evaluation on random UR states and on
//! frozen canonical instances.
//!
//! Where [`crate::treeify`] adds the *one* canonical relation `U(GR(D))`,
//! this module is the general form: **any** program whose materialized
//! schema hosts a tree projection solves the query — treeification is the
//! special case where the program joins the whole GYO residue into one
//! relation.
//!
//! # Examples
//!
//! Triangulating the 4-ring with two partial joins, then solving `(D, ac)`
//! through the tree projection the triangles host:
//!
//! ```
//! use gyo_schema::{AttrSet, Catalog, DbSchema};
//! use gyo_relation::{DbState, Relation};
//! use gyo_query::{solve_with_tree_projection, Program};
//! use gyo_tableau::canonical_connection;
//! use gyo_treeproj::find_tree_projection;
//!
//! let mut cat = Catalog::alphabetic();
//! let d = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
//! let x = AttrSet::parse("ac", &mut cat).unwrap();
//!
//! // P = { abc := ab ⋈ bc;  acd := cd ⋈ da } — the two triangles.
//! let mut p = Program::new(d.clone());
//! p.join(0, 1);
//! p.join(2, 3);
//! let goal = canonical_connection(&d, &x).with_rel(x.clone());
//! let tp = find_tree_projection(&p.p_of_d(), &goal, 2, 1_000_000)
//!     .expect("the two triangles triangulate the ring");
//!
//! let i = Relation::new(
//!     d.attributes(),
//!     vec![vec![1, 1, 1, 1], vec![1, 2, 1, 2], vec![2, 2, 2, 2]],
//! );
//! let state = DbState::from_universal(&i, &d);
//! assert_eq!(
//!     solve_with_tree_projection(&p, &tp, &state, &x),
//!     state.eval_join_query(&x),
//! );
//! ```

use gyo_relation::{DbState, Relation};
use gyo_schema::AttrSet;
use gyo_treeproj::TreeProjection;

use crate::program::Program;
use crate::yannakakis::full_reduce;

/// Executes `P`, materializes the tree projection's members, full-reduces
/// them, and returns the answer `π_X(⋈ D″)`.
///
/// # Panics
///
/// Panics if the tree projection is inconsistent with `P(D)` (host out of
/// range or not containing its member), if no member contains `X`, or if
/// `D″` is not actually a tree schema — all violations of the Theorem 6.1
/// premises.
pub fn solve_with_tree_projection(
    p: &Program,
    tp: &TreeProjection,
    state: &DbState,
    x: &AttrSet,
) -> Relation {
    let p_of_d = p.p_of_d();
    // Validate hosts against P(D).
    for (i, s) in tp.schema.iter().enumerate() {
        let host = tp.hosts[i];
        assert!(
            s.is_subset(p_of_d.rel(host)),
            "tree projection member {i} not contained in its host"
        );
    }
    let rels = p.execute(state);
    let member_states: Vec<Relation> = tp
        .schema
        .iter()
        .zip(&tp.hosts)
        .map(|(s, &h)| rels[h].project(s))
        .collect();
    let member_state = DbState::new(&tp.schema, member_states);
    let reduced =
        full_reduce(&tp.schema, &member_state).expect("a tree projection is a tree schema");
    // Some member contains X (the TP is taken w.r.t. … ∪ (X)).
    let holder = tp
        .schema
        .iter()
        .position(|s| x.is_subset(s))
        .expect("some tree projection member must contain X");
    // After full reduction, π_X of the holder is π_X(⋈ D″) — but only when
    // the holder's state is globally consistent, which full reduction
    // guarantees.
    reduced.rel(holder).project(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinQuery;
    use gyo_schema::{Catalog, DbSchema};
    use gyo_tableau::canonical_connection;
    use gyo_treeproj::find_tree_projection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    /// The running example: the 4-ring with X = ac, triangulated by the
    /// program P = { abc := ab ⋈ bc; acd := cd ⋈ da }.
    fn ring_setup() -> (DbSchema, AttrSet, Program, TreeProjection, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da", &mut cat);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        let mut p = Program::new(d.clone());
        p.join(0, 1); // abc
        p.join(2, 3); // acd
        let cc = canonical_connection(&d, &x);
        let goal = cc.with_rel(x.clone());
        let tp = find_tree_projection(&p.p_of_d(), &goal, 2, 1_000_000)
            .expect("the two triangles triangulate the ring");
        (d, x, p, tp, cat)
    }

    #[test]
    fn theorem_6_1_ring_is_solved() {
        let (d, x, p, tp, _) = ring_setup();
        let q = JoinQuery::new(d.clone(), x.clone());
        let mut rng = StdRng::seed_from_u64(51);
        for round in 0..10 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 30, 3);
            let state = DbState::from_universal(&i, &d);
            assert_eq!(
                solve_with_tree_projection(&p, &tp, &state, &x),
                q.eval(&state),
                "round {round}"
            );
        }
    }

    #[test]
    fn semijoin_budget_respected() {
        // Theorem 6.1 allows ≤ 2·|D| semijoins; the full reducer uses
        // 2·(|D″|−1).
        let (_, _, _, tp, _) = ring_setup();
        assert!(2 * (tp.schema.len() - 1) <= 2 * 4);
    }

    #[test]
    fn frozen_instance_agrees_too() {
        let (d, x, p, tp, _) = ring_setup();
        let q = JoinQuery::new(d.clone(), x.clone());
        let frozen = gyo_tableau::Tableau::standard(&d, &x).freeze();
        let i = frozen.to_relation();
        let state = DbState::from_universal(&i, &d);
        assert_eq!(
            solve_with_tree_projection(&p, &tp, &state, &x),
            q.eval(&state)
        );
    }

    #[test]
    fn works_when_projection_member_hosted_on_base_relation() {
        // Tree schema: the TP can be D itself, hosts = identity.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        // X must fit inside one materialized relation for a TP w.r.t.
        // CC ∪ (X) to exist; the identity program materializes nothing, so
        // pick a target inside one base relation.
        let x = AttrSet::parse("b", &mut cat).unwrap();
        let p = Program::new(d.clone());
        let goal = canonical_connection(&d, &x).with_rel(x.clone());
        let tp = find_tree_projection(&p.p_of_d(), &goal, 2, 100_000).expect("tree");
        let q = JoinQuery::new(d.clone(), x.clone());
        let mut rng = StdRng::seed_from_u64(53);
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 25, 3);
        let state = DbState::from_universal(&i, &d);
        assert_eq!(
            solve_with_tree_projection(&p, &tp, &state, &x),
            q.eval(&state)
        );
    }

    #[test]
    fn theorem_6_3_contrapositive_no_tp_means_not_solving() {
        // P = identity program extended with a single partial join on the
        // ring: P(D) admits no TP w.r.t. (CC ∪ X)… and indeed P (joining
        // everything it built) fails on some instance.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da", &mut cat);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        let mut p = Program::new(d.clone());
        let j = p.join(0, 1); // abc only
        p.project(j, x.clone());
        let cc = canonical_connection(&d, &x);
        let goal = cc.with_rel(x.clone());
        assert!(
            find_tree_projection(&p.p_of_d(), &goal, 2, 1_000_000).is_none(),
            "one triangle does not triangulate the ring"
        );
        let q = JoinQuery::new(d.clone(), x);
        let mut rng = StdRng::seed_from_u64(54);
        assert!(
            p.find_counterexample(&q, &mut rng, 50, 30, 3).is_some(),
            "Theorem 6.3: without a tree projection P cannot solve (D, X)"
        );
    }
}
