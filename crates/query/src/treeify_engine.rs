//! The treeification-backed **total** engine: cyclic schemas answered
//! through a cached tree plan over `D ∪ (U(GR(D)))`.
//!
//! The paper's central move for cyclic schemas (§4, building on
//! Corollary 3.2) is that cyclicity is not a dead end: adding the single
//! relation `W = U(GR(D))` — the attributes of the stuck GYO residue —
//! turns *any* schema into a tree schema (Theorem 3.2(ii)), and `W` is the
//! least-cardinality relation that does so. The price is one data-dependent
//! join: `state(W) = π_W(⋈ of the residue's states)`. Everything before and
//! after that join is linear semijoin processing on a tree schema — exactly
//! what the cached full-reducer machinery already does well.
//!
//! [`TreeifyEngine`] packages that strategy as an [`Engine`] that **never
//! declines**:
//!
//! * **Tree schemas** delegate to an inner [`FullReducerEngine`] — same
//!   plan cache, same selection-vector kernels, zero overhead beyond the
//!   cache probes (one on the always-empty-for-trees treeified cache, one
//!   the full-reducer engine pays anyway).
//! * **Cyclic schemas** get a cached [`TreeifyPlan`]: the treeifying
//!   relation `W`, a connectivity-greedy join order over the GYO survivors
//!   (computed once at plan time, so per-call materialization avoids
//!   accidental cross products inside connected residues), and the
//!   compiled full-reducer plan for the extended schema `D ∪ (W)` — stored
//!   in the *shared* plan cache, compiled once, reused across calls.
//!   Per call, the engine materializes `state(W)`, runs the extended
//!   plan's semijoin program through the reusable
//!   [`SelVec`](gyo_relation::SelVec) scratch, and either projects the
//!   reduced `W` (when `X ⊆ W`) or joins up the extended tree.
//!
//! The cyclic verdict that routes a schema onto the treeify path is the
//! [`EngineError::Cyclic`] diagnostic the inner engine caches — the stuck
//! residue *is* the input to treeification, so nothing is recomputed.
//!
//! Correctness: `⋈(D ∪ (W)) = ⋈D`, because every tuple of `⋈D` restricted
//! to the survivors satisfies each survivor's relation, so its `W`
//! projection is in `state(W)` — the added relation filters nothing.
//! Full reduction of the extended tree state therefore leaves each original
//! relation at `π_{Rᵢ}(⋈D)` (global consistency), which is exactly
//! [`NaiveEngine`](crate::NaiveEngine)'s definitional reduce; the repo's
//! differential suite (`tests/engine_differential.rs`) holds the two
//! engines to identical results on every cyclic workload family.
//!
//! # Examples
//!
//! ```
//! use gyo_schema::{AttrSet, Catalog, DbSchema};
//! use gyo_relation::{DbState, Relation};
//! use gyo_query::{Engine, TreeifyEngine};
//!
//! let mut cat = Catalog::alphabetic();
//! let ring = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
//! let i = Relation::new(
//!     ring.attributes(),
//!     vec![vec![1, 1, 1, 1], vec![1, 2, 1, 2], vec![3, 3, 3, 3]],
//! );
//! let state = DbState::from_universal(&i, &ring);
//!
//! let engine = TreeifyEngine::new();
//! // The ring is cyclic — the semijoin engines decline it — yet the
//! // treeify engine answers, and agrees with the definitional evaluation.
//! let x = AttrSet::parse("ac", &mut cat).unwrap();
//! let answer = engine.answer(&ring, &state, &x).unwrap();
//! assert_eq!(answer, state.eval_join_query(&x));
//!
//! // One treeified plan was compiled and cached; repeats hit it.
//! assert_eq!(engine.cached_treeified_count(), 1);
//! engine.answer(&ring, &state, &x).unwrap();
//! assert_eq!(engine.cached_treeified_count(), 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gyo_relation::{DbState, Relation};
use gyo_schema::{AttrSet, DbSchema, FxHashMap};

use crate::engine::{Engine, EngineError, FullReducerEngine, FullReducerPlan};
use crate::yannakakis::join_up_tree;

/// A compiled treeification plan for one **cyclic** schema: everything
/// about `D ∪ (U(GR(D)))` that does not depend on data.
#[derive(Clone, Debug)]
pub struct TreeifyPlan {
    /// The extended tree schema `D ∪ (W)`; `W` is the last relation.
    extended: DbSchema,
    /// `W = U(GR(D))` — the treeifying relation (Corollary 3.2).
    w: AttrSet,
    /// GYO-survivor indices in a connectivity-greedy join order (each
    /// next survivor shares attributes with the already-joined prefix
    /// whenever the residue permits, so `state(W)` materializes without
    /// intermediate cross products on connected residues), each paired
    /// with its projection onto `Rᵢ ∩ W` — `None` when the relation lies
    /// entirely inside `W`. Projecting *before* joining is sound because
    /// an attribute shared by two survivors can never be GYO-deleted
    /// (deletion requires isolation), so every non-`W` attribute is
    /// private to one survivor and contributes nothing to `π_W` — it
    /// would only inflate the join's intermediates.
    join_order: Vec<(usize, Option<AttrSet>)>,
    /// The compiled full-reducer plan for `extended` — owned by the
    /// engine's shared plan cache, referenced here.
    inner: Arc<FullReducerPlan>,
}

impl TreeifyPlan {
    /// Compiles the plan from a cyclic verdict. The `err` diagnostic
    /// supplies the residue and survivors, so the GYO reduction is not
    /// re-run; the extended schema's full-reducer plan is compiled through
    /// (and cached in) `engine`'s plan cache.
    fn compile(d: &DbSchema, err: &EngineError, engine: &FullReducerEngine) -> Self {
        let w = err.residue().attributes();
        let join_order = connected_order(d, err.survivors())
            .into_iter()
            .map(|i| {
                let core = d.rel(i).intersect(&w);
                let proj = (&core != d.rel(i)).then_some(core);
                (i, proj)
            })
            .collect();
        let extended = d.with_rel(w.clone());
        let inner = engine
            .plan(&extended)
            .expect("Theorem 3.2(ii): D ∪ (U(GR(D))) is a tree schema");
        Self {
            extended,
            w,
            join_order,
            inner,
        }
    }

    /// The treeifying relation `W = U(GR(D))`.
    pub fn w(&self) -> &AttrSet {
        &self.w
    }

    /// The extended tree schema `D ∪ (W)` the plan reduces over.
    pub fn extended(&self) -> &DbSchema {
        &self.extended
    }

    /// Survivor indices in the order their states are joined into
    /// `state(W)`.
    pub fn join_order(&self) -> Vec<usize> {
        self.join_order.iter().map(|&(i, _)| i).collect()
    }

    /// The compiled full-reducer plan for the extended schema.
    pub fn tree_plan(&self) -> &FullReducerPlan {
        &self.inner
    }
}

/// Orders `survivors` greedily by connectivity: start from the first, and
/// repeatedly append a survivor sharing an attribute with the accumulated
/// attribute set, falling back to the next unvisited one when the residue
/// is disconnected (where a cross product is inherent to `W` anyway).
fn connected_order(d: &DbSchema, survivors: &[usize]) -> Vec<usize> {
    let mut order = Vec::with_capacity(survivors.len());
    let mut remaining: Vec<usize> = survivors.to_vec();
    let mut seen = AttrSet::empty();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&i| !d.rel(i).intersect(&seen).is_empty())
            .unwrap_or(0);
        let i = remaining.remove(pick);
        seen = seen.union(d.rel(i));
        order.push(i);
    }
    order
}

/// The treeification-backed engine: **total** over all schemas.
///
/// Tree schemas run on the inner [`FullReducerEngine`] (shared plan
/// cache); cyclic schemas run over a cached [`TreeifyPlan`] — one
/// data-dependent core join to materialize `state(W)`, then the compiled
/// semijoin program and tree-join machinery of the extended schema. See
/// the [module docs](self) for the construction and its correctness
/// argument.
#[derive(Debug, Default)]
pub struct TreeifyEngine {
    inner: FullReducerEngine,
    treeified: Mutex<FxHashMap<Vec<AttrSet>, Arc<TreeifyPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TreeifyEngine {
    /// A fresh engine with empty plan caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// The inner full-reducer engine (to share its plan cache, or to
    /// inspect it). Both the tree-schema plans *and* every treeified
    /// extended-schema plan live in this engine's cache.
    pub fn inner(&self) -> &FullReducerEngine {
        &self.inner
    }

    /// The cached treeify plan for `d`, counting a hit when present. The
    /// engine probes this **before** the inner plan cache, so warm cyclic
    /// calls never touch (or clone) the cached `EngineError` verdict.
    fn lookup_treeified(&self, d: &DbSchema) -> Option<Arc<TreeifyPlan>> {
        let plan = self
            .treeified
            .lock()
            .expect("treeified plan cache lock")
            .get(d.rels())
            .cloned();
        if plan.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        plan
    }

    /// The cached treeify plan for a schema already known to be cyclic,
    /// compiling on first sight. `err` must be the cyclic verdict the
    /// inner engine produced for `d` — its residue drives the compilation.
    pub fn treeified_plan(&self, d: &DbSchema, err: &EngineError) -> Arc<TreeifyPlan> {
        if let Some(plan) = self.lookup_treeified(d) {
            return plan;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(TreeifyPlan::compile(d, err, &self.inner));
        self.treeified
            .lock()
            .expect("treeified plan cache lock")
            .insert(d.rels().to_vec(), plan.clone());
        plan
    }

    /// Runs the cyclic-schema pipeline over an already-known plan: the
    /// core join, the extended plan's semijoin program, truncation back
    /// to `D`'s relations.
    fn reduce_cyclic(&self, d: &DbSchema, state: &DbState, plan: &TreeifyPlan) -> DbState {
        let mut rels = self.reduce_extended(plan, state);
        rels.truncate(d.len());
        DbState::new(d, rels)
    }

    fn answer_cyclic(&self, state: &DbState, x: &AttrSet, plan: &TreeifyPlan) -> Relation {
        let rels = self.reduce_extended(plan, state);
        // After full reduction the W slot holds π_W(⋈D); when the target
        // fits inside W, one projection finishes the query.
        if x.is_subset(&plan.w) {
            let w_reduced = rels.last().expect("extended state is nonempty");
            return w_reduced.project(x);
        }
        let reduced = DbState::new(&plan.extended, rels);
        join_up_tree(&plan.extended, &reduced, x, plan.inner.rooted())
    }

    /// Number of cyclic schemas with a cached treeified plan.
    pub fn cached_treeified_count(&self) -> usize {
        self.treeified
            .lock()
            .expect("treeified plan cache lock")
            .len()
    }

    /// Drops every cached plan, treeified and tree alike.
    pub fn clear_cache(&self) {
        self.treeified
            .lock()
            .expect("treeified plan cache lock")
            .clear();
        self.inner.clear_cache();
    }

    /// `(hits, misses)` of the treeified-plan cache since construction.
    #[cfg(test)]
    pub(crate) fn treeified_cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// `state(W) = π_W(⋈ of the survivors' states)`, joined in the plan's
    /// connectivity order with each survivor pre-projected onto `Rᵢ ∩ W` —
    /// the one data-dependent step cyclicity forces. The accumulated
    /// attributes end up exactly `W` (the residue relations cover it), so
    /// no final projection is needed.
    fn materialize_w(&self, plan: &TreeifyPlan, state: &DbState) -> Relation {
        let mut acc = Relation::identity();
        for (i, proj) in &plan.join_order {
            let joined = match proj {
                Some(core) => acc.natural_join(&state.rel(*i).project(core)),
                None => acc.natural_join(state.rel(*i)),
            };
            acc = joined;
            if acc.is_empty() {
                // The core join is empty: so is its projection — and so is
                // the whole query; skip the remaining survivor joins.
                return Relation::empty(plan.w.clone());
            }
        }
        debug_assert_eq!(acc.attrs(), &plan.w, "residue relations cover W");
        acc
    }

    /// Reduces the extended state `state ∪ (state(W))` with the compiled
    /// plan; returns the reduced relation list (original relations first,
    /// `W` last).
    fn reduce_extended(&self, plan: &TreeifyPlan, state: &DbState) -> Vec<Relation> {
        let mut rels = state.rels().to_vec();
        rels.push(self.materialize_w(plan, state));
        self.inner.run_steps(&mut rels, plan.inner.steps());
        rels
    }
}

impl Engine for TreeifyEngine {
    fn name(&self) -> &'static str {
        "treeify"
    }

    fn reduce(&self, d: &DbSchema, state: &DbState) -> Result<DbState, EngineError> {
        // Warm cyclic schemas hit the treeified cache directly — the
        // cached cyclic verdict (and its residue clone) is only touched on
        // the compile path.
        if let Some(plan) = self.lookup_treeified(d) {
            return Ok(self.reduce_cyclic(d, state, &plan));
        }
        match self.inner.plan(d) {
            Ok(plan) => Ok(self.inner.reduce_with_plan(d, state, &plan)),
            Err(err) => {
                let plan = self.treeified_plan(d, &err);
                Ok(self.reduce_cyclic(d, state, &plan))
            }
        }
    }

    fn answer(&self, d: &DbSchema, state: &DbState, x: &AttrSet) -> Result<Relation, EngineError> {
        assert!(
            x.is_subset(&d.attributes()),
            "target X must be a subset of U(D)"
        );
        if let Some(plan) = self.lookup_treeified(d) {
            return Ok(self.answer_cyclic(state, x, &plan));
        }
        match self.inner.plan(d) {
            Ok(plan) => Ok(self.inner.answer_with_plan(d, state, x, &plan)),
            Err(err) => {
                let plan = self.treeified_plan(d, &err);
                Ok(self.answer_cyclic(state, x, &plan))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NaiveEngine;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    fn random_state(d: &DbSchema, seed: u64, rows: usize, domain: u64) -> DbState {
        let mut rng = StdRng::seed_from_u64(seed);
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), rows, domain);
        DbState::from_universal(&i, d)
    }

    #[test]
    fn agrees_with_naive_on_cyclic_schemas() {
        let mut cat = Catalog::alphabetic();
        let engine = TreeifyEngine::new();
        for (s, xs) in [
            ("ab, bc, ca", "ab"),
            ("ab, bc, cd, da", "ac"),
            ("bcd, acd, abd, abc", "ab"),
            ("ab, bc, cd, da, ax, cy", "xy"),
        ] {
            let d = db(s, &mut cat);
            let x = AttrSet::parse(xs, &mut cat).unwrap();
            for seed in 0..4 {
                let state = random_state(&d, 0xBEEF ^ seed, 25, 3);
                let n_red = NaiveEngine.reduce(&d, &state).unwrap();
                assert_eq!(engine.reduce(&d, &state).unwrap(), n_red, "{s} seed {seed}");
                assert_eq!(
                    engine.answer(&d, &state, &x).unwrap(),
                    NaiveEngine.answer(&d, &state, &x).unwrap(),
                    "{s} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn tree_schemas_delegate_to_the_inner_engine() {
        let mut cat = Catalog::alphabetic();
        let engine = TreeifyEngine::new();
        let d = db("ab, bc, cd", &mut cat);
        let state = random_state(&d, 11, 20, 4);
        let x = AttrSet::parse("ad", &mut cat).unwrap();
        assert_eq!(
            engine.answer(&d, &state, &x).unwrap(),
            state.eval_join_query(&x)
        );
        // No treeified plan was compiled; the tree plan sits in the shared
        // inner cache.
        assert_eq!(engine.cached_treeified_count(), 0);
        assert_eq!(engine.inner().cached_plan_count(), 1);
        assert_eq!(engine.treeified_cache_stats(), (0, 0));
    }

    #[test]
    fn treeified_plan_cache_hits_and_misses() {
        let mut cat = Catalog::alphabetic();
        let engine = TreeifyEngine::new();
        let ring = db("ab, bc, cd, da", &mut cat);
        let state = random_state(&ring, 5, 15, 3);

        engine.reduce(&ring, &state).unwrap();
        assert_eq!(
            engine.treeified_cache_stats(),
            (0, 1),
            "first sight compiles"
        );
        // Both the cyclic verdict for the ring AND the tree plan for the
        // extended schema live in the shared inner cache.
        assert_eq!(engine.inner().cached_plan_count(), 2);

        engine.reduce(&ring, &state).unwrap();
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        engine.answer(&ring, &state, &x).unwrap();
        assert_eq!(engine.treeified_cache_stats(), (2, 1), "repeats hit");
        assert_eq!(engine.cached_treeified_count(), 1);

        // A different cyclic schema compiles its own plan.
        let triangle = db("ab, bc, ca", &mut cat);
        let t_state = random_state(&triangle, 6, 10, 3);
        engine.reduce(&triangle, &t_state).unwrap();
        assert_eq!(engine.treeified_cache_stats(), (2, 2));
        assert_eq!(engine.cached_treeified_count(), 2);

        engine.clear_cache();
        assert_eq!(engine.cached_treeified_count(), 0);
        assert_eq!(engine.inner().cached_plan_count(), 0);
        engine.reduce(&ring, &state).unwrap();
        assert_eq!(
            engine.treeified_cache_stats(),
            (2, 3),
            "cleared cache recompiles"
        );
    }

    #[test]
    fn plan_exposes_the_treeification_structure() {
        let mut cat = Catalog::alphabetic();
        let engine = TreeifyEngine::new();
        // Ring with two pendants: survivors are the ring; W is its span.
        let d = db("ab, bc, cd, da, ax, cy", &mut cat);
        let err = engine.inner().plan(&d).unwrap_err();
        let plan = engine.treeified_plan(&d, &err);
        assert_eq!(plan.w().to_notation(&cat), "abcd");
        assert_eq!(plan.extended().len(), d.len() + 1);
        assert_eq!(plan.extended().rel(d.len()), plan.w());
        // The join order covers exactly the survivors, connectedly.
        let mut sorted = plan.join_order();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        let mut seen = AttrSet::empty();
        for (k, &i) in plan.join_order().iter().enumerate() {
            if k > 0 {
                assert!(
                    !d.rel(i).intersect(&seen).is_empty(),
                    "join order stays connected on a connected residue"
                );
            }
            seen = seen.union(d.rel(i));
        }
        // 2·(n−1) steps for the extended schema's full reducer.
        assert_eq!(plan.tree_plan().steps().len(), 2 * (d.len() + 1 - 1));
    }

    #[test]
    fn connected_order_handles_disconnected_residues() {
        let mut cat = Catalog::alphabetic();
        // Two disjoint triangles: the residue is disconnected; the order
        // must still cover every survivor once.
        let d = db("ab, bc, ca, xy, yz, zx", &mut cat);
        let engine = TreeifyEngine::new();
        let err = engine.inner().plan(&d).unwrap_err();
        let plan = engine.treeified_plan(&d, &err);
        let mut sorted = plan.join_order();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        // And the engine still answers (the W-state is the cross product
        // of the two triangle joins — inherent to U(GR(D)) here).
        let state = random_state(&d, 21, 8, 2);
        let x = AttrSet::parse("az", &mut cat).unwrap();
        assert_eq!(
            engine.answer(&d, &state, &x).unwrap(),
            NaiveEngine.answer(&d, &state, &x).unwrap()
        );
    }

    #[test]
    fn empty_core_join_short_circuits() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ca", &mut cat);
        // The parity instance: pairwise consistent, globally empty.
        let ab = AttrSet::parse("ab", &mut cat).unwrap();
        let bc = AttrSet::parse("bc", &mut cat).unwrap();
        let ca = AttrSet::parse("ac", &mut cat).unwrap();
        let state = DbState::new(
            &d,
            vec![
                Relation::new(ab, vec![vec![0, 1], vec![1, 0]]),
                Relation::new(bc, vec![vec![0, 1], vec![1, 0]]),
                Relation::new(ca, vec![vec![0, 1], vec![1, 0]]),
            ],
        );
        let engine = TreeifyEngine::new();
        let reduced = engine.reduce(&d, &state).unwrap();
        for k in 0..d.len() {
            assert!(
                reduced.rel(k).is_empty(),
                "empty join ⟹ empty reduced relations (node {k})"
            );
        }
        let x = AttrSet::parse("ab", &mut cat).unwrap();
        assert!(engine.answer(&d, &state, &x).unwrap().is_empty());
    }

    #[test]
    fn answers_targets_outside_w() {
        // Pendant attributes are GYO-deleted, so they sit outside W; the
        // answer path must join up the extended tree rather than project W.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da, ax, cy", &mut cat);
        let engine = TreeifyEngine::new();
        let x = AttrSet::parse("xy", &mut cat).unwrap();
        let err = engine.inner().plan(&d).unwrap_err();
        let plan = engine.treeified_plan(&d, &err);
        assert!(!x.is_subset(plan.w()), "precondition: X ⊄ W");
        for seed in 0..4 {
            let state = random_state(&d, 0xA11CE ^ seed, 30, 3);
            assert_eq!(
                engine.answer(&d, &state, &x).unwrap(),
                state.eval_join_query(&x),
                "seed {seed}"
            );
        }
    }
}
