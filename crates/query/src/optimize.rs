//! Program optimization: dead-statement elimination.
//!
//! §6 defines a program's output as the value of its *last* statement, so
//! any statement whose result is not (transitively) consumed by the last
//! one is dead. Eliminating dead statements never changes the output and
//! shrinks `P(D)` — which can only *shrink* the tree-projection search
//! space of Theorems 6.1–6.4, never invalidate a solution that used live
//! relations.

use gyo_schema::FxHashSet;

use crate::program::{Program, RelRef, Statement};

/// The result of dead-statement elimination.
#[derive(Clone, Debug)]
pub struct Slimmed {
    /// The optimized program (same base schema, same output).
    pub program: Program,
    /// Old statement index → new statement index (dead statements absent).
    pub remap: Vec<Option<usize>>,
}

/// Removes every statement that does not feed the final statement.
///
/// # Panics
///
/// Panics if the program has no statements (there is no output to
/// preserve).
pub fn eliminate_dead_statements(p: &Program) -> Slimmed {
    assert!(!p.is_empty(), "a program needs an output statement");
    let base = p.base().len();
    let stmts = p.statements();
    let last = stmts.len() - 1;

    // Mark live statements by walking the lineage of the last one.
    let mut live = vec![false; stmts.len()];
    let mut stack: Vec<usize> = vec![last];
    let mut seen: FxHashSet<usize> = FxHashSet::default();
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        live[s] = true;
        let mut visit = |r: RelRef| {
            if r >= base {
                stack.push(r - base);
            }
        };
        match &stmts[s] {
            Statement::Join { left, right } | Statement::Semijoin { left, right } => {
                visit(*left);
                visit(*right);
            }
            Statement::Project { src, .. } => visit(*src),
        }
    }

    // Rebuild with remapped operands.
    let mut remap: Vec<Option<usize>> = vec![None; stmts.len()];
    let mut slim = Program::new(p.base().clone());
    for (s, stmt) in stmts.iter().enumerate() {
        if !live[s] {
            continue;
        }
        let fix = |r: RelRef| -> RelRef {
            if r < base {
                r
            } else {
                base + remap[r - base].expect("operands of live statements are live")
            }
        };
        let new_idx = match stmt {
            Statement::Join { left, right } => slim.join(fix(*left), fix(*right)),
            Statement::Semijoin { left, right } => slim.semijoin(fix(*left), fix(*right)),
            Statement::Project { src, onto } => slim.project(fix(*src), onto.clone()),
        };
        remap[s] = Some(new_idx - base);
    }
    Slimmed {
        program: slim,
        remap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_relation::{DbState, Relation};
    use gyo_schema::{AttrSet, Catalog, DbSchema};

    fn setup() -> (DbSchema, DbState, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc, cd", &mut cat).unwrap();
        let i = Relation::new(
            d.attributes(),
            vec![vec![1, 2, 3, 4], vec![5, 2, 3, 6], vec![1, 7, 8, 9]],
        );
        let state = DbState::from_universal(&i, &d);
        (d, state, cat)
    }

    #[test]
    fn dead_joins_are_removed() {
        let (d, state, mut cat) = setup();
        let mut p = Program::new(d);
        let j1 = p.join(0, 1); // live
        let _dead1 = p.join(1, 2); // dead
        let _dead2 = p.semijoin(0, 2); // dead
        let out = p.project(j1, AttrSet::parse("ac", &mut cat).unwrap()); // live
        let _ = out;
        let slim = eliminate_dead_statements(&p);
        assert_eq!(slim.program.len(), 2);
        assert_eq!(slim.program.run(&state), p.run(&state));
        assert_eq!(slim.remap[0], Some(0));
        assert_eq!(slim.remap[1], None);
        assert_eq!(slim.remap[2], None);
        assert_eq!(slim.remap[3], Some(1));
    }

    #[test]
    fn fully_live_program_is_unchanged() {
        let (d, state, _) = setup();
        let mut p = Program::new(d);
        let j1 = p.join(0, 1);
        let j2 = p.join(j1, 2);
        let _ = j2;
        let slim = eliminate_dead_statements(&p);
        assert_eq!(slim.program.len(), p.len());
        assert_eq!(slim.program.statements(), p.statements());
        assert_eq!(slim.program.run(&state), p.run(&state));
    }

    #[test]
    fn diamond_lineage_kept_once() {
        let (d, state, mut cat) = setup();
        let mut p = Program::new(d);
        let j1 = p.join(0, 1); // shared by two consumers
        let pr = p.project(j1, AttrSet::parse("b", &mut cat).unwrap());
        let _sj = p.semijoin(2, pr); // dead
        let out = p.join(j1, pr); // live, reuses j1 twice over
        let _ = out;
        let slim = eliminate_dead_statements(&p);
        assert_eq!(slim.program.len(), 3);
        assert_eq!(slim.program.run(&state), p.run(&state));
    }

    #[test]
    fn p_of_d_shrinks_but_output_schema_is_stable() {
        let (d, _, mut cat) = setup();
        let mut p = Program::new(d);
        let j1 = p.join(0, 1);
        let _dead = p.join(0, 2);
        p.project(j1, AttrSet::parse("a", &mut cat).unwrap());
        let slim = eliminate_dead_statements(&p).program;
        assert!(slim.p_of_d().len() < p.p_of_d().len());
        let last_old = p.schema_of(p.base().len() + p.len() - 1).clone();
        let last_new = slim.schema_of(slim.base().len() + slim.len() - 1).clone();
        assert_eq!(last_old, last_new);
    }

    #[test]
    #[should_panic(expected = "output statement")]
    fn empty_program_rejected() {
        let (d, _, _) = setup();
        eliminate_dead_statements(&Program::new(d));
    }
}
