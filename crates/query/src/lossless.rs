//! Lossless joins (§5): when does `⋈D ⊨ ⋈D'`?
//!
//! `⋈D ⊨ ⋈D'` means every universal relation satisfying the join
//! dependency `⋈D` also satisfies `⋈D'` — equivalently (Theorem 5.1), the
//! queries `(D, U(D'))` and `(D', U(D'))` are weakly equivalent, and
//! equivalently again `CC(D, U(D')) ⊆ D'`.
//!
//! For tree schemas the criterion collapses to graph shape (Corollary 5.2):
//! `⋈D ⊨ ⋈D'` iff `D'` is a subtree of `D`.

use gyo_schema::{AttrSet, DbSchema};
use gyo_tableau::canonical_connection;

use crate::equiv::weakly_equivalent_semantic;
use crate::query::JoinQuery;

/// Theorem 5.1: `⋈D ⊨ ⋈D'` iff `CC(D, U(D')) ⊆ D'` (for `D' ≤ D`; the
/// theorem also shows `⊆` and `≤` coincide here, and equality holds iff
/// `D'` is reduced). `d_sub` indexes the sub-schema within `d`.
pub fn implies_lossless(d: &DbSchema, d_sub: &[usize]) -> bool {
    let d_prime = d.project_rels(d_sub);
    let u_prime = d_prime.attributes();
    let cc = canonical_connection(d, &u_prime);
    cc.iter().all(|r| d_prime.contains_rel(r))
}

/// The semantic route to the same answer, via the frozen-tableau weak
/// equivalence of `(D, U(D'))` and `(D', U(D'))` (the reduction inside
/// Theorem 5.1's proof). Exact; used to cross-validate
/// [`implies_lossless`].
pub fn implies_lossless_semantic(d: &DbSchema, d_sub: &[usize]) -> bool {
    let d_prime = d.project_rels(d_sub);
    let u_prime = d_prime.attributes();
    let q_full = JoinQuery::new(d.clone(), u_prime.clone());
    let q_sub_over_full = JoinQuery::new(d_prime, u_prime);
    weakly_equivalent_semantic(&q_full, &q_sub_over_full)
}

/// Theorem 5.2 / Corollary 5.3: `CC(D, X)` is a minimum-cardinality
/// `D' ≤ D` with `(D', X) ≡ (D, X)`, and `⋈D ⊨ ⋈CC(D, X)` — i.e. the
/// canonical connection always has a lossless join. Returns `CC(D, X)`.
pub fn min_equivalent_subschema(d: &DbSchema, x: &AttrSet) -> DbSchema {
    canonical_connection(d, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_reduce::is_subtree;
    use gyo_relation::{join_of_projections, satisfies_jd};
    use gyo_schema::Catalog;
    use gyo_tableau::Tableau;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    #[test]
    fn section_5_1_example_not_lossless() {
        // D = (abc, ab, bc), D' = (ab, bc): ⋈D ⊭ ⋈D' and D' is not a
        // subtree of D.
        let mut cat = Catalog::alphabetic();
        let d = db("abc, ab, bc", &mut cat);
        assert!(!implies_lossless(&d, &[1, 2]));
        assert!(!implies_lossless_semantic(&d, &[1, 2]));
        assert!(!is_subtree(&d, &[1, 2]));
        // but the sub-schema (abc, ab) is lossless (ab ⊆ abc).
        assert!(implies_lossless(&d, &[0, 1]));
        assert!(implies_lossless_semantic(&d, &[0, 1]));
    }

    #[test]
    fn corollary_5_2_tree_schema_lossless_iff_subtree() {
        let mut cat = Catalog::alphabetic();
        for (s, n) in [
            ("ab, bc, cd", 3),
            ("abc, cde, ace, afe", 4),
            ("abc, ab, bc", 3),
        ] {
            let d = db(s, &mut cat);
            for mask in 1u32..(1 << n) {
                let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                assert_eq!(
                    implies_lossless(&d, &nodes),
                    is_subtree(&d, &nodes),
                    "case {s}, nodes {nodes:?}"
                );
            }
        }
    }

    #[test]
    fn semantic_and_syntactic_deciders_agree() {
        let mut cat = Catalog::alphabetic();
        for (s, n) in [
            ("ab, bc, cd", 3),
            ("abc, ab, bc", 3),
            ("ab, bc, cd, da", 4),
            ("abc, cde, ace", 3),
        ] {
            let d = db(s, &mut cat);
            for mask in 1u32..(1 << n) {
                let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                assert_eq!(
                    implies_lossless(&d, &nodes),
                    implies_lossless_semantic(&d, &nodes),
                    "case {s}, nodes {nodes:?}"
                );
            }
        }
    }

    #[test]
    fn lossless_claims_hold_on_jd_closed_instances() {
        // If ⋈D ⊨ ⋈D' then every m_D-closed instance satisfies ⋈D'.
        let mut cat = Catalog::alphabetic();
        let mut rng = StdRng::seed_from_u64(23);
        for s in ["ab, bc, cd", "abc, ab, bc", "ab, bc, cd, da"] {
            let d = db(s, &mut cat);
            let n = d.len();
            for mask in 1u32..(1 << n) {
                let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                if !implies_lossless(&d, &nodes) {
                    continue;
                }
                let d_prime = d.project_rels(&nodes);
                for _ in 0..3 {
                    let i = gyo_workloads::jd_closed_universal(&mut rng, &d, 25, 6);
                    assert!(satisfies_jd(&i, &d), "premise");
                    assert!(
                        satisfies_jd(&i.project(&d.attributes()), &d_prime),
                        "⋈D ⊨ ⋈D' violated on a closed instance: {s}, {nodes:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_lossless_has_a_counterexample_instance() {
        // For the §5.1 example, the frozen tableau of (D, U(D')) closed
        // under m_D is a jd-closed instance violating ⋈D'.
        let mut cat = Catalog::alphabetic();
        let d = db("abc, ab, bc", &mut cat);
        let d_prime = db("ab, bc", &mut cat);
        let frozen = Tableau::standard(&d, &d_prime.attributes()).freeze();
        let i0 = frozen.to_relation();
        let closed = join_of_projections(&i0, &d);
        assert!(satisfies_jd(&closed, &d), "m_D(I) satisfies ⋈D");
        assert!(
            !satisfies_jd(&closed.project(&d.attributes()), &d_prime),
            "counterexample to ⋈D'"
        );
    }

    #[test]
    fn theorem_5_2_cc_is_min_equivalent_and_lossless() {
        let mut cat = Catalog::alphabetic();
        let d = db("abg, bcg, acf, ad, de, ea", &mut cat);
        let x = AttrSet::parse("abc", &mut cat).unwrap();
        let cc = min_equivalent_subschema(&d, &x);
        assert_eq!(cc.len(), 3, "CC has minimum cardinality");
        // Theorem 5.2: CC(D, U(D')) = D' for D' = CC(D, X).
        let cc2 = canonical_connection(&d, &cc.attributes());
        assert_eq!(cc2, cc);
    }

    #[test]
    fn whole_schema_is_always_lossless() {
        let mut cat = Catalog::alphabetic();
        for s in ["ab, bc", "ab, bc, cd, da", "abc, ab, bc"] {
            let d = db(s, &mut cat);
            let all: Vec<usize> = (0..d.len()).collect();
            assert!(implies_lossless(&d, &all), "case {s}");
        }
    }

    #[test]
    fn single_relation_subschema_is_always_lossless() {
        let mut cat = Catalog::alphabetic();
        for s in ["ab, bc", "ab, bc, cd, da", "abc, ab, bc"] {
            let d = db(s, &mut cat);
            for i in 0..d.len() {
                assert!(implies_lossless(&d, &[i]), "case {s}, rel {i}");
            }
        }
    }
}
