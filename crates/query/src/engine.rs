//! Query/reduction engines behind one trait, and the cached full-reducer
//! engine.
//!
//! The paper's payoff for tree schemas is that a full reducer — `2·(n−1)`
//! semijoins along a join tree — achieves global consistency, after which
//! `(D, X)` is answered by joining up the tree with early projection
//! (Bernstein–Chiu \[5\], Yannakakis \[18\]). This module promotes that
//! pipeline from test support to a first-class [`Engine`], alongside the
//! two reference paths it must agree with:
//!
//! * [`NaiveEngine`] — the definitional engine: materialize `⋈D`, project.
//!   Works on *every* schema; serves as the ground truth and as the foil
//!   the semijoin engines are measured against.
//! * [`IncrementalEngine`] — the per-call Yannakakis path: re-derives the
//!   join tree with the incremental GYO engine on every call, then runs the
//!   full reducer. Correct, tree-only, no reuse across calls.
//! * [`FullReducerEngine`] — the cached engine: compiles the join tree and
//!   the semijoin program **once per schema** into a [`FullReducerPlan`]
//!   (precompiled [`SemijoinStep`]s — shared attributes and column
//!   positions resolved ahead of time), keyed by the schema's exact
//!   relation-list identity, and reuses it across calls.
//!
//! All three implement [`Engine`]; the repo-level differential suite
//! (`tests/engine_differential.rs`) holds them to identical answers on
//! every workload family.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gyo_reduce::{gyo_reduce, join_tree_from_trace};
use gyo_relation::{semijoin_program_with, DbState, ExecScratch, Relation, SemijoinStep};
use gyo_schema::{AttrSet, DbSchema, FxHashMap, RootedTree};

use crate::program::Program;
use crate::yannakakis::{
    full_reduce, full_reducer_program_on_tree, join_up_tree, solve_tree_query,
};

/// A query/reduction engine: one strategy for making states globally
/// consistent and answering natural-join queries `(D, X)`.
///
/// `None` means the engine does not support the schema (the semijoin
/// engines are tree-only; full reducers do not exist for cyclic schemas).
pub trait Engine {
    /// A stable identifier for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Full reduction: returns a state with
    /// `result[i] = π_{Rᵢ}(⋈ state)` for every `i`, or `None` when the
    /// engine cannot reduce `d`.
    fn reduce(&self, d: &DbSchema, state: &DbState) -> Option<DbState>;

    /// Answers the query `(D, X)`: `π_X(⋈ state)`, or `None` when the
    /// engine cannot solve on `d`.
    ///
    /// # Panics
    ///
    /// Panics if `x ⊄ U(D)`.
    fn answer(&self, d: &DbSchema, state: &DbState, x: &AttrSet) -> Option<Relation>;
}

/// The definitional engine: materializes the full join. Supports every
/// schema — tree or cyclic — at monolithic-join cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveEngine;

impl Engine for NaiveEngine {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn reduce(&self, d: &DbSchema, state: &DbState) -> Option<DbState> {
        let total = state.join_all();
        Some(DbState::new(
            d,
            d.iter()
                .map(|r| {
                    if total.is_empty() {
                        Relation::empty(r.clone())
                    } else {
                        total.project(r)
                    }
                })
                .collect(),
        ))
    }

    fn answer(&self, _d: &DbSchema, state: &DbState, x: &AttrSet) -> Option<Relation> {
        Some(state.eval_join_query(x))
    }
}

/// The per-call Yannakakis engine: re-runs the incremental GYO reduction to
/// rebuild the join tree on every call, then full-reduces and answers along
/// it. Tree schemas only; nothing is cached between calls — this is the
/// baseline that quantifies what [`FullReducerEngine`]'s plan cache buys.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalEngine;

impl Engine for IncrementalEngine {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn reduce(&self, d: &DbSchema, state: &DbState) -> Option<DbState> {
        full_reduce(d, state)
    }

    fn answer(&self, d: &DbSchema, state: &DbState, x: &AttrSet) -> Option<Relation> {
        solve_tree_query(d, state, x)
    }
}

/// A compiled full-reducer plan for one tree schema: the rooted join tree
/// plus the `2·(n−1)` precompiled semijoin steps, with the §6 [`Program`]
/// form alongside for inspection and notation rendering.
#[derive(Clone, Debug)]
pub struct FullReducerPlan {
    rooted: RootedTree,
    steps: Vec<SemijoinStep>,
    program: Program,
}

impl FullReducerPlan {
    /// Compiles the plan for `d`; `None` when `d` is cyclic.
    fn compile(d: &DbSchema) -> Option<Self> {
        let red = gyo_reduce(d, &AttrSet::empty());
        let tree = join_tree_from_trace(d, &red)?;
        let rooted = if d.is_empty() {
            RootedTree {
                root: 0,
                parent: Vec::new(),
                post_order: Vec::new(),
            }
        } else {
            tree.rooted_at(0)
        };
        let mut steps = Vec::new();
        if d.len() > 1 {
            let schemas = d.rels();
            for &v in &rooted.post_order {
                if v != rooted.root {
                    steps.push(SemijoinStep::new(schemas, rooted.parent[v], v));
                }
            }
            for &v in rooted.post_order.iter().rev() {
                if v != rooted.root {
                    steps.push(SemijoinStep::new(schemas, v, rooted.parent[v]));
                }
            }
        }
        let program = full_reducer_program_on_tree(d, &rooted);
        Some(Self {
            rooted,
            steps,
            program,
        })
    }

    /// The compiled semijoin steps, upward pass then downward pass.
    pub fn steps(&self) -> &[SemijoinStep] {
        &self.steps
    }

    /// The plan as a §6 semijoin [`Program`] (new-relation semantics).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The rooted join tree the plan reduces along.
    ///
    /// For the **empty schema** the tree has no nodes: `parent` and
    /// `post_order` are empty and `root` is a placeholder `0` that must
    /// not be used as an index.
    pub fn rooted(&self) -> &RootedTree {
        &self.rooted
    }
}

/// The cached Yannakakis engine: full-reducer plans compiled once per
/// schema and reused across calls.
///
/// The cache key is the schema's **exact relation list** (order and
/// multiplicity included), not [`DbSchema`]'s multiset equality — a plan's
/// step indices refer to relation positions, so two multiset-equal schemas
/// with different relation orders get distinct plans. Any change to the
/// schema therefore misses the cache and compiles afresh; stale plans are
/// unreachable by construction. Cyclic outcomes are cached too, so
/// repeatedly querying a cyclic schema costs one lookup, not one GYO
/// reduction per call.
#[derive(Debug, Default)]
pub struct FullReducerEngine {
    plans: Mutex<FxHashMap<Vec<AttrSet>, Option<Arc<FullReducerPlan>>>>,
    /// Reusable selection-vector execution state: after the first reduction
    /// at a given shape, program steps run with zero heap allocation (the
    /// `crates/relation/tests/alloc.rs` counter pins this down). Contended
    /// callers fall back to a per-call scratch rather than serialize.
    scratch: Mutex<ExecScratch>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FullReducerEngine {
    /// A fresh engine with an empty plan cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached plan for `d`, compiling on first sight. `None` when `d`
    /// is cyclic (this negative outcome is cached as well).
    pub fn plan(&self, d: &DbSchema) -> Option<Arc<FullReducerPlan>> {
        if let Some(cached) = self.plans.lock().expect("plan cache lock").get(d.rels()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = FullReducerPlan::compile(d).map(Arc::new);
        self.plans
            .lock()
            .expect("plan cache lock")
            .insert(d.rels().to_vec(), plan.clone());
        plan
    }

    /// Drops every cached plan (the cache never *needs* manual
    /// invalidation — keys are schema identities — but long-lived engines
    /// can reclaim memory).
    pub fn clear_cache(&self) {
        self.plans.lock().expect("plan cache lock").clear();
    }

    /// Number of schemas with a cached outcome (including cached cyclic
    /// verdicts).
    pub fn cached_plan_count(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len()
    }

    /// `(hits, misses)` of the plan cache since construction.
    #[cfg(test)]
    pub(crate) fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn reduce_with_plan(&self, d: &DbSchema, state: &DbState, plan: &FullReducerPlan) -> DbState {
        let mut rels = state.rels().to_vec();
        match self.scratch.try_lock() {
            Ok(mut scratch) => semijoin_program_with(&mut rels, plan.steps(), &mut scratch),
            // Another thread is mid-reduction on this engine: run with a
            // fresh scratch instead of serializing behind the lock.
            Err(_) => semijoin_program_with(&mut rels, plan.steps(), &mut ExecScratch::new()),
        }
        DbState::new(d, rels)
    }
}

impl Engine for FullReducerEngine {
    fn name(&self) -> &'static str {
        "full_reducer_cached"
    }

    fn reduce(&self, d: &DbSchema, state: &DbState) -> Option<DbState> {
        let plan = self.plan(d)?;
        Some(self.reduce_with_plan(d, state, &plan))
    }

    fn answer(&self, d: &DbSchema, state: &DbState, x: &AttrSet) -> Option<Relation> {
        assert!(
            x.is_subset(&d.attributes()),
            "target X must be a subset of U(D)"
        );
        let plan = self.plan(d)?;
        if d.is_empty() {
            return Some(if x.is_empty() {
                Relation::identity()
            } else {
                Relation::empty(x.clone())
            });
        }
        let reduced = self.reduce_with_plan(d, state, &plan);
        Some(join_up_tree(d, &reduced, x, plan.rooted()))
    }
}

/// The three standard engines, boxed for differential harnesses.
pub fn standard_engines() -> Vec<Box<dyn Engine + Send + Sync>> {
    vec![
        Box::new(NaiveEngine),
        Box::new(IncrementalEngine),
        Box::new(FullReducerEngine::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    fn random_state(d: &DbSchema, seed: u64, rows: usize, domain: u64) -> DbState {
        let mut rng = StdRng::seed_from_u64(seed);
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), rows, domain);
        DbState::from_universal(&i, d)
    }

    #[test]
    fn engines_agree_on_tree_schemas() {
        let mut cat = Catalog::alphabetic();
        let cached = FullReducerEngine::new();
        for s in ["ab, bc, cd", "abc, cde, ace, afe", "ab, cd", "abc"] {
            let d = db(s, &mut cat);
            let state = random_state(&d, 0xE1, 25, 4);
            let x = AttrSet::from_iter([
                d.attributes().iter().next().unwrap(),
                d.attributes().iter().last().unwrap(),
            ]);
            let naive = NaiveEngine;
            let incr = IncrementalEngine;
            let n_red = naive.reduce(&d, &state).unwrap();
            assert_eq!(incr.reduce(&d, &state).unwrap(), n_red, "{s}");
            assert_eq!(cached.reduce(&d, &state).unwrap(), n_red, "{s}");
            let n_ans = naive.answer(&d, &state, &x).unwrap();
            assert_eq!(incr.answer(&d, &state, &x).unwrap(), n_ans, "{s}");
            assert_eq!(cached.answer(&d, &state, &x).unwrap(), n_ans, "{s}");
        }
    }

    #[test]
    fn semijoin_engines_decline_cyclic_schemas() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ca", &mut cat);
        let state = random_state(&d, 7, 10, 3);
        let x = AttrSet::parse("ab", &mut cat).unwrap();
        assert!(IncrementalEngine.reduce(&d, &state).is_none());
        let cached = FullReducerEngine::new();
        assert!(cached.reduce(&d, &state).is_none());
        assert!(cached.answer(&d, &state, &x).is_none());
        assert!(
            NaiveEngine.reduce(&d, &state).is_some(),
            "naive always works"
        );
    }

    #[test]
    fn plan_cache_hits_and_misses() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        let e = FullReducerEngine::new();
        assert_eq!(e.cache_stats(), (0, 0));
        assert!(e.plan(&d).is_some());
        assert_eq!(e.cache_stats(), (0, 1), "first sight compiles");
        assert!(e.plan(&d).is_some());
        assert!(e.plan(&d.clone()).is_some());
        assert_eq!(e.cache_stats(), (2, 1), "repeats hit");
        assert_eq!(e.cached_plan_count(), 1);
    }

    #[test]
    fn cyclic_outcome_is_cached_too() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ca", &mut cat);
        let e = FullReducerEngine::new();
        assert!(e.plan(&d).is_none());
        assert!(e.plan(&d).is_none());
        assert_eq!(e.cache_stats(), (1, 1));
        assert_eq!(e.cached_plan_count(), 1);
    }

    #[test]
    fn schema_change_misses_the_cache() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc", &mut cat);
        let e = FullReducerEngine::new();
        assert!(e.plan(&d).is_some());
        let mut grown = d.clone();
        grown.push(AttrSet::parse("cd", &mut cat).unwrap());
        assert!(e.plan(&grown).is_some());
        assert_eq!(e.cache_stats(), (0, 2), "changed schema compiles afresh");
        assert_eq!(e.cached_plan_count(), 2);
        e.clear_cache();
        assert_eq!(e.cached_plan_count(), 0);
        assert!(e.plan(&d).is_some());
        assert_eq!(e.cache_stats(), (0, 3), "cleared cache recompiles");
    }

    #[test]
    fn plans_are_keyed_by_relation_order_not_multiset_equality() {
        // (ab, bc, cd) and (cd, bc, ab) are equal as multisets — DbSchema's
        // own Eq/Hash would collide — but a plan's step indices are
        // positional, so the cache must treat them as distinct schemas.
        let mut cat = Catalog::alphabetic();
        let d1 = db("ab, bc, cd", &mut cat);
        let d2 = db("cd, bc, ab", &mut cat);
        assert!(d1 == d2, "precondition: multiset-equal");
        let e = FullReducerEngine::new();
        assert!(e.plan(&d1).is_some());
        assert!(e.plan(&d2).is_some());
        assert_eq!(
            e.cache_stats(),
            (0, 2),
            "reordered schema is a distinct plan"
        );
        assert_eq!(e.cached_plan_count(), 2);
        // ... and both plans answer their own schema correctly.
        for d in [&d1, &d2] {
            let state = random_state(d, 0xAB, 20, 3);
            let x = AttrSet::parse("ad", &mut cat).unwrap();
            assert_eq!(e.answer(d, &state, &x).unwrap(), state.eval_join_query(&x));
        }
    }

    #[test]
    fn cached_plan_has_2n_minus_2_steps_and_matches_program() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, de", &mut cat);
        let e = FullReducerEngine::new();
        let plan = e.plan(&d).unwrap();
        assert_eq!(plan.steps().len(), 2 * (4 - 1));
        assert_eq!(plan.program().len(), 2 * (4 - 1));
        assert_eq!(
            plan.program(),
            &crate::yannakakis::full_reducer_program(&d).unwrap()
        );
    }

    #[test]
    fn single_and_empty_schemas() {
        let mut cat = Catalog::alphabetic();
        let e = FullReducerEngine::new();
        let d1 = db("abc", &mut cat);
        let state = random_state(&d1, 3, 8, 3);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        assert_eq!(
            e.answer(&d1, &state, &x).unwrap(),
            state.eval_join_query(&x)
        );
        let d0 = DbSchema::empty();
        let empty_state = DbState::new(&d0, vec![]);
        assert_eq!(
            e.answer(&d0, &empty_state, &AttrSet::empty()).unwrap(),
            Relation::identity()
        );
        assert!(e.reduce(&d0, &empty_state).unwrap().is_empty());
    }

    #[test]
    fn standard_engines_cover_the_three_paths() {
        let names: Vec<&str> = standard_engines().iter().map(|e| e.name()).collect();
        assert_eq!(names, ["naive", "incremental", "full_reducer_cached"]);
    }
}
