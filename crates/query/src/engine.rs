//! Query/reduction engines behind one trait, and the cached full-reducer
//! engine.
//!
//! The paper's payoff for tree schemas is that a full reducer — `2·(n−1)`
//! semijoins along a join tree — achieves global consistency, after which
//! `(D, X)` is answered by joining up the tree with early projection
//! (Bernstein–Chiu \[5\], Yannakakis \[18\]). This module promotes that
//! pipeline from test support to a first-class [`Engine`], alongside the
//! two reference paths it must agree with:
//!
//! * [`NaiveEngine`] — the definitional engine: materialize `⋈D`, project.
//!   Works on *every* schema; serves as the ground truth and as the foil
//!   the semijoin engines are measured against.
//! * [`IncrementalEngine`] — the per-call Yannakakis path: re-derives the
//!   join tree with the incremental GYO engine on every call, then runs the
//!   full reducer. Correct, tree-only, no reuse across calls.
//! * [`FullReducerEngine`] — the cached engine: compiles the join tree and
//!   the semijoin program **once per schema** into a [`FullReducerPlan`]
//!   (precompiled [`SemijoinStep`]s — shared attributes and column
//!   positions resolved ahead of time), keyed by the schema's exact
//!   relation-list identity, and reuses it across calls.
//!
//! A fourth engine lives in [`crate::treeify_engine`]:
//! [`TreeifyEngine`](crate::TreeifyEngine), which delegates tree schemas
//! to a [`FullReducerEngine`] and answers cyclic ones through a cached
//! treeification plan — making the trait **total**. Declines carry an
//! [`EngineError`] naming the stuck GYO residue, never a bare `None`.
//!
//! All four implement [`Engine`]; the repo-level differential suite
//! (`tests/engine_differential.rs`) holds them to identical answers on
//! every workload family.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gyo_reduce::Reduction;
use gyo_relation::{semijoin_program_with, DbState, ExecScratch, Relation, SemijoinStep};
use gyo_schema::{AttrSet, Catalog, DbSchema, FxHashMap, RootedTree};

use crate::program::Program;
use crate::yannakakis::{
    derive_rooted_tree, full_reduce, full_reducer_program_on_tree, join_up_tree, solve_tree_query,
};

/// Why an engine (or any tree-only entry point of this crate) could not
/// serve a schema.
///
/// The only failure mode the paper's machinery admits is **cyclicity**: the
/// GYO reduction got stuck before collapsing the schema, so no join tree —
/// and hence no full reducer — exists (Corollary 3.1). Rather than a bare
/// decline, the error carries the evidence: the non-reducible residue
/// `GR(D)` (every relation of which still overlaps its neighbors in a way
/// neither GYO operation can break) and the original indices of the
/// surviving relations, so callers can show *which* cycle blocked the
/// semijoin engines — and so [`TreeifyEngine`](crate::TreeifyEngine) can
/// treeify exactly that residue without re-running the reduction.
///
/// ```
/// use gyo_schema::{AttrSet, Catalog, DbSchema};
/// use gyo_relation::DbState;
/// use gyo_query::{Engine, EngineError, FullReducerEngine};
///
/// let mut cat = Catalog::alphabetic();
/// // A 3-ring with a pendant: GYO strips the pendant, the ring remains.
/// let d = DbSchema::parse("ab, bc, ca, ax", &mut cat).unwrap();
/// let state = DbState::new(&d, d.iter().map(|r| {
///     gyo_relation::Relation::empty(r.clone())
/// }).collect());
/// let err = FullReducerEngine::new().reduce(&d, &state).unwrap_err();
/// assert_eq!(err.residue().to_notation(&cat), "(ab, bc, ac)");
/// assert_eq!(err.survivors(), &[0, 1, 2], "the pendant ax was reduced away");
/// assert!(err.to_string().contains("cyclic"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The schema is cyclic: the GYO reduction stalled on a non-trivial
    /// residue, so tree-schema machinery (join trees, full reducers) does
    /// not apply.
    Cyclic {
        /// `GR(D, ∅)` — the stuck residue: the relation schemas (with
        /// already-deleted attributes removed) on which neither isolated-
        /// attribute deletion nor subset elimination applies. This is the
        /// offending cyclic core.
        residue: DbSchema,
        /// Original indices into `D` of the residue's relations (parallel
        /// to `residue.rels()`).
        survivors: Vec<usize>,
    },
}

impl EngineError {
    /// Builds the cyclic-schema error from a stuck reduction.
    ///
    /// # Panics
    ///
    /// Panics if `red` is total (a total reduction is not an error).
    pub fn cyclic(red: &Reduction) -> Self {
        assert!(!red.is_total(), "total GYO reductions are not errors");
        EngineError::Cyclic {
            residue: red.result.clone(),
            survivors: red.survivors.clone(),
        }
    }

    /// The stuck GYO residue `GR(D)` — the offending cycle.
    pub fn residue(&self) -> &DbSchema {
        match self {
            EngineError::Cyclic { residue, .. } => residue,
        }
    }

    /// Original relation indices of the residue's members.
    pub fn survivors(&self) -> &[usize] {
        match self {
            EngineError::Cyclic { survivors, .. } => survivors,
        }
    }

    /// Renders the diagnostic with attribute names resolved through `cat`,
    /// e.g. `schema is cyclic: GYO stuck on R0, R1, R2 with residue
    /// (ab, bc, ac)`.
    pub fn display_with(&self, cat: &Catalog) -> String {
        match self {
            EngineError::Cyclic { residue, survivors } => {
                let rs: Vec<String> = survivors.iter().map(|i| format!("R{i}")).collect();
                format!(
                    "schema is cyclic: GYO stuck on {} with residue {}",
                    rs.join(", "),
                    residue.to_notation(cat)
                )
            }
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Cyclic { residue, survivors } => {
                write!(
                    f,
                    "schema is cyclic: GYO reduction stuck on {} residue relation(s) \
                     (original indices {:?})",
                    residue.len(),
                    survivors
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A query/reduction engine: one strategy for making states globally
/// consistent and answering natural-join queries `(D, X)`.
///
/// An `Err` means the engine does not support the schema, and says why:
/// the semijoin engines are tree-only (full reducers do not exist for
/// cyclic schemas), so their error is always [`EngineError::Cyclic`] with
/// the stuck residue attached. [`NaiveEngine`] and
/// [`TreeifyEngine`](crate::TreeifyEngine) are **total** — they never
/// return `Err`.
pub trait Engine {
    /// A stable identifier for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Full reduction: returns a state with
    /// `result[i] = π_{Rᵢ}(⋈ state)` for every `i`, or the reason the
    /// engine cannot reduce `d`.
    fn reduce(&self, d: &DbSchema, state: &DbState) -> Result<DbState, EngineError>;

    /// Answers the query `(D, X)`: `π_X(⋈ state)`, or the reason the
    /// engine cannot solve on `d`.
    ///
    /// # Panics
    ///
    /// Panics if `x ⊄ U(D)`.
    fn answer(&self, d: &DbSchema, state: &DbState, x: &AttrSet) -> Result<Relation, EngineError>;
}

/// The definitional engine: materializes the full join. Supports every
/// schema — tree or cyclic — at monolithic-join cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveEngine;

impl Engine for NaiveEngine {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn reduce(&self, d: &DbSchema, state: &DbState) -> Result<DbState, EngineError> {
        let total = state.join_all();
        Ok(DbState::new(
            d,
            d.iter()
                .map(|r| {
                    if total.is_empty() {
                        Relation::empty(r.clone())
                    } else {
                        total.project(r)
                    }
                })
                .collect(),
        ))
    }

    fn answer(&self, _d: &DbSchema, state: &DbState, x: &AttrSet) -> Result<Relation, EngineError> {
        Ok(state.eval_join_query(x))
    }
}

/// The per-call Yannakakis engine: re-runs the incremental GYO reduction to
/// rebuild the join tree on every call, then full-reduces and answers along
/// it. Tree schemas only; nothing is cached between calls — this is the
/// baseline that quantifies what [`FullReducerEngine`]'s plan cache buys.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalEngine;

impl Engine for IncrementalEngine {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn reduce(&self, d: &DbSchema, state: &DbState) -> Result<DbState, EngineError> {
        full_reduce(d, state)
    }

    fn answer(&self, d: &DbSchema, state: &DbState, x: &AttrSet) -> Result<Relation, EngineError> {
        solve_tree_query(d, state, x)
    }
}

/// A compiled full-reducer plan for one tree schema: the rooted join tree
/// plus the `2·(n−1)` precompiled semijoin steps, with the §6 [`Program`]
/// form alongside for inspection and notation rendering.
#[derive(Clone, Debug)]
pub struct FullReducerPlan {
    rooted: RootedTree,
    steps: Vec<SemijoinStep>,
    program: Program,
}

impl FullReducerPlan {
    /// Compiles the plan for `d`; [`EngineError::Cyclic`] (with the stuck
    /// residue attached) when `d` is cyclic.
    fn compile(d: &DbSchema) -> Result<Self, EngineError> {
        let rooted = derive_rooted_tree(d)?;
        let mut steps = Vec::new();
        if d.len() > 1 {
            let schemas = d.rels();
            for &v in &rooted.post_order {
                if v != rooted.root {
                    steps.push(SemijoinStep::new(schemas, rooted.parent[v], v));
                }
            }
            for &v in rooted.post_order.iter().rev() {
                if v != rooted.root {
                    steps.push(SemijoinStep::new(schemas, v, rooted.parent[v]));
                }
            }
        }
        let program = full_reducer_program_on_tree(d, &rooted);
        Ok(Self {
            rooted,
            steps,
            program,
        })
    }

    /// The compiled semijoin steps, upward pass then downward pass.
    pub fn steps(&self) -> &[SemijoinStep] {
        &self.steps
    }

    /// The plan as a §6 semijoin [`Program`] (new-relation semantics).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The rooted join tree the plan reduces along.
    ///
    /// For the **empty schema** the tree has no nodes: `parent` and
    /// `post_order` are empty and `root` is a placeholder `0` that must
    /// not be used as an index.
    pub fn rooted(&self) -> &RootedTree {
        &self.rooted
    }
}

/// The cached Yannakakis engine: full-reducer plans compiled once per
/// schema and reused across calls.
///
/// The cache key is the schema's **exact relation list** (order and
/// multiplicity included), not [`DbSchema`]'s multiset equality — a plan's
/// step indices refer to relation positions, so two multiset-equal schemas
/// with different relation orders get distinct plans. Any change to the
/// schema therefore misses the cache and compiles afresh; stale plans are
/// unreachable by construction. Cyclic outcomes are cached too — with the
/// full [`EngineError`] diagnostic (the stuck residue and its survivor
/// indices) — so repeatedly querying a cyclic schema costs one lookup, not
/// one GYO reduction per call, and every repeat reports *which* cycle
/// blocked it.
#[derive(Debug, Default)]
pub struct FullReducerEngine {
    plans: Mutex<FxHashMap<Vec<AttrSet>, Result<Arc<FullReducerPlan>, EngineError>>>,
    /// Reusable selection-vector execution state: after the first reduction
    /// at a given shape, program steps run with zero heap allocation (the
    /// `crates/relation/tests/alloc.rs` counter pins this down). Contended
    /// callers fall back to a per-call scratch rather than serialize.
    scratch: Mutex<ExecScratch>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FullReducerEngine {
    /// A fresh engine with an empty plan cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached plan for `d`, compiling on first sight.
    /// [`EngineError::Cyclic`] when `d` is cyclic — this negative outcome
    /// is cached as well, diagnostic included.
    pub fn plan(&self, d: &DbSchema) -> Result<Arc<FullReducerPlan>, EngineError> {
        if let Some(cached) = self.plans.lock().expect("plan cache lock").get(d.rels()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = FullReducerPlan::compile(d).map(Arc::new);
        self.plans
            .lock()
            .expect("plan cache lock")
            .insert(d.rels().to_vec(), plan.clone());
        plan
    }

    /// Drops every cached plan (the cache never *needs* manual
    /// invalidation — keys are schema identities — but long-lived engines
    /// can reclaim memory).
    pub fn clear_cache(&self) {
        self.plans.lock().expect("plan cache lock").clear();
    }

    /// Number of schemas with a cached outcome (including cached cyclic
    /// verdicts).
    pub fn cached_plan_count(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len()
    }

    /// `(hits, misses)` of the plan cache since construction.
    #[cfg(test)]
    pub(crate) fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Runs a compiled semijoin program over `rels` through the engine's
    /// reusable selection-vector scratch (falling back to a per-call
    /// scratch under contention). Shared by the full-reducer path and the
    /// treeify engine's extended-schema path.
    pub(crate) fn run_steps(&self, rels: &mut [Relation], steps: &[SemijoinStep]) {
        match self.scratch.try_lock() {
            Ok(mut scratch) => semijoin_program_with(rels, steps, &mut scratch),
            // Another thread is mid-reduction on this engine: run with a
            // fresh scratch instead of serializing behind the lock.
            Err(_) => semijoin_program_with(rels, steps, &mut ExecScratch::new()),
        }
    }

    pub(crate) fn reduce_with_plan(
        &self,
        d: &DbSchema,
        state: &DbState,
        plan: &FullReducerPlan,
    ) -> DbState {
        let mut rels = state.rels().to_vec();
        self.run_steps(&mut rels, plan.steps());
        DbState::new(d, rels)
    }

    /// The full answer pipeline over an already-compiled plan: reduce, then
    /// join up the tree with early projection. Shared by
    /// [`Engine::answer`] and the treeify engine's delegation path.
    pub(crate) fn answer_with_plan(
        &self,
        d: &DbSchema,
        state: &DbState,
        x: &AttrSet,
        plan: &FullReducerPlan,
    ) -> Relation {
        if d.is_empty() {
            return if x.is_empty() {
                Relation::identity()
            } else {
                Relation::empty(x.clone())
            };
        }
        let reduced = self.reduce_with_plan(d, state, plan);
        join_up_tree(d, &reduced, x, plan.rooted())
    }
}

impl Engine for FullReducerEngine {
    fn name(&self) -> &'static str {
        "full_reducer_cached"
    }

    fn reduce(&self, d: &DbSchema, state: &DbState) -> Result<DbState, EngineError> {
        let plan = self.plan(d)?;
        Ok(self.reduce_with_plan(d, state, &plan))
    }

    fn answer(&self, d: &DbSchema, state: &DbState, x: &AttrSet) -> Result<Relation, EngineError> {
        assert!(
            x.is_subset(&d.attributes()),
            "target X must be a subset of U(D)"
        );
        let plan = self.plan(d)?;
        Ok(self.answer_with_plan(d, state, x, &plan))
    }
}

/// The four standard engines, boxed for differential harnesses: the three
/// tree-path strategies plus the treeification-backed total engine.
pub fn standard_engines() -> Vec<Box<dyn Engine + Send + Sync>> {
    vec![
        Box::new(NaiveEngine),
        Box::new(IncrementalEngine),
        Box::new(FullReducerEngine::new()),
        Box::new(crate::TreeifyEngine::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    fn random_state(d: &DbSchema, seed: u64, rows: usize, domain: u64) -> DbState {
        let mut rng = StdRng::seed_from_u64(seed);
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), rows, domain);
        DbState::from_universal(&i, d)
    }

    #[test]
    fn engines_agree_on_tree_schemas() {
        let mut cat = Catalog::alphabetic();
        let cached = FullReducerEngine::new();
        for s in ["ab, bc, cd", "abc, cde, ace, afe", "ab, cd", "abc"] {
            let d = db(s, &mut cat);
            let state = random_state(&d, 0xE1, 25, 4);
            let x = AttrSet::from_iter([
                d.attributes().iter().next().unwrap(),
                d.attributes().iter().last().unwrap(),
            ]);
            let naive = NaiveEngine;
            let incr = IncrementalEngine;
            let n_red = naive.reduce(&d, &state).unwrap();
            assert_eq!(incr.reduce(&d, &state).unwrap(), n_red, "{s}");
            assert_eq!(cached.reduce(&d, &state).unwrap(), n_red, "{s}");
            let n_ans = naive.answer(&d, &state, &x).unwrap();
            assert_eq!(incr.answer(&d, &state, &x).unwrap(), n_ans, "{s}");
            assert_eq!(cached.answer(&d, &state, &x).unwrap(), n_ans, "{s}");
        }
    }

    #[test]
    fn semijoin_engines_decline_cyclic_schemas_with_diagnostics() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ca", &mut cat);
        let state = random_state(&d, 7, 10, 3);
        let x = AttrSet::parse("ab", &mut cat).unwrap();
        let err = IncrementalEngine.reduce(&d, &state).unwrap_err();
        // The triangle is its own residue: nothing reduces.
        assert_eq!(err.residue(), &d);
        assert_eq!(err.survivors(), &[0, 1, 2]);
        let cached = FullReducerEngine::new();
        assert_eq!(cached.reduce(&d, &state).unwrap_err(), err);
        assert_eq!(cached.answer(&d, &state, &x).unwrap_err(), err);
        assert!(NaiveEngine.reduce(&d, &state).is_ok(), "naive always works");
        assert_eq!(
            err.display_with(&cat),
            "schema is cyclic: GYO stuck on R0, R1, R2 with residue (ab, bc, ac)"
        );
    }

    #[test]
    fn cyclic_diagnostic_names_only_the_stuck_core() {
        // Ring with pendants: GYO strips the pendants; the error must point
        // at the surviving ring, not the whole schema.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da, ax, cy", &mut cat);
        let state = random_state(&d, 8, 5, 3);
        let err = FullReducerEngine::new().reduce(&d, &state).unwrap_err();
        assert_eq!(err.survivors(), &[0, 1, 2, 3], "only the ring survives");
        assert_eq!(err.residue().to_notation(&cat), "(ab, bc, cd, ad)");
        assert!(err.to_string().contains("4 residue relation(s)"));
    }

    #[test]
    fn plan_cache_hits_and_misses() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        let e = FullReducerEngine::new();
        assert_eq!(e.cache_stats(), (0, 0));
        assert!(e.plan(&d).is_ok());
        assert_eq!(e.cache_stats(), (0, 1), "first sight compiles");
        assert!(e.plan(&d).is_ok());
        assert!(e.plan(&d.clone()).is_ok());
        assert_eq!(e.cache_stats(), (2, 1), "repeats hit");
        assert_eq!(e.cached_plan_count(), 1);
    }

    #[test]
    fn cyclic_outcome_is_cached_too() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ca", &mut cat);
        let e = FullReducerEngine::new();
        let first = e.plan(&d).unwrap_err();
        let second = e.plan(&d).unwrap_err();
        assert_eq!(first, second, "cached verdicts keep the diagnostic");
        assert_eq!(first.residue(), &d, "the triangle is its own residue");
        assert_eq!(e.cache_stats(), (1, 1));
        assert_eq!(e.cached_plan_count(), 1);
    }

    #[test]
    fn schema_change_misses_the_cache() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc", &mut cat);
        let e = FullReducerEngine::new();
        assert!(e.plan(&d).is_ok());
        let mut grown = d.clone();
        grown.push(AttrSet::parse("cd", &mut cat).unwrap());
        assert!(e.plan(&grown).is_ok());
        assert_eq!(e.cache_stats(), (0, 2), "changed schema compiles afresh");
        assert_eq!(e.cached_plan_count(), 2);
        e.clear_cache();
        assert_eq!(e.cached_plan_count(), 0);
        assert!(e.plan(&d).is_ok());
        assert_eq!(e.cache_stats(), (0, 3), "cleared cache recompiles");
    }

    #[test]
    fn plans_are_keyed_by_relation_order_not_multiset_equality() {
        // (ab, bc, cd) and (cd, bc, ab) are equal as multisets — DbSchema's
        // own Eq/Hash would collide — but a plan's step indices are
        // positional, so the cache must treat them as distinct schemas.
        let mut cat = Catalog::alphabetic();
        let d1 = db("ab, bc, cd", &mut cat);
        let d2 = db("cd, bc, ab", &mut cat);
        assert!(d1 == d2, "precondition: multiset-equal");
        let e = FullReducerEngine::new();
        assert!(e.plan(&d1).is_ok());
        assert!(e.plan(&d2).is_ok());
        assert_eq!(
            e.cache_stats(),
            (0, 2),
            "reordered schema is a distinct plan"
        );
        assert_eq!(e.cached_plan_count(), 2);
        // ... and both plans answer their own schema correctly.
        for d in [&d1, &d2] {
            let state = random_state(d, 0xAB, 20, 3);
            let x = AttrSet::parse("ad", &mut cat).unwrap();
            assert_eq!(e.answer(d, &state, &x).unwrap(), state.eval_join_query(&x));
        }
    }

    #[test]
    fn cached_plan_has_2n_minus_2_steps_and_matches_program() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, de", &mut cat);
        let e = FullReducerEngine::new();
        let plan = e.plan(&d).unwrap();
        assert_eq!(plan.steps().len(), 2 * (4 - 1));
        assert_eq!(plan.program().len(), 2 * (4 - 1));
        assert_eq!(
            plan.program(),
            &crate::yannakakis::full_reducer_program(&d).unwrap()
        );
    }

    #[test]
    fn single_and_empty_schemas() {
        let mut cat = Catalog::alphabetic();
        let e = FullReducerEngine::new();
        let d1 = db("abc", &mut cat);
        let state = random_state(&d1, 3, 8, 3);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        assert_eq!(
            e.answer(&d1, &state, &x).unwrap(),
            state.eval_join_query(&x)
        );
        let d0 = DbSchema::empty();
        let empty_state = DbState::new(&d0, vec![]);
        assert_eq!(
            e.answer(&d0, &empty_state, &AttrSet::empty()).unwrap(),
            Relation::identity()
        );
        assert!(e.reduce(&d0, &empty_state).unwrap().is_empty());
    }

    #[test]
    fn standard_engines_cover_the_four_paths() {
        let names: Vec<&str> = standard_engines().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            ["naive", "incremental", "full_reducer_cached", "treeify"]
        );
    }
}
