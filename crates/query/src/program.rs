//! §6 programs: finite sequences of join, project, and semijoin statements.
//!
//! A program `P` maps a database schema and state to an extended schema and
//! state: each statement creates a new relation. `P(D)` denotes the schema
//! part (original relation schemas plus the created ones) — the input to
//! the tree-projection theorems 6.1–6.4. `P` *solves* `(D, X)` if on every
//! UR database for `D` the last statement's value is the query answer.
//!
//! [`Program::execute`] keeps the §6 new-relation semantics (every
//! statement materializes, through the columnar operator kernels); the
//! overwrite-in-place reading of all-semijoin programs — where no
//! intermediate materializes at all — is
//! [`gyo_relation::semijoin_program`], which the cached full-reducer
//! engine executes over reusable selection vectors.

use gyo_relation::{DbState, Relation};
use gyo_schema::{AttrSet, Catalog, DbSchema};

use crate::query::JoinQuery;

/// A reference to a relation in a program's relation space: indices
/// `0..base.len()` are the original relations, later indices are created by
/// statements in order.
pub type RelRef = usize;

/// One program statement (§6). Each statement assigns a *new* relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Statement {
    /// `R_k := R_i ⋈ R_j`.
    Join {
        /// Left operand.
        left: RelRef,
        /// Right operand.
        right: RelRef,
    },
    /// `R_k := π_Y(R_i)`.
    Project {
        /// Source relation.
        src: RelRef,
        /// Projection target `Y ⊆ schema(src)`.
        onto: AttrSet,
    },
    /// `R_k := R_i ⋉ R_j`.
    Semijoin {
        /// Left operand (whose schema the result keeps).
        left: RelRef,
        /// Right operand.
        right: RelRef,
    },
}

/// A §6 program over a base schema.
///
/// # Examples
///
/// ```
/// use gyo_schema::{AttrSet, Catalog, DbSchema};
/// use gyo_query::Program;
///
/// let mut cat = Catalog::alphabetic();
/// let d = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
/// let mut p = Program::new(d);
/// let abc = p.join(0, 1);   // ab ⋈ bc
/// let acd = p.join(2, 3);   // cd ⋈ da
/// let top = p.join(abc, acd);
/// let _ans = p.project(top, AttrSet::parse("ac", &mut cat).unwrap());
/// assert_eq!(p.p_of_d().len(), 4 + 4); // base + 4 created relations
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    base: DbSchema,
    stmts: Vec<Statement>,
    schemas: Vec<AttrSet>,
}

impl Program {
    /// An empty program over `base`.
    pub fn new(base: DbSchema) -> Self {
        let schemas = base.iter().cloned().collect();
        Self {
            base,
            stmts: Vec::new(),
            schemas,
        }
    }

    /// The base schema `D`.
    #[inline]
    pub fn base(&self) -> &DbSchema {
        &self.base
    }

    /// The statements, in order.
    #[inline]
    pub fn statements(&self) -> &[Statement] {
        &self.stmts
    }

    /// Number of statements.
    #[inline]
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program has no statements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// The schema of relation `r` (base or created).
    #[inline]
    pub fn schema_of(&self, r: RelRef) -> &AttrSet {
        &self.schemas[r]
    }

    /// Appends `R_k := R_i ⋈ R_j`; returns `k`.
    pub fn join(&mut self, left: RelRef, right: RelRef) -> RelRef {
        let schema = self.schemas[left].union(&self.schemas[right]);
        self.stmts.push(Statement::Join { left, right });
        self.schemas.push(schema);
        self.schemas.len() - 1
    }

    /// Appends `R_k := π_onto(R_src)`; returns `k`.
    ///
    /// # Panics
    ///
    /// Panics if `onto ⊄ schema(src)`.
    pub fn project(&mut self, src: RelRef, onto: AttrSet) -> RelRef {
        assert!(
            onto.is_subset(&self.schemas[src]),
            "projection target must be a subset of the source schema"
        );
        self.stmts.push(Statement::Project {
            src,
            onto: onto.clone(),
        });
        self.schemas.push(onto);
        self.schemas.len() - 1
    }

    /// Appends `R_k := R_i ⋉ R_j`; returns `k`.
    pub fn semijoin(&mut self, left: RelRef, right: RelRef) -> RelRef {
        let schema = self.schemas[left].clone();
        self.stmts.push(Statement::Semijoin { left, right });
        self.schemas.push(schema);
        self.schemas.len() - 1
    }

    /// The schema mapping `P(D)`: the base relation schemas plus every
    /// created relation schema, as a database schema (§6).
    pub fn p_of_d(&self) -> DbSchema {
        DbSchema::new(self.schemas.clone())
    }

    /// Executes the program on a state for the base schema, returning the
    /// full relation space (originals + created).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not match the base schema.
    pub fn execute(&self, state: &DbState) -> Vec<Relation> {
        assert_eq!(state.len(), self.base.len(), "state/schema mismatch");
        let mut rels: Vec<Relation> = state.rels().to_vec();
        rels.reserve(self.stmts.len());
        for stmt in &self.stmts {
            let next = match stmt {
                Statement::Join { left, right } => rels[*left].natural_join(&rels[*right]),
                Statement::Project { src, onto } => rels[*src].project(onto),
                Statement::Semijoin { left, right } => rels[*left].semijoin(&rels[*right]),
            };
            rels.push(next);
        }
        rels
    }

    /// Executes with per-statement cost accounting: tuple counts of the
    /// operands and of the result — the proxy Bernstein–Chiu use for
    /// communication cost when semijoins are shipped between sites.
    pub fn execute_with_stats(&self, state: &DbState) -> (Vec<Relation>, Vec<StatementStats>) {
        assert_eq!(state.len(), self.base.len(), "state/schema mismatch");
        let mut rels: Vec<Relation> = state.rels().to_vec();
        rels.reserve(self.stmts.len());
        let mut stats = Vec::with_capacity(self.stmts.len());
        for stmt in &self.stmts {
            let (next, input_tuples) = match stmt {
                Statement::Join { left, right } => (
                    rels[*left].natural_join(&rels[*right]),
                    rels[*left].len() + rels[*right].len(),
                ),
                Statement::Project { src, onto } => (rels[*src].project(onto), rels[*src].len()),
                Statement::Semijoin { left, right } => (
                    rels[*left].semijoin(&rels[*right]),
                    rels[*left].len() + rels[*right].len(),
                ),
            };
            stats.push(StatementStats {
                input_tuples,
                output_tuples: next.len(),
            });
            rels.push(next);
        }
        (rels, stats)
    }

    /// Executes and returns the value of the last statement (the program's
    /// output, per §6).
    ///
    /// # Panics
    ///
    /// Panics if the program has no statements.
    pub fn run(&self, state: &DbState) -> Relation {
        assert!(!self.stmts.is_empty(), "program has no statements");
        self.execute(state)
            .pop()
            .expect("execute returns base + created relations")
    }

    /// Whether `P` computes the answer of `(D, X)` on this particular
    /// state.
    pub fn solves_on(&self, state: &DbState, q: &JoinQuery) -> bool {
        self.run(state) == q.eval(state)
    }

    /// Empirical refutation of "P solves (D, X)": evaluates on the frozen
    /// canonical instance of `(D, X)` and on `tries` random UR states,
    /// returning a counterexample universal relation if any disagrees.
    pub fn find_counterexample<R: rand::Rng + ?Sized>(
        &self,
        q: &JoinQuery,
        rng: &mut R,
        tries: usize,
        rows: usize,
        domain: u64,
    ) -> Option<Relation> {
        let frozen = gyo_tableau::Tableau::standard(q.schema(), q.target()).freeze();
        let canonical = frozen.to_relation();
        let state = DbState::from_universal(&canonical, q.schema());
        if !self.solves_on(&state, q) {
            return Some(canonical);
        }
        for _ in 0..tries {
            let i =
                gyo_workloads_shim::random_universal(rng, &q.schema().attributes(), rows, domain);
            let state = DbState::from_universal(&i, q.schema());
            if !self.solves_on(&state, q) {
                return Some(i);
            }
        }
        None
    }

    /// Renders the program in the paper's assignment notation.
    pub fn to_notation(&self, cat: &Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let n = self.base.len();
        for (k, stmt) in self.stmts.iter().enumerate() {
            let target = n + k;
            match stmt {
                Statement::Join { left, right } => writeln!(
                    out,
                    "R{} := R{} ⋈ R{}   -- {}",
                    target,
                    left,
                    right,
                    self.schemas[target].to_notation(cat)
                ),
                Statement::Project { src, onto } => {
                    writeln!(out, "R{} := π_{}(R{})", target, onto.to_notation(cat), src)
                }
                Statement::Semijoin { left, right } => writeln!(
                    out,
                    "R{} := R{} ⋉ R{}   -- {}",
                    target,
                    left,
                    right,
                    self.schemas[target].to_notation(cat)
                ),
            }
            .expect("write to string");
        }
        out
    }
}

/// Per-statement execution statistics; see
/// [`Program::execute_with_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatementStats {
    /// Total tuples read by the statement (sum over operands).
    pub input_tuples: usize,
    /// Tuples in the created relation.
    pub output_tuples: usize,
}

/// A tiny internal shim so `Program::find_counterexample` does not force a
/// public dependency from `gyo-query` onto the workloads crate: random
/// universal relations are generated inline.
mod gyo_workloads_shim {
    use gyo_relation::Relation;
    use gyo_schema::AttrSet;
    use rand::Rng;

    pub fn random_universal<R: Rng + ?Sized>(
        rng: &mut R,
        attrs: &AttrSet,
        rows: usize,
        domain: u64,
    ) -> Relation {
        let width = attrs.len();
        let data: Vec<u64> = (0..rows * width)
            .map(|_| rng.random_range(0..domain))
            .collect();
        Relation::from_row_major(attrs.clone(), rows, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DbSchema, AttrSet, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        (d, x, cat)
    }

    #[test]
    fn join_all_then_project_solves() {
        let (d, x, _) = setup();
        let mut p = Program::new(d.clone());
        let j1 = p.join(0, 1);
        let j2 = p.join(j1, 2);
        let j3 = p.join(j2, 3);
        p.project(j3, x.clone());
        let q = JoinQuery::new(d.clone(), x);

        let mut rng = StdRng::seed_from_u64(31);
        assert!(p.find_counterexample(&q, &mut rng, 20, 30, 4).is_none());
    }

    #[test]
    fn partial_join_fails_on_rings() {
        // Joining only three of the four ring relations does not solve
        // (ring, ac): the missing da constraint shows up on some instance.
        let (d, x, _) = setup();
        let mut p = Program::new(d.clone());
        let j1 = p.join(0, 1);
        let j2 = p.join(j1, 2);
        p.project(j2, x.clone());
        let q = JoinQuery::new(d.clone(), x);
        let mut rng = StdRng::seed_from_u64(32);
        let cex = p.find_counterexample(&q, &mut rng, 50, 30, 3);
        assert!(cex.is_some(), "the ring needs all four relations");
    }

    #[test]
    fn p_of_d_tracks_created_schemas() {
        let (d, x, mut cat) = setup();
        let mut p = Program::new(d);
        let j1 = p.join(0, 1);
        assert_eq!(p.schema_of(j1), &AttrSet::parse("abc", &mut cat).unwrap());
        let pr = p.project(j1, x.clone());
        assert_eq!(p.schema_of(pr), &x);
        let sj = p.semijoin(2, pr);
        assert_eq!(
            p.schema_of(sj),
            &AttrSet::parse("cd", &mut cat).unwrap(),
            "semijoin keeps the left schema"
        );
        assert_eq!(p.p_of_d().len(), 4 + 3);
    }

    #[test]
    fn execute_matches_engine_semantics() {
        let (d, _, mut cat) = setup();
        let u = d.attributes();
        let i = Relation::new(
            u,
            vec![vec![1, 2, 3, 4], vec![1, 2, 3, 5], vec![9, 2, 3, 4]],
        );
        let state = DbState::from_universal(&i, &d);
        let mut p = Program::new(d);
        let j = p.join(0, 1);
        let s = p.semijoin(2, j);
        let onto = AttrSet::parse("c", &mut cat).unwrap();
        p.project(s, onto);
        let rels = p.execute(&state);
        assert_eq!(rels[j], state.rel(0).natural_join(state.rel(1)));
        assert_eq!(rels[s], state.rel(2).semijoin(&rels[j]));
        assert_eq!(p.run(&state), rels.last().unwrap().clone());
    }

    #[test]
    fn stats_track_sizes() {
        let (d, x, _) = setup();
        let u = d.attributes();
        let i = Relation::new(u, vec![vec![1, 2, 3, 4], vec![1, 2, 3, 5]]);
        let state = DbState::from_universal(&i, &d);
        let mut p = Program::new(d);
        let j = p.join(0, 1);
        p.project(j, x);
        let (rels, stats) = p.execute_with_stats(&state);
        assert_eq!(stats.len(), 2);
        assert_eq!(
            stats[0].input_tuples,
            state.rel(0).len() + state.rel(1).len()
        );
        assert_eq!(stats[0].output_tuples, rels[4].len());
        assert_eq!(stats[1].output_tuples, rels[5].len());
        // plain execute agrees
        assert_eq!(p.execute(&state), rels);
    }

    #[test]
    #[should_panic(expected = "no statements")]
    fn empty_program_has_no_output() {
        let (d, _, _) = setup();
        let state =
            DbState::from_universal(&Relation::new(d.attributes(), vec![vec![1, 2, 3, 4]]), &d);
        Program::new(d).run(&state);
    }

    #[test]
    fn notation_rendering() {
        let (d, x, cat) = setup();
        let mut p = Program::new(d);
        let j = p.join(0, 1);
        p.project(j, x);
        let s = p.to_notation(&cat);
        assert!(s.contains("R4 := R0 ⋈ R1"), "{s}");
        assert!(s.contains("R5 := π_ac(R4)"), "{s}");
    }
}
