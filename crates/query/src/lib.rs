//! Join queries over universal-relation databases: the algorithmic content
//! of §§4–6 of the paper.
//!
//! * [`query`] — the natural-join query `(D, X)` and its naive evaluation;
//! * [`equiv`] — weak containment/equivalence of queries over UR databases,
//!   decided three independent ways (canonical connections, containment
//!   mappings, and the frozen-tableau Chandra–Merlin oracle), plus the
//!   Theorem 4.1 / Corollary 4.1 join-only solvability criterion and the
//!   §6 irrelevant-relation pruning;
//! * [`lossless`] — lossless joins: `⋈D ⊨ ⋈D'` via Theorem 5.1 and the
//!   tree-schema subtree characterization (Corollary 5.2);
//! * [`program`] — §6 programs (join/project/semijoin statements), their
//!   schema mapping `P(D)`, execution, and empirical solvability checking;
//! * [`yannakakis`] — the full reducer and the tree-query solver that §4's
//!   "tree case" alludes to (semijoin programs à la Bernstein–Chiu);
//! * [`engine`] — the [`Engine`] trait over the naive, per-call-Yannakakis,
//!   and cached full-reducer evaluation strategies, with a schema-keyed
//!   plan cache ([`FullReducerEngine`]) and the [`EngineError`] cyclicity
//!   diagnostic every decline path carries;
//! * [`treeify`] — §4's strategy for cyclic schemas: materialize
//!   `U(GR(D))` (Corollary 3.2), then solve on the resulting tree schema;
//! * [`treeify_engine`] — the cached, **total** version of that strategy:
//!   [`TreeifyEngine`] answers every schema, delegating tree schemas to
//!   the full-reducer engine and running cyclic ones over a cached
//!   [`TreeifyPlan`];
//! * [`tp_solve`] — the Theorem 6.1/6.2 construction: augment a program
//!   holding a tree projection with ≤ 2·|D″| semijoins to solve `(D, X)`.

#![warn(missing_docs)]

pub mod engine;
pub mod equiv;
pub mod lossless;
pub mod optimize;
pub mod program;
pub mod query;
pub mod tp_solve;
pub mod treeify;
pub mod treeify_engine;
pub mod ujr;
pub mod ur_transform;
pub mod yannakakis;

pub use engine::{
    standard_engines, Engine, EngineError, FullReducerEngine, FullReducerPlan, IncrementalEngine,
    NaiveEngine,
};
pub use equiv::{
    joins_only_solvable, prune_irrelevant, weakly_contained_semantic, weakly_equivalent,
    weakly_equivalent_semantic, PrunedQuery,
};
pub use lossless::{implies_lossless, implies_lossless_semantic, min_equivalent_subschema};
pub use optimize::{eliminate_dead_statements, Slimmed};
pub use program::{Program, RelRef, Statement, StatementStats};
pub use query::JoinQuery;
pub use tp_solve::solve_with_tree_projection;
pub use treeify::{reduce_via_treeification, solve_via_treeification};
pub use treeify_engine::{TreeifyEngine, TreeifyPlan};
pub use ujr::{check_ujr, is_ujr, minimum_qual_graphs, UjrViolation};
pub use ur_transform::{is_ur_state, to_ur_state};
pub use yannakakis::{full_reduce, full_reducer_program, solve_tree_query};
