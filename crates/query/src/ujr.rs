//! Ultra join reduction (§5.1, following Goodman & Shmueli \[11\]).
//!
//! A database state `D` for schema `D` is **UJR** if, for every
//! minimum-size qual graph `G` for `D` and every connected subgraph of `G`
//! with nodes `r₁,…,rₖ` (relation schemas `R₁,…,Rₖ`), the sub-join equals
//! the projection of the global join:
//!
//! ```text
//! ⋈ᵢ Rᵢ  =  π_{U(R₁…Rₖ)} ( ⋈_{R∈D} R ).
//! ```
//!
//! The paper interprets \[11\]'s results through Corollary 5.2:
//!
//! * for **tree** schemas, every UR database is UJR — a minimum-size qual
//!   graph is a qual tree, its connected subgraphs are subtrees, and
//!   subtrees have lossless joins;
//! * for **cyclic** schemas the converse fails: some UR database is not
//!   UJR, because a connected subgraph of a minimal qual graph need not
//!   satisfy `CC(D, U(D')) ⊆ D'`.
//!
//! Minimum-size qual graphs are found by exhaustive edge-subset search
//! (small schemas only — the enumeration is exponential by nature).

use gyo_relation::DbState;
use gyo_schema::{DbSchema, QualGraph};

/// All qual graphs for `d` with the minimum possible number of edges.
///
/// For a tree schema the result is exactly the set of qual trees (possibly
/// fewer edges if `d` has disconnected components). Enumeration is over all
/// edge subsets of the complete graph in increasing size.
///
/// # Panics
///
/// Panics if `d.len() > 6` (the enumeration is `2^(n(n−1)/2)`).
pub fn minimum_qual_graphs(d: &DbSchema) -> Vec<QualGraph> {
    let n = d.len();
    assert!(
        n <= 6,
        "minimum qual graph enumeration limited to ≤ 6 relations"
    );
    if n == 0 {
        return vec![QualGraph::new(0, [])];
    }
    let all_edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let m = all_edges.len();
    for size in 0..=m {
        let mut found = Vec::new();
        for mask in 0u64..(1 << m) {
            if mask.count_ones() as usize != size {
                continue;
            }
            let edges = all_edges
                .iter()
                .enumerate()
                .filter(|(b, _)| mask >> b & 1 == 1)
                .map(|(_, &e)| e);
            let g = QualGraph::new(n, edges);
            if g.is_valid_for(d) {
                found.push(g);
            }
        }
        if !found.is_empty() {
            return found;
        }
    }
    unreachable!("the complete graph is always a qual graph")
}

/// The node subsets of `g` that induce connected subgraphs with at least
/// two nodes (singletons are trivially UJR).
fn connected_subsets(g: &QualGraph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    let adj = g.adjacency();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if nodes.len() < 2 {
            continue;
        }
        // BFS within the induced subgraph.
        let mut seen = vec![false; n];
        let mut stack = vec![nodes[0]];
        seen[nodes[0]] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if mask >> w & 1 == 1 && !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        if count == nodes.len() {
            out.push(nodes);
        }
    }
    out
}

/// A witness that a state is not UJR: the offending qual graph, the
/// connected node subset, and the sizes of the two sides.
#[derive(Clone, Debug)]
pub struct UjrViolation {
    /// The minimum-size qual graph exhibiting the violation.
    pub graph: QualGraph,
    /// The connected node subset whose sub-join is lossy.
    pub nodes: Vec<usize>,
    /// `|⋈ᵢ Rᵢ|` — the sub-join size.
    pub subjoin_size: usize,
    /// `|π(⋈ D)|` — the projected-global-join size (always ≤ the above).
    pub projection_size: usize,
}

/// Checks the UJR property of a state, returning the first violation found
/// (or `None` if the state is UJR).
///
/// # Panics
///
/// Panics if `d.len() > 6` (see [`minimum_qual_graphs`]).
pub fn check_ujr(d: &DbSchema, state: &DbState) -> Option<UjrViolation> {
    let global = state.join_all();
    for g in minimum_qual_graphs(d) {
        for nodes in connected_subsets(&g) {
            let mut sub = gyo_relation::Relation::identity();
            for &i in &nodes {
                sub = sub.natural_join(state.rel(i));
            }
            let projected = if global.is_empty() {
                gyo_relation::Relation::empty(sub.attrs().clone())
            } else {
                global.project(sub.attrs())
            };
            if sub != projected {
                return Some(UjrViolation {
                    nodes,
                    subjoin_size: sub.len(),
                    projection_size: projected.len(),
                    graph: g,
                });
            }
        }
    }
    None
}

/// Whether the state is UJR.
pub fn is_ujr(d: &DbSchema, state: &DbState) -> bool {
    check_ujr(d, state).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_reduce::is_tree_schema;
    use gyo_relation::Relation;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    #[test]
    fn minimum_qual_graph_of_tree_schema_is_its_qual_trees() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd", &mut cat);
        let graphs = minimum_qual_graphs(&d);
        assert_eq!(graphs.len(), 1, "the chain has a unique qual tree");
        assert!(graphs[0].is_tree());
    }

    #[test]
    fn minimum_qual_graph_of_triangle_is_the_triangle() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ac", &mut cat);
        let graphs = minimum_qual_graphs(&d);
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].edges().len(), 3, "all three edges are forced");
    }

    #[test]
    fn disconnected_schema_minimum_graph_has_no_edges() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, cd", &mut cat);
        let graphs = minimum_qual_graphs(&d);
        assert!(graphs.iter().any(|g| g.edges().is_empty()));
    }

    #[test]
    fn tree_schema_ur_states_are_ujr() {
        // [11] via Corollary 5.2: every UR database for a tree schema is
        // UJR.
        let mut cat = Catalog::alphabetic();
        let mut rng = StdRng::seed_from_u64(61);
        for s in ["ab, bc, cd", "abc, cde, ace", "ab, ac, ad"] {
            let d = db(s, &mut cat);
            assert!(is_tree_schema(&d));
            for round in 0..5 {
                let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 25, 4);
                let state = DbState::from_universal(&i, &d);
                assert!(is_ujr(&d, &state), "case {s}, round {round}");
            }
        }
    }

    #[test]
    fn triangle_has_a_non_ujr_ur_state() {
        // [11]: for every cyclic schema some UR database is not UJR. For
        // the triangle, the classic 2-tuple instance works: joining any two
        // edges invents a tuple the third edge forbids.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ac", &mut cat);
        let u = attrs_of("abc", &mut cat);
        let i = Relation::new(u, vec![vec![0, 0, 1], vec![1, 0, 0]]);
        let state = DbState::from_universal(&i, &d);
        let violation = check_ujr(&d, &state).expect("triangle UR state is lossy");
        assert_eq!(violation.nodes.len(), 2);
        assert!(violation.subjoin_size > violation.projection_size);
    }

    fn attrs_of(s: &str, cat: &mut Catalog) -> gyo_schema::AttrSet {
        gyo_schema::AttrSet::parse(s, cat).unwrap()
    }

    #[test]
    fn ring_has_a_non_ujr_ur_state_found_by_sampling() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da", &mut cat);
        let mut rng = StdRng::seed_from_u64(62);
        let mut found = false;
        for _ in 0..40 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 6, 2);
            let state = DbState::from_universal(&i, &d);
            if !is_ujr(&d, &state) {
                found = true;
                break;
            }
        }
        assert!(found, "some UR state of the ring must fail UJR");
    }

    #[test]
    fn empty_state_is_ujr() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, ac", &mut cat);
        let i = Relation::empty(attrs_of("abc", &mut cat));
        let state = DbState::from_universal(&i, &d);
        assert!(is_ujr(&d, &state));
    }
}
