//! Weak containment and equivalence of join queries over UR databases
//! (§4), and the §6 irrelevant-relation pruning.
//!
//! `Q ⊑ Q'` ("weakly contained") iff `Q(D) ⊆ Q'(D)` for every universal
//! database `D`. Because UR databases are parameterized by the universal
//! relation `I`, weak containment is conjunctive-query containment over the
//! single base relation `I`, decidable by the Chandra–Merlin test: evaluate
//! the containing query on the **frozen tableau** of the contained query and
//! look for the frozen summary row. The library exposes three independent
//! deciders:
//!
//! 1. [`weakly_contained_semantic`] — the frozen-tableau evaluation;
//! 2. containment mappings (`gyo_tableau::find_containment`);
//! 3. Theorem 4.1: for `D' ≤ D`, `(D, X) ≡ (D', X)` iff `CC(D, X) ≤ D'`.
//!
//! The test suites assert all three agree.

use gyo_relation::{DbState, Relation};
use gyo_schema::{AttrSet, DbSchema};
use gyo_tableau::{canonical_connection, Tableau};

use crate::query::JoinQuery;

/// Chandra–Merlin weak containment: `q ⊑ q2` over all UR databases.
///
/// Freezes `Tab(q)` (built over the joint universe `U(q) ∪ U(q2)`, so both
/// queries can read the canonical instance), evaluates `q2` on the
/// resulting UR database, and checks that the frozen summary row of `q`
/// appears.
///
/// # Panics
///
/// Panics if the queries have different targets.
pub fn weakly_contained_semantic(q: &JoinQuery, q2: &JoinQuery) -> bool {
    assert_eq!(q.target(), q2.target(), "queries must share the target X");
    let universe = q.schema().attributes().union(&q2.schema().attributes());
    let frozen = Tableau::standard_over(q.schema(), q.target(), &universe).freeze();
    let universal = frozen.to_relation();
    let state = DbState::from_universal(&universal, q2.schema());
    let answer = state.eval_join_query(q2.target());
    answer.contains(&frozen.summary)
}

/// Weak equivalence via the semantic (frozen-tableau) test in both
/// directions. Exact — not sampled.
pub fn weakly_equivalent_semantic(q: &JoinQuery, q2: &JoinQuery) -> bool {
    weakly_contained_semantic(q, q2) && weakly_contained_semantic(q2, q)
}

/// Weak equivalence via canonical connections (Lemma 3.5:
/// `(D, X) ≡ (D', X)` iff `CC(D, X) = CC(D', X)`).
pub fn weakly_equivalent(q: &JoinQuery, q2: &JoinQuery) -> bool {
    assert_eq!(q.target(), q2.target(), "queries must share the target X");
    canonical_connection(q.schema(), q.target()) == canonical_connection(q2.schema(), q2.target())
}

/// Corollary 4.1: solving `(D, X)` by joining only the relations of
/// `D' ≤ D` (then projecting onto `X`) is possible iff `CC(D, X) ≤ D'`.
///
/// `d_sub` is given as indices into `d` (a sub-multiset).
pub fn joins_only_solvable(d: &DbSchema, x: &AttrSet, d_sub: &[usize]) -> bool {
    let cc = canonical_connection(d, x);
    cc.le(&d.project_rels(d_sub))
}

/// The §6 pruned query: `CC(D, X)` with, per member, a host relation of `D`
/// containing it, so the pruned query can be *executed* on any state for
/// `D` by projecting host states.
#[derive(Clone, Debug)]
pub struct PrunedQuery {
    /// `CC(D, X)`.
    pub schema: DbSchema,
    /// `hosts[i]`: index into `D` of a relation containing `schema.rel(i)`.
    pub hosts: Vec<usize>,
    /// The target `X`.
    pub target: AttrSet,
}

impl PrunedQuery {
    /// Evaluates the pruned query on a state for the *original* schema:
    /// materializes `π_S(R_host)` per member `S` and runs the join-project.
    pub fn eval(&self, d: &DbSchema, state: &DbState) -> Relation {
        assert_eq!(d.len(), state.len(), "state/schema mismatch");
        let rels: Vec<Relation> = self
            .schema
            .iter()
            .zip(&self.hosts)
            .map(|(s, &h)| state.rel(h).project(s))
            .collect();
        let pruned_state = DbState::new(&self.schema, rels);
        pruned_state.eval_join_query(&self.target)
    }
}

/// §6's irrelevant-relation elimination: computes `CC(D, X)` and the host
/// mapping. Relations of `D` hosting no member of `CC(D, X)` are irrelevant
/// to `(D, X)` on every UR database; attribute columns outside the members
/// are projected away.
///
/// # Panics
///
/// Panics if `X ⊄ U(D)`.
pub fn prune_irrelevant(d: &DbSchema, x: &AttrSet) -> PrunedQuery {
    let cc = canonical_connection(d, x);
    let hosts: Vec<usize> = cc
        .iter()
        .map(|s| {
            d.iter()
                .position(|r| s.is_subset(r))
                .expect("CC(D, X) ≤ GR(D, X) ≤ D: every member has a host")
        })
        .collect();
    PrunedQuery {
        schema: cc,
        hosts,
        target: x.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;
    use gyo_tableau::equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(schema: &str, x: &str, cat: &mut Catalog) -> JoinQuery {
        let d = DbSchema::parse(schema, cat).unwrap();
        let xs = AttrSet::parse(x, cat).unwrap();
        JoinQuery::new(d, xs)
    }

    #[test]
    fn section6_pruning_is_equivalent() {
        let mut cat = Catalog::alphabetic();
        let full = q("abg, bcg, acf, ad, de, ea", "abc", &mut cat);
        let pruned = q("abg, bcg, acf", "abc", &mut cat);
        assert!(weakly_equivalent(&full, &pruned));
        assert!(weakly_equivalent_semantic(&full, &pruned));
    }

    #[test]
    fn dropping_a_relevant_relation_changes_the_query() {
        let mut cat = Catalog::alphabetic();
        let full = q("abg, bcg, acf, ad, de, ea", "abc", &mut cat);
        let broken = q("abg, acf, ad, de, ea", "abc", &mut cat);
        assert!(!weakly_equivalent(&full, &broken));
        assert!(!weakly_equivalent_semantic(&full, &broken));
        // one direction still holds: fewer joins only grow the result
        assert!(weakly_contained_semantic(&full, &broken));
    }

    #[test]
    fn three_deciders_agree() {
        let mut cat = Catalog::alphabetic();
        let cases = [
            ("ab, bc, cd", "ad", "ab, bc, cd", "ad"),
            ("abc, ab, bc", "abc", "abc", "abc"),
            ("ab, bc, cd, da", "ac", "ab, bc, cd, da", "ac"),
            ("abg, bcg, acf, ad, de, ea", "abc", "abg, bcg, acf", "abc"),
            ("ab, bc", "ac", "ab, bc, bc", "ac"),
        ];
        for (d1, x1, d2, x2) in cases {
            let qa = q(d1, x1, &mut cat);
            let qb = q(d2, x2, &mut cat);
            let by_cc = weakly_equivalent(&qa, &qb);
            let by_frozen = weakly_equivalent_semantic(&qa, &qb);
            let by_mapping = {
                // tableau equivalence needs equal universes; guard.
                if qa.schema().attributes() == qb.schema().attributes() {
                    equivalent(
                        &Tableau::standard(qa.schema(), qa.target()),
                        &Tableau::standard(qb.schema(), qb.target()),
                    )
                } else {
                    by_cc // not comparable symbol-wise; trust CC
                }
            };
            assert_eq!(by_cc, by_frozen, "case {d1}|{x1} vs {d2}|{x2}");
            assert_eq!(by_cc, by_mapping, "case {d1}|{x1} vs {d2}|{x2}");
        }
    }

    #[test]
    fn theorem_4_1_join_only_solvability() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("abg, bcg, acf, ad, de, ea", &mut cat).unwrap();
        let x = AttrSet::parse("abc", &mut cat).unwrap();
        // CC = (abg, bcg, ac): joining {abg, bcg, acf} suffices…
        assert!(joins_only_solvable(&d, &x, &[0, 1, 2]));
        // …and so does the full D, but not {abg, acf}.
        assert!(joins_only_solvable(&d, &x, &[0, 1, 2, 3, 4, 5]));
        assert!(!joins_only_solvable(&d, &x, &[0, 2]));
    }

    #[test]
    fn pruned_query_evaluates_identically_on_random_ur_states() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("abg, bcg, acf, ad, de, ea", &mut cat).unwrap();
        let x = AttrSet::parse("abc", &mut cat).unwrap();
        let full = JoinQuery::new(d.clone(), x.clone());
        let pruned = prune_irrelevant(&d, &x);
        assert_eq!(pruned.schema.len(), 3);

        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..10 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 40, 4);
            let state = DbState::from_universal(&i, &d);
            assert_eq!(full.eval(&state), pruned.eval(&d, &state), "round {round}");
        }
    }

    #[test]
    fn pruning_tree_schema_with_full_target_keeps_reduction() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("abc, ab, bc", &mut cat).unwrap();
        let x = AttrSet::parse("abc", &mut cat).unwrap();
        let p = prune_irrelevant(&d, &x);
        assert_eq!(p.schema, DbSchema::parse("abc", &mut cat).unwrap());
        assert_eq!(p.hosts, vec![0]);
    }

    #[test]
    fn self_containment_always_holds() {
        let mut cat = Catalog::alphabetic();
        let qq = q("ab, bc, cd, da", "bd", &mut cat);
        assert!(weakly_contained_semantic(&qq, &qq));
        assert!(weakly_equivalent(&qq, &qq));
    }
}
