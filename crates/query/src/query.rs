//! The natural-join query `(D, X)` (§2).

use gyo_relation::{DbState, Relation};
use gyo_schema::{AttrSet, Catalog, DbSchema};

/// The query `Q = (D, X) = π_X(⋈_{R∈D} R)`.
///
/// # Examples
///
/// ```
/// use gyo_schema::{AttrSet, Catalog, DbSchema};
/// use gyo_relation::{DbState, Relation};
/// use gyo_query::JoinQuery;
///
/// let mut cat = Catalog::alphabetic();
/// let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
/// let x = AttrSet::parse("ac", &mut cat).unwrap();
/// let q = JoinQuery::new(d.clone(), x);
///
/// let i = Relation::new(d.attributes(), vec![vec![1, 2, 3]]);
/// let state = DbState::from_universal(&i, &d);
/// assert_eq!(q.eval(&state).to_vecs(), vec![vec![1, 3]]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinQuery {
    schema: DbSchema,
    target: AttrSet,
}

impl JoinQuery {
    /// Creates `(D, X)`.
    ///
    /// # Panics
    ///
    /// Panics if `X ⊄ U(D)` (the paper's standing assumption).
    pub fn new(schema: DbSchema, target: AttrSet) -> Self {
        assert!(
            target.is_subset(&schema.attributes()),
            "target X must be a subset of U(D)"
        );
        Self { schema, target }
    }

    /// The database schema `D`.
    #[inline]
    pub fn schema(&self) -> &DbSchema {
        &self.schema
    }

    /// The target `X`.
    #[inline]
    pub fn target(&self) -> &AttrSet {
        &self.target
    }

    /// Naive evaluation: join everything, project onto `X`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not match `D`.
    pub fn eval(&self, state: &DbState) -> Relation {
        assert_eq!(state.len(), self.schema.len(), "state/schema mismatch");
        state.eval_join_query(&self.target)
    }

    /// Renders `(D, X)` in the paper's notation.
    pub fn to_notation(&self, cat: &Catalog) -> String {
        format!(
            "({}, {})",
            self.schema.to_notation(cat),
            self.target.to_notation(cat)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_on_hand_built_state() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        let x = AttrSet::parse("a", &mut cat).unwrap();
        let ab = AttrSet::parse("ab", &mut cat).unwrap();
        let bc = AttrSet::parse("bc", &mut cat).unwrap();
        let state = DbState::new(
            &d,
            vec![
                Relation::new(ab, vec![vec![1, 10], vec![2, 20]]),
                Relation::new(bc, vec![vec![10, 7]]),
            ],
        );
        let q = JoinQuery::new(d, x);
        assert_eq!(q.eval(&state).to_vecs(), vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "subset of U(D)")]
    fn bad_target_rejected() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab", &mut cat).unwrap();
        let x = AttrSet::parse("c", &mut cat).unwrap();
        JoinQuery::new(d, x);
    }

    #[test]
    fn notation() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        let q = JoinQuery::new(d, x);
        assert_eq!(q.to_notation(&cat), "((ab, bc), ac)");
    }
}
