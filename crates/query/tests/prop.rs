//! Property tests for the query layer: programs, reducers, pruning, and
//! the containment preorder.

use gyo_query::{
    full_reduce, full_reducer_program, prune_irrelevant, weakly_contained_semantic, JoinQuery,
    Program,
};
use gyo_relation::DbState;
use gyo_schema::{AttrSet, DbSchema};
use gyo_workloads::{random_schema, random_tree_schema, random_universal};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn target_of(d: &DbSchema, k: usize) -> AttrSet {
    AttrSet::from_iter(d.attributes().iter().take(k.max(1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Join-everything-then-project programs always solve their query; the
    /// counterexample search must come up empty.
    #[test]
    fn join_all_programs_solve(seed in any::<u64>(), n in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_schema(&mut rng, n, 6, 3);
        let x = target_of(&d, 2);
        let q = JoinQuery::new(d.clone(), x.clone());
        let mut p = Program::new(d.clone());
        let mut acc = p.join(0, 0); // R₀ ⋈ R₀ = R₀ seeds the accumulator
        for i in 1..d.len() {
            acc = p.join(acc, i);
        }
        p.project(acc, x.clone());
        prop_assert!(p.find_counterexample(&q, &mut rng, 10, 15, 4).is_none());
    }

    /// The full-reducer *program* (§6 statements) reproduces the directly
    /// computed reduced states, node for node.
    #[test]
    fn reducer_program_matches_direct_reduction(seed in any::<u64>(), n in 2usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.4);
        let i = random_universal(&mut rng, &d.attributes(), 20, 4);
        let state = DbState::from_universal(&i, &d);
        let p = full_reducer_program(&d).expect("tree schema");
        prop_assert_eq!(p.len(), 2 * (n - 1), "2(n−1) semijoins");
        let rels = p.execute(&state);
        let reduced = full_reduce(&d, &state).expect("tree schema");
        // The final version of every node appears among the program's
        // relations; semijoins only shrink, so the *smallest* relation with
        // a node's schema that contains the reduced state IS the reduced
        // state.
        for k in 0..n {
            let target = reduced.rel(k);
            let found = rels.iter().enumerate().any(|(r, rel)| {
                p.schema_of(r) == d.rel(k) && rel == target
            });
            prop_assert!(found, "node {} reduced state not produced", k);
        }
    }

    /// Semijoin statements only ever shrink states (safety of reducers).
    #[test]
    fn semijoin_programs_shrink(seed in any::<u64>(), n in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.4);
        let i = random_universal(&mut rng, &d.attributes(), 15, 3);
        let state = DbState::from_universal(&i, &d);
        let p = full_reducer_program(&d).expect("tree schema");
        let rels = p.execute(&state);
        for (r, rel) in rels.iter().enumerate().skip(d.len()) {
            // every created relation has a base ancestor with the same
            // schema whose state contains it
            let base = (0..d.len()).find(|&k| d.rel(k) == p.schema_of(r));
            if let Some(k) = base {
                prop_assert!(rel.is_subset(state.rel(k)));
            }
        }
    }

    /// CC pruning never changes answers, on random tree schemas with
    /// arbitrary 1–3 attribute targets.
    #[test]
    fn pruning_preserves_answers(seed in any::<u64>(), n in 1usize..7, k in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.5);
        let x = target_of(&d, k);
        let q = JoinQuery::new(d.clone(), x.clone());
        let pruned = prune_irrelevant(&d, &x);
        prop_assert!(pruned.schema.len() <= d.len());
        let i = random_universal(&mut rng, &d.attributes(), 20, 4);
        let state = DbState::from_universal(&i, &d);
        prop_assert_eq!(q.eval(&state), pruned.eval(&d, &state));
    }

    /// Weak containment is a preorder: reflexive, and transitive across a
    /// chain of sub-schemas (dropping relations grows the answer).
    #[test]
    fn containment_is_a_preorder_on_subschema_chains(seed in any::<u64>(), n in 3usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_schema(&mut rng, n, 6, 3);
        let x = target_of(&d, 1);
        // build a chain D ⊇ D₁ ⊇ D₂ by dropping relations not holding X
        let keep1: Vec<usize> = (0..n).filter(|&i| i != n - 1 || d.rel(i).intersects(&x)).collect();
        let d1 = d.project_rels(&keep1);
        if !x.is_subset(&d1.attributes()) { return Ok(()); }
        let q = JoinQuery::new(d.clone(), x.clone());
        let q1 = JoinQuery::new(d1, x.clone());
        prop_assert!(weakly_contained_semantic(&q, &q));
        // fewer join constraints ⟹ larger answers: Q ⊑ Q₁
        prop_assert!(weakly_contained_semantic(&q, &q1));
    }
}
