//! Tree projections (§3.2 and §6 of the paper).
//!
//! For schemas `D ≤ D′`, a schema `D″` is a **tree projection** of `D′`
//! with respect to `D`, written `D″ ∈ TP(D′, D)`, when `D ≤ D″ ≤ D′` and
//! `D″` is a tree schema. For a query `Q = (D, X)`,
//! `TP(D′, Q) ≝ TP(D′, D ∪ (X))`.
//!
//! Tree projections are "the crux of the query processing problem"
//! (Theorems 6.1–6.4): a program `P` of joins/semijoins/projections solves
//! `(D, X)` essentially iff the schema `P(D)` it materializes admits a tree
//! projection w.r.t. the query (w.r.t. `CC(D, X) ∪ (X)` over UR databases).
//!
//! This crate provides:
//!
//! * [`validate`] / [`is_tree_projection`] — the (cheap) definition check,
//!   returning the *host* relation of `D′` for each member of `D″` so that
//!   executors can materialize `D″` states by projection;
//! * [`find_tree_projection`] — a cover-driven branch-and-bound search over
//!   subsets of `D′`'s relations (sound always; complete whenever a tree
//!   projection exists that uses at most `extras` members not containing
//!   any relation of `D`, and the search budget is not exhausted — deciding
//!   existence in general is NP-hard);
//! * [`exists_tp_bruteforce`] — a complete exponential oracle for tiny
//!   instances, used to validate the search in tests.

#![warn(missing_docs)]

pub mod search;

pub use search::{
    exists_tp_bruteforce, find_tree_projection, is_tree_projection, validate, TreeProjection,
};
