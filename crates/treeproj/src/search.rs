//! Tree-projection validation and search.

use gyo_reduce::is_tree_schema;
use gyo_schema::{AttrSet, DbSchema};

/// A validated tree projection `D″ ∈ TP(D′, D)` together with, per member
/// of `D″`, the index of a *host* relation of `D′` containing it (executors
/// materialize the member's state as a projection of the host's state).
#[derive(Clone, Debug)]
pub struct TreeProjection {
    /// The tree schema `D″`.
    pub schema: DbSchema,
    /// `hosts[i]` is an index into `D′` with `schema.rel(i) ⊆ D′[hosts[i]]`.
    pub hosts: Vec<usize>,
}

/// Checks `D ≤ D″ ≤ D′` and that `D″` is a tree schema; on success returns
/// the host mapping.
pub fn validate(d_pp: &DbSchema, d_p: &DbSchema, d: &DbSchema) -> Option<TreeProjection> {
    if !d.le(d_pp) {
        return None;
    }
    let mut hosts = Vec::with_capacity(d_pp.len());
    for s in d_pp.iter() {
        let host = d_p.iter().position(|r| s.is_subset(r))?;
        hosts.push(host);
    }
    if !is_tree_schema(d_pp) {
        return None;
    }
    Some(TreeProjection {
        schema: d_pp.clone(),
        hosts,
    })
}

/// Whether `d_pp ∈ TP(d_p, d)`.
pub fn is_tree_projection(d_pp: &DbSchema, d_p: &DbSchema, d: &DbSchema) -> bool {
    validate(d_pp, d_p, d).is_some()
}

/// Searches for some `D″ ∈ TP(D′, D)`.
///
/// Strategy:
///
/// 1. fast paths — `D` itself a tree schema (then `D″ = D`), or
///    `reduce(D′)` a tree schema (then `D″ = reduce(D′)`);
/// 2. cover-driven DFS: pick an uncovered `R ∈ D`, branch on every
///    candidate subset of a `D′` relation containing `R`; once `D` is
///    covered, test tree-ness, then allow up to `extras` additional
///    "connector" members.
///
/// The search is *sound* (every result validates). It is complete for
/// instances admitting a tree projection with at most `extras` connector
/// members, provided the `budget` of DFS steps suffices; `None` therefore
/// means "no tree projection found within bounds". Tree-projection
/// existence is NP-hard in general, so some bound is unavoidable.
///
/// # Panics
///
/// Panics if the candidate pool (all subsets of `reduce(D′)`'s relations)
/// would exceed 200 000 sets — keep `D′`'s arities small.
pub fn find_tree_projection(
    d_p: &DbSchema,
    d: &DbSchema,
    extras: usize,
    budget: usize,
) -> Option<TreeProjection> {
    if !d.le(d_p) {
        return None;
    }
    if is_tree_schema(d) {
        return validate(d, d_p, d);
    }
    let dp_red = d_p.reduce();
    if is_tree_schema(&dp_red) {
        return validate(&dp_red, d_p, d);
    }
    let pool = candidate_pool(&dp_red);
    let mut search = Search {
        d,
        d_p,
        pool: &pool,
        budget,
        found: None,
    };
    search.dfs(&mut Vec::new(), extras);
    search.found
}

/// Complete existence oracle for tiny instances: enumerates every subset of
/// the candidate pool.
///
/// # Panics
///
/// Panics if the candidate pool exceeds 20 sets.
pub fn exists_tp_bruteforce(d_p: &DbSchema, d: &DbSchema) -> bool {
    if !d.le(d_p) {
        return false;
    }
    let pool = candidate_pool(&d_p.reduce());
    assert!(pool.len() <= 20, "brute force limited to ≤ 20 candidates");
    for mask in 1u32..(1 << pool.len()) {
        let rels: Vec<AttrSet> = (0..pool.len())
            .filter(|&i| mask >> i & 1 == 1)
            .map(|i| pool[i].clone())
            .collect();
        let candidate = DbSchema::new(rels);
        if d.le(&candidate) && is_tree_schema(&candidate) {
            return true;
        }
    }
    false
}

/// All distinct nonempty subsets of the relations of `d_p`.
fn candidate_pool(d_p: &DbSchema) -> Vec<AttrSet> {
    let mut seen: std::collections::BTreeSet<AttrSet> = std::collections::BTreeSet::new();
    let mut total: usize = 0;
    for r in d_p.iter() {
        let attrs: Vec<_> = r.iter().collect();
        assert!(attrs.len() <= 18, "candidate pool explosion: arity > 18");
        total += 1usize << attrs.len();
        assert!(total <= 200_000, "candidate pool explosion: > 200k subsets");
        for mask in 1u64..(1 << attrs.len()) {
            let s = AttrSet::from_iter(
                (0..attrs.len())
                    .filter(|&b| mask >> b & 1 == 1)
                    .map(|b| attrs[b]),
            );
            seen.insert(s);
        }
    }
    // Prefer larger candidates first: they cover more and tend to keep the
    // chosen schema small.
    let mut pool: Vec<AttrSet> = seen.into_iter().collect();
    pool.sort_by_key(|s| std::cmp::Reverse(s.len()));
    pool
}

struct Search<'a> {
    d: &'a DbSchema,
    d_p: &'a DbSchema,
    pool: &'a [AttrSet],
    budget: usize,
    found: Option<TreeProjection>,
}

impl Search<'_> {
    fn dfs(&mut self, chosen: &mut Vec<usize>, extras: usize) -> bool {
        if self.found.is_some() {
            return true;
        }
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;

        // First uncovered relation of D.
        let uncovered = self
            .d
            .iter()
            .find(|r| !chosen.iter().any(|&c| r.is_subset(&self.pool[c])));
        match uncovered {
            Some(r) => {
                let candidate_ids: Vec<usize> = (0..self.pool.len())
                    .filter(|&c| !chosen.contains(&c) && r.is_subset(&self.pool[c]))
                    .collect();
                for c in candidate_ids {
                    chosen.push(c);
                    if self.dfs(chosen, extras) {
                        return true;
                    }
                    chosen.pop();
                }
                false
            }
            None => {
                let schema = DbSchema::new(chosen.iter().map(|&c| self.pool[c].clone()).collect());
                if is_tree_schema(&schema) {
                    self.found = validate(&schema, self.d_p, self.d);
                    debug_assert!(self.found.is_some(), "search results must validate");
                    return self.found.is_some();
                }
                if extras == 0 {
                    return false;
                }
                for c in 0..self.pool.len() {
                    if chosen.contains(&c) {
                        continue;
                    }
                    chosen.push(c);
                    if self.dfs(chosen, extras - 1) {
                        return true;
                    }
                    chosen.pop();
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    #[test]
    fn section_3_2_example_validates() {
        // The paper's §3.2 example:
        // D  = (ab, bc, cd, de, ef, fg, gh, ha)
        // D″ = (ab, abch, cdgh, defg, ef)
        // D′ = (abef, abch, cdgh, defg, ef)  [the paper prints "e"; the
        //       final relation must contain ef for D ≤ D′ to hold, and the
        //       qual tree it gives lists ef — we use ef]
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, de, ef, fg, gh, ha", &mut cat);
        let d_pp = db("ab, abch, cdgh, defg, ef", &mut cat);
        let d_p = db("abef, abch, cdgh, defg, ef", &mut cat);
        assert!(d.le(&d_pp) && d_pp.le(&d_p));
        assert!(is_tree_schema(&d_pp));
        assert!(!is_tree_schema(&d), "D is cyclic (the 8-ring)");
        assert!(!is_tree_schema(&d_p), "D′ is cyclic");
        let tp = validate(&d_pp, &d_p, &d).expect("the paper's D″ is a TP");
        assert_eq!(tp.schema, d_pp);
        // hosts point at containing relations
        for (i, s) in d_pp.iter().enumerate() {
            assert!(s.is_subset(d_p.rel(tp.hosts[i])));
        }
    }

    #[test]
    fn section_3_2_example_is_found_by_search() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, de, ef, fg, gh, ha", &mut cat);
        let d_p = db("abef, abch, cdgh, defg, ef", &mut cat);
        let tp = find_tree_projection(&d_p, &d, 2, 2_000_000).expect("a TP exists");
        assert!(is_tree_projection(&tp.schema, &d_p, &d));
    }

    #[test]
    fn tree_d_is_its_own_projection() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc", &mut cat);
        let d_p = db("abc", &mut cat);
        let tp = find_tree_projection(&d_p, &d, 0, 1000).expect("D is a tree");
        assert_eq!(tp.schema, d);
    }

    #[test]
    fn ring_with_no_big_relation_has_no_tp() {
        // D = D′ = 4-ring: any D″ sandwiched between them is the ring
        // itself (up to subsets), which is cyclic.
        let mut cat = Catalog::alphabetic();
        let ring = db("ab, bc, cd, da", &mut cat);
        assert!(find_tree_projection(&ring, &ring, 2, 100_000).is_none());
        assert!(!exists_tp_bruteforce(&ring, &ring));
    }

    #[test]
    fn ring_with_two_triangles_has_tp() {
        // D = 4-ring, D′ = (abc, acd): D″ = D′ is a tree schema.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, bc, cd, da", &mut cat);
        let d_p = db("abc, acd", &mut cat);
        let tp = find_tree_projection(&d_p, &d, 0, 1000).expect("triangulated");
        assert!(is_tree_schema(&tp.schema));
        assert!(exists_tp_bruteforce(&d_p, &d));
    }

    #[test]
    fn le_precondition_enforced() {
        let mut cat = Catalog::alphabetic();
        let d = db("ab, xy", &mut cat);
        let d_p = db("abc", &mut cat);
        assert!(find_tree_projection(&d_p, &d, 1, 1000).is_none());
        assert!(!is_tree_projection(&d, &d_p, &d));
    }

    #[test]
    fn search_agrees_with_bruteforce_on_small_cases() {
        let mut cat = Catalog::alphabetic();
        let cases = [
            ("ab, bc, cd, da", "abc, acd"),
            ("ab, bc, cd, da", "abd, bcd"),
            ("ab, bc, ca", "abc"),
            ("ab, bc, ca", "ab, bc, ca"),
            ("ab, bc, cd", "abcd"),
        ];
        for (ds, dps) in cases {
            let d = db(ds, &mut cat);
            let d_p = db(dps, &mut cat);
            assert_eq!(
                find_tree_projection(&d_p, &d, 2, 1_000_000).is_some(),
                exists_tp_bruteforce(&d_p, &d),
                "case D={ds} D′={dps}"
            );
        }
    }

    #[test]
    fn connector_members_are_usable() {
        // D = (ab, cd) needs no connector (disconnected trees are fine),
        // but a search path with extras available must still terminate and
        // validate.
        let mut cat = Catalog::alphabetic();
        let d = db("ab, cd", &mut cat);
        let d_p = db("abz, cdz", &mut cat);
        let tp = find_tree_projection(&d_p, &d, 2, 100_000).expect("trivially a tree");
        assert!(is_tree_projection(&tp.schema, &d_p, &d));
    }
}
