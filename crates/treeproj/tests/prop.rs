//! Property tests for tree-projection search: soundness everywhere,
//! completeness against the brute-force oracle on tiny instances.

use gyo_reduce::is_tree_schema;
use gyo_schema::{AttrSet, DbSchema};
use gyo_treeproj::{exists_tp_bruteforce, find_tree_projection, is_tree_projection};
use proptest::prelude::*;

fn schema(max_rels: usize, attrs: u32, max_arity: usize) -> impl Strategy<Value = DbSchema> {
    proptest::collection::vec(
        proptest::collection::vec(0..attrs, 1..=max_arity).prop_map(|v| AttrSet::from_raw(&v)),
        1..=max_rels,
    )
    .prop_map(DbSchema::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every result of the search validates as a genuine tree projection.
    #[test]
    fn search_is_sound(d in schema(4, 5, 2), d_p in schema(3, 5, 4)) {
        if let Some(tp) = find_tree_projection(&d_p, &d, 2, 200_000) {
            prop_assert!(is_tree_projection(&tp.schema, &d_p, &d));
            prop_assert!(is_tree_schema(&tp.schema));
            prop_assert!(d.le(&tp.schema));
            prop_assert!(tp.schema.le(&d_p));
            // hosts are correct
            for (i, s) in tp.schema.iter().enumerate() {
                prop_assert!(s.is_subset(d_p.rel(tp.hosts[i])));
            }
        }
    }

    /// On tiny candidate pools the bounded search agrees with the complete
    /// brute-force enumeration.
    #[test]
    fn search_is_complete_on_tiny_pools(d in schema(3, 4, 2), d_p in schema(2, 4, 3)) {
        // keep the pool under the brute-force limit
        let pool_bound: usize = d_p.reduce().iter().map(|r| (1usize << r.len()) - 1).sum();
        if pool_bound > 20 {
            return Ok(());
        }
        let fast = find_tree_projection(&d_p, &d, 3, 1_000_000).is_some();
        let brute = exists_tp_bruteforce(&d_p, &d);
        prop_assert_eq!(fast, brute, "D = {:?}, D' = {:?}", d, d_p);
    }

    /// A tree schema is always its own tree projection when D ≤ D′.
    #[test]
    fn tree_d_is_its_own_tp(d_p in schema(3, 5, 4)) {
        // Use D = reduce(D′) projected onto singletons: guaranteed ≤ D′.
        let d = DbSchema::new(
            d_p.iter().map(|r| AttrSet::from_iter(r.iter().take(1))).collect(),
        );
        prop_assert!(d.le(&d_p));
        // singleton relation schemas always form a tree schema
        prop_assert!(is_tree_schema(&d));
        let tp = find_tree_projection(&d_p, &d, 0, 10_000);
        prop_assert!(tp.is_some());
    }
}
