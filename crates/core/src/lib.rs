//! # gyo-core
//!
//! A complete implementation of Goodman, Shmueli & Tay, *"GYO Reductions,
//! Canonical Connections, Tree and Cyclic Schemas, and Tree Projections"*
//! (PODS 1983 / JCSS 29:338–358, 1984) — the foundational theory of acyclic
//! join processing — together with the relational substrate needed to run
//! every construction on real data.
//!
//! ## Map of the library
//!
//! | Paper concept | Module / item |
//! |---|---|
//! | attributes, relation & database schemas (§2) | [`schema`]: [`AttrSet`], [`DbSchema`], [`Catalog`] |
//! | qual graphs, qual (join) trees (§3.1) | [`schema`]: [`QualGraph`], [`JoinTree`] |
//! | GYO reduction `GR(D, X)` (§3.3) | [`mod@reduce`]: [`fn@gyo_reduce`], [`gr`], [`Reduction`] |
//! | tree vs cyclic schemas (Cor. 3.1) | [`mod@reduce`]: [`is_tree_schema`], [`classify`] |
//! | Arings, Acliques, Lemma 3.1 | [`mod@reduce`]: [`aring`], [`aclique`], [`find_cyclic_core`] |
//! | treeifying relation `U(GR(D))` (Cor. 3.2) | [`mod@reduce`]: [`treeifying_relation`] |
//! | subtrees of tree schemas (Thm 3.1) | [`mod@reduce`]: [`is_subtree`], [`join_tree_from_trace`] |
//! | tableaux, containment mappings (§3.4) | [`tableau`]: [`Tableau`], [`find_containment`] |
//! | canonical connection `CC(D, X)` (§3.4, Thm 3.3) | [`tableau`]: [`canonical_connection`] |
//! | weak equivalence of join queries (§4, Thm 4.1) | [`query`]: [`weakly_equivalent`], [`joins_only_solvable`] |
//! | fixed treefication, NP-completeness (Thm 4.2) | [`treefy`] |
//! | lossless joins (§5, Thm 5.1, Cor. 5.2) | [`query`]: [`implies_lossless`] |
//! | γ-acyclicity (§5.2, Thm 5.3) | [`gamma`]: [`is_gamma_acyclic`], [`find_weak_gamma_cycle`] |
//! | programs, `P(D)` (§6) | [`query`]: [`Program`] |
//! | full reducers, query engines (§4 "tree case") | [`query`]: [`Engine`], [`FullReducerEngine`], [`solve_tree_query`] |
//! | cyclic schemas via treeification (§4, Cor. 3.2) | [`query`]: [`TreeifyEngine`], [`solve_via_treeification`] |
//! | cyclicity diagnostics (stuck GYO residue) | [`query`]: [`EngineError`] |
//! | tree projections (§3.2, Thms 6.1–6.4) | [`treeproj`], [`query`]: [`solve_with_tree_projection`] |
//! | relational algebra over UR databases | [`relation`]: [`Relation`], [`DbState`] |
//!
//! ## Quickstart
//!
//! ```
//! use gyo_core::prelude::*;
//!
//! let mut cat = Catalog::alphabetic();
//! let d = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
//!
//! // The 4-ring is cyclic…
//! assert_eq!(classify(&d), SchemaKind::Cyclic);
//! // …and the cheapest relation fixing that is all four attributes.
//! assert_eq!(treeifying_relation(&d).to_notation(&cat), "abcd");
//!
//! // Canonical connections prune joins: for the chain, only the spine
//! // between a and c matters.
//! let chain = DbSchema::parse("ab, bc, cd", &mut cat).unwrap();
//! let x = AttrSet::parse("ac", &mut cat).unwrap();
//! let cc = canonical_connection(&chain, &x);
//! assert_eq!(cc.to_notation(&cat), "(ab, bc)");
//! ```

#![warn(missing_docs)]

pub use gyo_gamma as gamma;
pub use gyo_query as query;
pub use gyo_reduce as reduce;
pub use gyo_relation as relation;
pub use gyo_schema as schema;
pub use gyo_tableau as tableau;
pub use gyo_treefy as treefy;
pub use gyo_treeproj as treeproj;

pub use gyo_gamma::{
    acyclicity_report, find_weak_gamma_cycle, is_beta_acyclic, is_gamma_acyclic, AcyclicityLevel,
    AcyclicityReport, GammaCycle,
};
pub use gyo_query::{
    implies_lossless, joins_only_solvable, prune_irrelevant, reduce_via_treeification,
    solve_tree_query, solve_via_treeification, solve_with_tree_projection, standard_engines,
    weakly_equivalent, Engine, EngineError, FullReducerEngine, FullReducerPlan, IncrementalEngine,
    JoinQuery, NaiveEngine, Program, TreeifyEngine, TreeifyPlan,
};
pub use gyo_reduce::{
    aclique, aring, classify, find_cyclic_core, gr, gyo_reduce, is_subtree, is_tree_schema,
    join_tree_from_trace, treeifying_relation, CoreKind, Reduction, SchemaKind,
};
pub use gyo_relation::{DbState, Relation};
pub use gyo_schema::{AttrId, AttrSet, Catalog, DbSchema, JoinTree, QualGraph};
pub use gyo_tableau::{canonical_connection, evaluate, find_containment, minimize, Tableau};

/// Everything a typical user needs, importable in one line.
pub mod prelude {
    pub use gyo_gamma::{find_weak_gamma_cycle, is_gamma_acyclic};
    pub use gyo_query::{
        implies_lossless, joins_only_solvable, prune_irrelevant, solve_tree_query,
        solve_via_treeification, weakly_equivalent, Engine, EngineError, FullReducerEngine,
        IncrementalEngine, JoinQuery, NaiveEngine, Program, TreeifyEngine,
    };
    pub use gyo_reduce::{
        classify, find_cyclic_core, gr, gyo_reduce, is_subtree, is_tree_schema,
        treeifying_relation, SchemaKind,
    };
    pub use gyo_relation::{DbState, Relation};
    pub use gyo_schema::{AttrId, AttrSet, Catalog, DbSchema, JoinTree, QualGraph};
    pub use gyo_tableau::{canonical_connection, Tableau};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("abc, cde, ace, afe", &mut cat).unwrap();
        assert_eq!(classify(&d), SchemaKind::Tree);
        let x = AttrSet::parse("af", &mut cat).unwrap();
        let cc = canonical_connection(&d, &x);
        assert!(cc.le(&d));
    }
}
