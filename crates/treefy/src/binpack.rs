//! Bin packing: the NP-complete source problem of Theorem 4.2's reduction.

/// A bin packing instance: pack every item into at most `bins` bins of
/// capacity `capacity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinPacking {
    /// Item sizes `s(i) ∈ ℤ⁺`.
    pub sizes: Vec<u64>,
    /// The number of bins `K`.
    pub bins: usize,
    /// The bin capacity `B`.
    pub capacity: u64,
}

impl BinPacking {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if some size is zero.
    pub fn new(sizes: Vec<u64>, bins: usize, capacity: u64) -> Self {
        assert!(sizes.iter().all(|&s| s > 0), "item sizes must be positive");
        Self {
            sizes,
            bins,
            capacity,
        }
    }

    /// Validates an assignment (`assignment[i]` = bin of item `i`).
    pub fn is_valid(&self, assignment: &[usize]) -> bool {
        if assignment.len() != self.sizes.len() {
            return false;
        }
        let mut loads = vec![0u64; self.bins];
        for (&bin, &size) in assignment.iter().zip(&self.sizes) {
            if bin >= self.bins {
                return false;
            }
            loads[bin] += size;
        }
        loads.iter().all(|&l| l <= self.capacity)
    }
}

/// Exact bin packing by branch-and-bound: items in descending size order,
/// each placed into every feasible bin (skipping bins with identical load —
/// a standard symmetry break). Returns an assignment or `None`.
pub fn solve_bin_packing(inst: &BinPacking) -> Option<Vec<usize>> {
    let n = inst.sizes.len();
    if n == 0 {
        return Some(Vec::new());
    }
    if inst.bins == 0 || inst.sizes.iter().any(|&s| s > inst.capacity) {
        return None;
    }
    let total: u64 = inst.sizes.iter().sum();
    if total > inst.capacity * inst.bins as u64 {
        return None;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(inst.sizes[i]));
    let mut loads = vec![0u64; inst.bins];
    let mut assignment = vec![usize::MAX; n];
    fn rec(
        inst: &BinPacking,
        order: &[usize],
        depth: usize,
        loads: &mut [u64],
        assignment: &mut [usize],
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let item = order[depth];
        let size = inst.sizes[item];
        let mut tried: Vec<u64> = Vec::with_capacity(loads.len());
        for b in 0..loads.len() {
            if loads[b] + size > inst.capacity || tried.contains(&loads[b]) {
                continue;
            }
            tried.push(loads[b]);
            loads[b] += size;
            assignment[item] = b;
            if rec(inst, order, depth + 1, loads, assignment) {
                return true;
            }
            loads[b] -= size;
            assignment[item] = usize::MAX;
        }
        false
    }
    if rec(inst, &order, 0, &mut loads, &mut assignment) {
        debug_assert!(inst.is_valid(&assignment));
        Some(assignment)
    } else {
        None
    }
}

/// First-fit-decreasing: the classical 11/9·OPT + 1 heuristic. Returns an
/// assignment if FFD happens to fit within `bins`; `None` is *not* proof of
/// infeasibility.
pub fn first_fit_decreasing(inst: &BinPacking) -> Option<Vec<usize>> {
    let n = inst.sizes.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(inst.sizes[i]));
    let mut loads = vec![0u64; inst.bins];
    let mut assignment = vec![usize::MAX; n];
    for &item in &order {
        let size = inst.sizes[item];
        let slot = (0..inst.bins).find(|&b| loads[b] + size <= inst.capacity)?;
        loads[slot] += size;
        assignment[item] = slot;
    }
    debug_assert!(inst.is_valid(&assignment));
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_instances() {
        assert_eq!(
            solve_bin_packing(&BinPacking::new(vec![], 0, 10)),
            Some(vec![])
        );
        assert!(solve_bin_packing(&BinPacking::new(vec![11], 2, 10)).is_none());
        assert!(solve_bin_packing(&BinPacking::new(vec![5], 0, 10)).is_none());
    }

    #[test]
    fn exact_solves_tight_packing() {
        // 3+3+3, 4+5, 9 into three bins of 9.
        let inst = BinPacking::new(vec![3, 3, 3, 4, 5, 9], 3, 9);
        let a = solve_bin_packing(&inst).expect("feasible");
        assert!(inst.is_valid(&a));
    }

    #[test]
    fn exact_detects_infeasible() {
        // total 20 > 2 * 9
        assert!(solve_bin_packing(&BinPacking::new(vec![5, 5, 5, 5], 2, 9)).is_none());
        // total fits but shapes do not: 6,6,6 into two bins of 9
        assert!(solve_bin_packing(&BinPacking::new(vec![6, 6, 6], 2, 9)).is_none());
    }

    #[test]
    fn ffd_is_sound_but_incomplete() {
        // FFD fails on the classic adversarial instance while exact
        // succeeds: items 6,5,5,4,4,3,3 into three bins of 10.
        let inst = BinPacking::new(vec![6, 5, 5, 4, 4, 3, 3], 3, 10);
        let exact = solve_bin_packing(&inst);
        assert!(exact.is_some(), "6+4, 5+5, 4+3+3 fits");
        if let Some(a) = first_fit_decreasing(&inst) {
            assert!(inst.is_valid(&a));
        }
    }

    #[test]
    fn ffd_valid_when_it_fits() {
        let inst = BinPacking::new(vec![2, 2, 2, 2], 2, 4);
        let a = first_fit_decreasing(&inst).expect("fits exactly");
        assert!(inst.is_valid(&a));
    }

    #[test]
    fn validity_checks_bounds() {
        let inst = BinPacking::new(vec![3, 3], 2, 3);
        assert!(inst.is_valid(&[0, 1]));
        assert!(!inst.is_valid(&[0, 0])); // overload
        assert!(!inst.is_valid(&[0, 5])); // bin out of range
        assert!(!inst.is_valid(&[0])); // wrong length
    }
}
