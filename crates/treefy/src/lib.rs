//! Fixed treefication and its equivalence with bin packing (Theorem 4.2).
//!
//! **Fixed Treefication** (§4): given a schema `D` and integers `K`, `B`,
//! do relation schemas `R'₁, …, R'ₖ` (`k ≤ K`, `|R'ᵢ| ≤ B`) exist such that
//! `D ∪ (R'₁, …, R'ₖ)` is a tree schema? Adding a *single* relation has the
//! clean answer `U(GR(D))` (Corollary 3.2); adding several is NP-complete,
//! shown by reduction from **bin packing** (Garey & Johnson): item `i` of
//! size `s(i)` becomes an Aclique of size `s(i)` over fresh attributes —
//! each Aclique's attributes must land together in one added relation, so
//! the added relations are exactly bins.
//!
//! The crate implements:
//!
//! * [`binpack`] — exact branch-and-bound and first-fit-decreasing bin
//!   packing solvers;
//! * [`reduction`] — the instance transformation of Theorem 4.2 (both the
//!   construction and the witness mappings in each direction);
//! * [`solver`] — a complete exact solver for tiny generic instances and
//!   the Aclique-structured fast solver that the reduction's image admits.
//!
//! We cannot "measure" NP-completeness; what the benchmarks reproduce is
//! the *shape* the theorem predicts — the exact generic solver blows up
//! exponentially while the structured instances reduce to (still NP-hard
//! but tiny) bin packing.
//!
//! **Relation to `gyo_query`'s treeification modules**: this crate is
//! about the *decision problem* (can a budget of small added relations
//! treeify `D`?) and its hardness. The always-available, budget-free
//! construction — add the single relation `U(GR(D))` of Corollary 3.2 and
//! execute queries over the resulting tree schema — lives in `gyo_query`
//! as `solve_via_treeification` / `reduce_via_treeification` (per call)
//! and `TreeifyEngine` (cached plans, total over all schemas). When the
//! Theorem 4.2 budget `(K, B)` admits a solution with `B < |U(GR(D))|`,
//! the solvers here find *cheaper* treeifications than the canonical one
//! the engine uses — the engine trades that optimality for a
//! polynomial-time, cacheable plan.

#![warn(missing_docs)]

pub mod binpack;
pub mod reduction;
pub mod solver;

pub use binpack::{first_fit_decreasing, solve_bin_packing, BinPacking};
pub use reduction::{bin_packing_to_treefication, treefication_witness_to_packing};
pub use solver::{solve_aclique_treefication, solve_treefication_exact};
