//! The Theorem 4.2 reduction: bin packing ≤ₚ fixed treefication.
//!
//! Item `i` of size `s(i)` becomes an Aclique of size `s(i)` over a fresh
//! attribute block; `K` and `B` carry over. Completeness hinges on the
//! Aclique property that no attribute appears in only one relation, which
//! forces all of an Aclique's attributes to appear together in some added
//! relation — so added relations are bins and Aclique attribute sets are
//! items.

use gyo_reduce::aclique;
use gyo_schema::{AttrId, AttrSet, DbSchema};

use crate::binpack::BinPacking;

/// Builds the fixed-treefication instance for a bin packing instance:
/// returns the schema `D` (disjoint Acliques) plus the per-item attribute
/// blocks. The treefication parameters are the same `K` (bins) and `B`
/// (capacity).
///
/// # Panics
///
/// Panics if some item size is `< 3` — an Aclique needs at least 3
/// attributes. (Garey & Johnson's strong NP-completeness lets the paper
/// assume sizes divisible by 3.)
pub fn bin_packing_to_treefication(inst: &BinPacking) -> (DbSchema, Vec<AttrSet>) {
    let mut rels = Vec::new();
    let mut blocks = Vec::with_capacity(inst.sizes.len());
    let mut next: u32 = 0;
    for &s in &inst.sizes {
        assert!(s >= 3, "Aclique items need size ≥ 3");
        let attrs: Vec<AttrId> = (0..s).map(|k| AttrId(next + k as u32)).collect();
        next += s as u32;
        blocks.push(AttrSet::from_iter(attrs.iter().copied()));
        for r in aclique(&attrs).iter() {
            rels.push(r.clone());
        }
    }
    (DbSchema::new(rels), blocks)
}

/// Maps a treefication witness (the added relations) back to a bin packing
/// assignment, following the (⇒) direction of the Theorem 4.2 proof:
/// item `i` goes to a bin `j` whose added relation contains the item's
/// whole attribute block. Returns `None` if some block is not covered —
/// in which case the witness cannot be valid.
pub fn treefication_witness_to_packing(
    blocks: &[AttrSet],
    added: &[AttrSet],
) -> Option<Vec<usize>> {
    blocks
        .iter()
        .map(|block| added.iter().position(|r| block.is_subset(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::solve_bin_packing;
    use gyo_reduce::is_tree_schema;

    #[test]
    fn reduction_shape() {
        let inst = BinPacking::new(vec![3, 4], 2, 7);
        let (d, blocks) = bin_packing_to_treefication(&inst);
        // 3 + 4 relations, 3 + 4 attributes, disjoint blocks.
        assert_eq!(d.len(), 7);
        assert_eq!(d.attributes().len(), 7);
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].is_disjoint(&blocks[1]));
        assert!(!is_tree_schema(&d), "Acliques are cyclic");
    }

    #[test]
    fn packing_witness_maps_to_treefication_witness() {
        let inst = BinPacking::new(vec![3, 3, 4], 2, 7);
        let (d, blocks) = bin_packing_to_treefication(&inst);
        let assignment = solve_bin_packing(&inst).expect("3+4 | 3 fits in two 7-bins");
        // Build the added relations from the assignment (the (⇐) proof).
        let mut added = vec![AttrSet::empty(); inst.bins];
        for (item, &bin) in assignment.iter().enumerate() {
            added[bin] = added[bin].union(&blocks[item]);
        }
        let extended = added
            .iter()
            .filter(|r| !r.is_empty())
            .fold(d.clone(), |acc, r| acc.with_rel(r.clone()));
        assert!(is_tree_schema(&extended), "the (⇐) construction treeifies");
        for r in &added {
            assert!(r.len() as u64 <= inst.capacity);
        }
        // And the witness maps back to a valid packing.
        let back = treefication_witness_to_packing(&blocks, &added).expect("covered");
        assert!(inst.is_valid(&back));
    }

    #[test]
    fn splitting_an_aclique_across_relations_fails() {
        // The crux of the (⇒) proof: an Aclique's attributes must co-reside.
        let inst = BinPacking::new(vec![4], 2, 3);
        let (d, blocks) = bin_packing_to_treefication(&inst);
        // Try splitting the 4-attribute block into two halves ≤ 3.
        let attrs: Vec<AttrId> = blocks[0].iter().collect();
        let half1 = AttrSet::from_iter(attrs[..2].iter().copied());
        let half2 = AttrSet::from_iter(attrs[2..].iter().copied());
        let extended = d.with_rel(half1).with_rel(half2);
        assert!(!is_tree_schema(&extended), "split Aclique stays cyclic");
        // Even 3-attribute overlapping pieces fail.
        let p1 = AttrSet::from_iter(attrs[..3].iter().copied());
        let p2 = AttrSet::from_iter(attrs[1..].iter().copied());
        assert!(!is_tree_schema(&d.with_rel(p1).with_rel(p2)));
    }

    #[test]
    #[should_panic(expected = "size ≥ 3")]
    fn small_items_rejected() {
        bin_packing_to_treefication(&BinPacking::new(vec![2], 1, 5));
    }

    #[test]
    fn uncovered_block_maps_to_none() {
        let inst = BinPacking::new(vec![3], 1, 3);
        let (_, blocks) = bin_packing_to_treefication(&inst);
        assert!(treefication_witness_to_packing(&blocks, &[AttrSet::empty()]).is_none());
    }
}
