//! Fixed-treefication solvers.
//!
//! * [`solve_treefication_exact`] — complete search for tiny instances:
//!   try every ≤ K-subset of the candidate relations (subsets of `U(GR(D))`
//!   of size ≤ B) and test tree-ness. Exponential, as Theorem 4.2 predicts
//!   for any exact procedure (unless P = NP).
//! * [`solve_aclique_treefication`] — the fast solver for the structured
//!   instances produced by the Theorem 4.2 reduction (disjoint cyclic
//!   components each forming an Aclique): by the (⇒) proof each
//!   component's attributes must co-reside in one added relation, so the
//!   problem *is* bin packing over component attribute counts.

use gyo_reduce::cores::is_aclique;
use gyo_reduce::{gr, is_tree_schema};
use gyo_schema::{AttrId, AttrSet, DbSchema};

use crate::binpack::{solve_bin_packing, BinPacking};

/// Complete exact solver for tiny instances. Returns up to `k` added
/// relation schemas (each of size ≤ `b`) making `D ∪ (added)` a tree
/// schema, or `None` if no such relations exist.
///
/// Candidates are subsets of `U(GR(D))`: attributes already eliminated by
/// GYO cannot block tree-ness, and adding attributes outside `U(D)` never
/// helps (they are deletable immediately).
///
/// # Panics
///
/// Panics if the candidate count raised to `k` exceeds 5·10⁶ — the search
/// is exponential by design (Theorem 4.2); larger instances need the
/// structured solver.
pub fn solve_treefication_exact(d: &DbSchema, k: usize, b: u64) -> Option<Vec<AttrSet>> {
    if is_tree_schema(d) {
        return Some(Vec::new());
    }
    if k == 0 {
        return None;
    }
    let residue = gr(d, &AttrSet::empty()).attributes();
    let pool_attrs: Vec<AttrId> = residue.iter().collect();
    let mut candidates: Vec<AttrSet> = Vec::new();
    collect_subsets(&pool_attrs, b as usize, &mut candidates);
    // Largest candidates first: they absorb the most structure.
    candidates.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let est = (candidates.len() as f64).powi(k as i32);
    assert!(
        est <= 5e6,
        "exact treefication search too large ({} candidates ^ {k})",
        candidates.len()
    );
    let mut chosen: Vec<usize> = Vec::new();
    if dfs(d, &candidates, k, 0, &mut chosen) {
        Some(chosen.iter().map(|&c| candidates[c].clone()).collect())
    } else {
        None
    }
}

fn collect_subsets(pool: &[AttrId], max_size: usize, out: &mut Vec<AttrSet>) {
    let n = pool.len();
    assert!(n <= 22, "residue too large for subset enumeration");
    for mask in 1u64..(1 << n) {
        if (mask.count_ones() as usize) <= max_size {
            out.push(AttrSet::from_iter(
                (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| pool[i]),
            ));
        }
    }
}

fn dfs(
    d: &DbSchema,
    candidates: &[AttrSet],
    k: usize,
    start: usize,
    chosen: &mut Vec<usize>,
) -> bool {
    let extended = chosen
        .iter()
        .fold(d.clone(), |acc, &c| acc.with_rel(candidates[c].clone()));
    if is_tree_schema(&extended) {
        return true;
    }
    if chosen.len() == k {
        return false;
    }
    for c in start..candidates.len() {
        chosen.push(c);
        if dfs(d, candidates, k, c + 1, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Fast solver for Aclique-structured instances (the image of the
/// Theorem 4.2 reduction): requires the GYO residue to split into
/// attribute-disjoint connected components, each an Aclique. Solves the
/// induced bin packing exactly and maps bins back to added relations.
///
/// Returns `None` when the packing is infeasible. Returns an error string
/// when the instance is not Aclique-structured (use the exact solver).
pub fn solve_aclique_treefication(
    d: &DbSchema,
    k: usize,
    b: u64,
) -> Result<Option<Vec<AttrSet>>, String> {
    if is_tree_schema(d) {
        return Ok(Some(Vec::new()));
    }
    let residue = gr(d, &AttrSet::empty());
    let comps = residue.connected_components();
    let mut blocks: Vec<AttrSet> = Vec::with_capacity(comps.len());
    for comp in &comps {
        let sub = residue.project_rels(comp);
        if !is_aclique(&sub) {
            return Err(format!(
                "residue component {comp:?} is not an Aclique; use the exact solver"
            ));
        }
        blocks.push(sub.attributes());
    }
    // Blocks must be attribute-disjoint (components of the residue are).
    let sizes: Vec<u64> = blocks.iter().map(|s| s.len() as u64).collect();
    let inst = BinPacking::new(sizes, k, b);
    match solve_bin_packing(&inst) {
        None => Ok(None),
        Some(assignment) => {
            let mut added = vec![AttrSet::empty(); k];
            for (item, &bin) in assignment.iter().enumerate() {
                added[bin] = added[bin].union(&blocks[item]);
            }
            added.retain(|r| !r.is_empty());
            debug_assert!({
                let extended = added
                    .iter()
                    .fold(d.clone(), |acc, r| acc.with_rel(r.clone()));
                is_tree_schema(&extended)
            });
            Ok(Some(added))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::bin_packing_to_treefication;

    fn ring4() -> DbSchema {
        let mut cat = gyo_schema::Catalog::alphabetic();
        DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap()
    }

    #[test]
    fn tree_schema_needs_nothing() {
        let mut cat = gyo_schema::Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        assert_eq!(solve_treefication_exact(&d, 0, 0), Some(vec![]));
        assert_eq!(solve_aclique_treefication(&d, 0, 0), Ok(Some(vec![])));
    }

    #[test]
    fn ring_needs_all_four_attrs_with_one_relation() {
        let d = ring4();
        // One relation of size 3 cannot treeify (Theorem 3.2(iii)).
        assert!(solve_treefication_exact(&d, 1, 3).is_none());
        // One relation of size 4 can.
        let w = solve_treefication_exact(&d, 1, 4).expect("abcd works");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].len(), 4);
    }

    #[test]
    fn ring_splits_across_two_triangles() {
        // Two added relations of size 3 (abc + acd) treeify the 4-ring —
        // the counterexample showing components need not co-reside for
        // general (non-Aclique) instances.
        let d = ring4();
        let w = solve_treefication_exact(&d, 2, 3).expect("two triangles");
        let extended = w.iter().fold(d.clone(), |acc, r| acc.with_rel(r.clone()));
        assert!(is_tree_schema(&extended));
        // The structured solver must refuse this instance (a ring is not an
        // Aclique).
        assert!(solve_aclique_treefication(&d, 2, 3).is_err());
    }

    #[test]
    fn aclique_solver_matches_exact_on_reduction_images() {
        // Two items of size 3 into one bin of 6: feasible.
        let inst = BinPacking::new(vec![3, 3], 1, 6);
        let (d, _) = bin_packing_to_treefication(&inst);
        let fast = solve_aclique_treefication(&d, 1, 6).unwrap();
        let exact = solve_treefication_exact(&d, 1, 6);
        assert!(fast.is_some());
        assert!(exact.is_some());

        // Two items of size 3 into one bin of 5: infeasible.
        let inst = BinPacking::new(vec![3, 3], 1, 5);
        let (d, _) = bin_packing_to_treefication(&inst);
        assert_eq!(solve_aclique_treefication(&d, 1, 5).unwrap(), None);
        assert_eq!(solve_treefication_exact(&d, 1, 5), None);

        // …but two bins of 3 suffice.
        let fast = solve_aclique_treefication(&d, 2, 3)
            .unwrap()
            .expect("one each");
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn witnesses_validate_end_to_end() {
        let inst = BinPacking::new(vec![3, 4, 3], 2, 7);
        let (d, blocks) = bin_packing_to_treefication(&inst);
        let added = solve_aclique_treefication(&d, 2, 7)
            .unwrap()
            .expect("3+4 | 3 fits");
        let extended = added
            .iter()
            .fold(d.clone(), |acc, r| acc.with_rel(r.clone()));
        assert!(is_tree_schema(&extended));
        let back = crate::reduction::treefication_witness_to_packing(&blocks, &added)
            .expect("blocks covered");
        assert!(inst.is_valid(&back));
    }

    #[test]
    fn zero_budget_on_cyclic_schema() {
        assert!(solve_treefication_exact(&ring4(), 0, 10).is_none());
        // The structured solver wants Aclique components; give it one.
        let inst = BinPacking::new(vec![3], 1, 3);
        let (d, _) = bin_packing_to_treefication(&inst);
        assert_eq!(solve_aclique_treefication(&d, 0, 10), Ok(None));
    }
}
