//! Property tests for Theorem 4.2: the reduction preserves feasibility in
//! both directions on randomized bin packing instances, and witnesses map
//! back and forth.

use gyo_reduce::is_tree_schema;
use gyo_treefy::{
    bin_packing_to_treefication, first_fit_decreasing, solve_aclique_treefication,
    solve_bin_packing, solve_treefication_exact, treefication_witness_to_packing, BinPacking,
};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = BinPacking> {
    (
        proptest::collection::vec(3u64..6, 1..4), // item sizes (≥3 for Acliques)
        1usize..3,                                // bins
        3u64..12,                                 // capacity
    )
        .prop_map(|(sizes, bins, capacity)| BinPacking::new(sizes, bins, capacity))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasibility agrees between direct bin packing and the structured
    /// treefication solver on the reduction's image.
    #[test]
    fn reduction_preserves_feasibility(inst in instance()) {
        let direct = solve_bin_packing(&inst);
        let (d, blocks) = bin_packing_to_treefication(&inst);
        let via_schema = solve_aclique_treefication(&d, inst.bins, inst.capacity)
            .expect("reduction images are Aclique-structured");
        prop_assert_eq!(direct.is_some(), via_schema.is_some(), "{:?}", inst);

        // Witnesses round-trip.
        if let Some(added) = via_schema {
            let extended = added.iter().fold(d.clone(), |acc, r| acc.with_rel(r.clone()));
            prop_assert!(is_tree_schema(&extended));
            for r in &added {
                prop_assert!(r.len() as u64 <= inst.capacity);
            }
            prop_assert!(added.len() <= inst.bins);
            let back = treefication_witness_to_packing(&blocks, &added)
                .expect("witness covers every block");
            prop_assert!(inst.is_valid(&back));
        }
    }

    /// The generic exact solver agrees with the structured one on small
    /// reduction images.
    #[test]
    fn generic_solver_agrees_on_small_images(
        sizes in proptest::collection::vec(3u64..5, 1..3),
        bins in 1usize..3,
        capacity in 3u64..9,
    ) {
        let inst = BinPacking::new(sizes, bins, capacity);
        let (d, _) = bin_packing_to_treefication(&inst);
        if d.attributes().len() > 8 {
            return Ok(()); // keep the exponential solver tame
        }
        let structured = solve_aclique_treefication(&d, inst.bins, inst.capacity)
            .expect("Aclique-structured");
        let generic = solve_treefication_exact(&d, inst.bins, inst.capacity);
        prop_assert_eq!(structured.is_some(), generic.is_some(), "{:?}", inst);
    }

    /// FFD is sound: whenever it returns an assignment, the assignment is
    /// valid — and exact feasibility then holds a fortiori.
    #[test]
    fn ffd_sound(inst in instance()) {
        if let Some(a) = first_fit_decreasing(&inst) {
            prop_assert!(inst.is_valid(&a));
            prop_assert!(solve_bin_packing(&inst).is_some());
        }
    }

    /// Exact bin packing solutions are always valid, and infeasibility is
    /// consistent with the capacity lower bound.
    #[test]
    fn exact_solutions_valid(inst in instance()) {
        match solve_bin_packing(&inst) {
            Some(a) => prop_assert!(inst.is_valid(&a)),
            None => {
                // some proof of infeasibility must exist: either an item
                // exceeds capacity, or no assignment exists — spot-check
                // the trivial bound does not contradict.
                let total: u64 = inst.sizes.iter().sum();
                let oversize = inst.sizes.iter().any(|&s| s > inst.capacity);
                let over_total = total > inst.capacity * inst.bins as u64;
                // (neither condition is *necessary* for infeasibility, so
                // only assert they IMPLY infeasibility — i.e. nothing.)
                let _ = (oversize, over_total);
            }
        }
    }
}
