//! Deterministic and randomized schema families.

use gyo_reduce::{aclique, aring, is_tree_schema};
use gyo_schema::{AttrId, AttrSet, Catalog, DbSchema};
use rand::Rng;

/// A catalog naming attributes `a0, a1, …, a{n-1}`, for displaying schemas
/// produced by the raw-id generators in this module.
pub fn numbered_catalog(n: usize) -> Catalog {
    let mut cat = Catalog::new();
    for i in 0..n {
        cat.intern(&format!("a{i}"));
    }
    cat
}

/// The chain (path) schema `(A₀A₁, A₁A₂, …, A_{n-1}A_n)` — the simplest
/// tree-schema family (Fig. 1 row 1 generalized). `n` is the number of
/// relations; `n + 1` attributes are used.
pub fn chain(n: usize) -> DbSchema {
    DbSchema::new(
        (0..n as u32)
            .map(|i| AttrSet::from_raw(&[i, i + 1]))
            .collect(),
    )
}

/// The star schema: a hub relation `{A₀}` extended pairwise,
/// `(A₀A₁, A₀A₂, …, A₀Aₙ)` — a tree-schema family whose join tree is a
/// star.
pub fn star(n: usize) -> DbSchema {
    DbSchema::new((1..=n as u32).map(|i| AttrSet::from_raw(&[0, i])).collect())
}

/// The Aring of size `n` over attributes `0..n` (§3.1). Cyclic for `n ≥ 3`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn aring_n(n: usize) -> DbSchema {
    let attrs: Vec<AttrId> = (0..n as u32).map(AttrId).collect();
    aring(&attrs)
}

/// The Aclique of size `n` over attributes `0..n` (§3.1). Cyclic for
/// `n ≥ 3`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn aclique_n(n: usize) -> DbSchema {
    let attrs: Vec<AttrId> = (0..n as u32).map(AttrId).collect();
    aclique(&attrs)
}

/// The grid schema: one binary relation per edge of the `rows × cols` grid
/// graph (attributes are grid vertices). Cyclic whenever the grid contains a
/// square (`rows ≥ 2 && cols ≥ 2`), since every unit square is an Aring of
/// size 4.
pub fn grid(rows: usize, cols: usize) -> DbSchema {
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut rels = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                rels.push(AttrSet::from_raw(&[at(r, c), at(r, c + 1)]));
            }
            if r + 1 < rows {
                rels.push(AttrSet::from_raw(&[at(r, c), at(r + 1, c)]));
            }
        }
    }
    DbSchema::new(rels)
}

/// Generates a random **tree schema** with `n_rels` relation schemas over at
/// most `n_attrs` attributes.
///
/// Construction: draw a uniformly random labeled tree `T` on the relation
/// nodes, then scatter each attribute over a random connected subtree of `T`
/// (grown edge-by-edge with probability `spread`). Every attribute's holder
/// set is connected in `T` by construction, so `T` is a qual tree and the
/// schema is guaranteed to be a tree schema. Relations left empty receive a
/// fresh private attribute.
pub fn random_tree_schema<R: Rng + ?Sized>(
    rng: &mut R,
    n_rels: usize,
    n_attrs: usize,
    spread: f64,
) -> DbSchema {
    if n_rels == 0 {
        return DbSchema::empty();
    }
    let adj = random_tree_adjacency(rng, n_rels);
    let mut rels: Vec<Vec<AttrId>> = vec![Vec::new(); n_rels];
    for a in 0..n_attrs as u32 {
        let start = rng.random_range(0..n_rels);
        // Grow a connected subtree from `start`.
        let mut chosen = vec![false; n_rels];
        let mut frontier = vec![start];
        chosen[start] = true;
        rels[start].push(AttrId(a));
        while let Some(v) = frontier.pop() {
            for &w in &adj[v] {
                if !chosen[w] && rng.random_bool(spread) {
                    chosen[w] = true;
                    rels[w].push(AttrId(a));
                    frontier.push(w);
                }
            }
        }
    }
    // Give empty relations a private attribute so every schema is nonempty.
    let mut next_private = n_attrs as u32;
    for r in &mut rels {
        if r.is_empty() {
            r.push(AttrId(next_private));
            next_private += 1;
        }
    }
    DbSchema::new(rels.into_iter().map(AttrSet::from_iter).collect())
}

/// Generates an unconstrained random hypergraph: `n_rels` relation schemas,
/// each a uniform sample of `1..=max_arity` attributes from `0..n_attrs`.
/// May be a tree or cyclic schema.
pub fn random_schema<R: Rng + ?Sized>(
    rng: &mut R,
    n_rels: usize,
    n_attrs: usize,
    max_arity: usize,
) -> DbSchema {
    assert!(n_attrs > 0 || n_rels == 0, "attributes required");
    let mut rels = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        let arity = rng.random_range(1..=max_arity.min(n_attrs));
        let mut attrs = Vec::with_capacity(arity);
        while attrs.len() < arity {
            let a = AttrId(rng.random_range(0..n_attrs as u32));
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }
        rels.push(AttrSet::from_iter(attrs));
    }
    DbSchema::new(rels)
}

/// Generates a random **cyclic** schema: rejection-samples [`random_schema`]
/// and, if `max_attempts` samples all come out acyclic, overlays an Aring on
/// the first three attributes (guaranteeing cyclicity).
pub fn random_cyclic_schema<R: Rng + ?Sized>(
    rng: &mut R,
    n_rels: usize,
    n_attrs: usize,
    max_arity: usize,
    max_attempts: usize,
) -> DbSchema {
    assert!(n_attrs >= 3, "a cyclic schema needs at least 3 attributes");
    assert!(n_rels >= 3, "a cyclic schema needs at least 3 relations");
    for _ in 0..max_attempts {
        let d = random_schema(rng, n_rels, n_attrs, max_arity);
        if !is_tree_schema(&d) {
            return d;
        }
    }
    // Fall back: overlay a triangle on three FRESH attributes (attributes
    // within 0..n_attrs could be covered by a random relation ⊇ {A,B,C},
    // which would let GYO absorb the triangle and leave a tree schema).
    let mut d = random_schema(rng, n_rels.saturating_sub(3), n_attrs, max_arity);
    let (a, b, c) = (n_attrs as u32, n_attrs as u32 + 1, n_attrs as u32 + 2);
    d.push(AttrSet::from_raw(&[a, b]));
    d.push(AttrSet::from_raw(&[b, c]));
    d.push(AttrSet::from_raw(&[a, c]));
    debug_assert!(!is_tree_schema(&d));
    d
}

/// A ring of `cliques` Acliques of size `clique_size` glued in a cycle by
/// binary "bridge" relations — a cyclic family whose GYO residue is large
/// and structured (used to stress witness search and treeification).
///
/// # Panics
///
/// Panics if `cliques < 1` or `clique_size < 3`.
pub fn ring_of_cliques(cliques: usize, clique_size: usize) -> DbSchema {
    assert!(cliques >= 1 && clique_size >= 3);
    let mut rels: Vec<AttrSet> = Vec::new();
    let block = clique_size as u32;
    for c in 0..cliques as u32 {
        let attrs: Vec<AttrId> = (0..block).map(|k| AttrId(c * block + k)).collect();
        for r in aclique(&attrs).iter() {
            rels.push(r.clone());
        }
        // bridge: first attribute of this clique to first of the next
        let next = ((c + 1) % cliques as u32) * block;
        rels.push(AttrSet::from_raw(&[c * block, next]));
    }
    DbSchema::new(rels)
}

/// A **wide chain**: `n` relations of `arity` attributes each, consecutive
/// relations overlapping in `overlap` attributes — the wide-arity
/// generalization of [`chain`] (`chain(n) = wide_chain(n, 2, 1)`). Always a
/// tree schema (the running intersection property holds along the chain by
/// construction), and the semijoin keys between neighbors have width
/// exactly `overlap`, so `overlap ≥ 3` drives every wide-key kernel path
/// (packed side-buffer key columns, chunked-memcmp membership).
///
/// # Panics
///
/// Panics if `overlap >= arity` (neighbors would collapse) or `arity == 0`.
pub fn wide_chain(n: usize, arity: usize, overlap: usize) -> DbSchema {
    assert!(arity > 0, "relations need at least one attribute");
    assert!(
        overlap < arity,
        "overlap must leave fresh attributes per link"
    );
    let step = (arity - overlap) as u32;
    DbSchema::new(
        (0..n as u32)
            .map(|i| {
                let start = i * step;
                AttrSet::from_iter((start..start + arity as u32).map(AttrId))
            })
            .collect(),
    )
}

/// A TPC-H-like **acyclic join graph** over arity-4…6 relations: a
/// fact-table snowflake (lineitem at the center; orders, part, supplier
/// branching off; customer behind orders; two separate nation dimensions
/// behind customer and supplier so the hypergraph stays a tree — sharing
/// one nation attribute would close the classic customer↔supplier cycle).
/// The wide/hard acyclic shape Greco–Scarcello-style instances stress:
/// high-arity relations, single-attribute join keys, fan-out at the fact
/// table.
///
/// Attribute ids (all distinct unless named identically):
/// `orderkey=0, custkey=1, partkey=2, suppkey=3`, the rest private.
pub fn tpch_like() -> DbSchema {
    const ORDERKEY: u32 = 0;
    const CUSTKEY: u32 = 1;
    const PARTKEY: u32 = 2;
    const SUPPKEY: u32 = 3;
    const C_NATION: u32 = 4;
    const S_NATION: u32 = 5;
    // private attributes start at 6
    DbSchema::new(vec![
        // lineitem(orderkey, partkey, suppkey, lineno, qty, price)
        AttrSet::from_raw(&[ORDERKEY, PARTKEY, SUPPKEY, 6, 7, 8]),
        // orders(orderkey, custkey, odate, ostatus)
        AttrSet::from_raw(&[ORDERKEY, CUSTKEY, 9, 10]),
        // customer(custkey, c_nation, mktsegment, acctbal)
        AttrSet::from_raw(&[CUSTKEY, C_NATION, 11, 12]),
        // part(partkey, brand, ptype, psize, container)
        AttrSet::from_raw(&[PARTKEY, 13, 14, 15, 16]),
        // supplier(suppkey, s_nation, sphone, sacctbal)
        AttrSet::from_raw(&[SUPPKEY, S_NATION, 17, 18]),
        // nation_c(c_nation, c_regionkey, c_nname, c_ncomment) — customer's dimension
        AttrSet::from_raw(&[C_NATION, 19, 20, 25]),
        // nation_s(s_nation, s_regionkey, s_nname, s_ncomment) — supplier's dimension
        AttrSet::from_raw(&[S_NATION, 21, 22, 26]),
        // partsupp(partkey, suppkey, availqty, supplycost)
        AttrSet::from_raw(&[PARTKEY, SUPPKEY, 23, 24]),
    ])
}

/// The **cyclic** variant of [`tpch_like`]: one extra binary relation
/// sharing the customer and supplier nation attributes, closing the
/// classic customer↔supplier cycle the two-nation split of [`tpch_like`]
/// exists to avoid. The GYO residue is the cycle through
/// lineitem–orders–customer–nation-bridge–supplier, while part, partsupp,
/// and the two nation dimensions reduce away — a cyclic schema whose
/// treeifying relation `W` is a *strict subset* of `U(D)`, unlike rings
/// and grids where `W` spans every attribute.
pub fn tpch_like_cyclic() -> DbSchema {
    let mut d = tpch_like();
    // nation_bridge(c_nation, s_nation): customers and suppliers now share
    // nation info, closing the cycle.
    d.push(AttrSet::from_raw(&[4, 5]));
    d
}

/// A "caterpillar" tree schema: a spine chain of `spine` relations, each
/// carrying `legs` pendant relations — the worst case for naive subset
/// scans, the friendly case for the incremental GYO engine.
pub fn caterpillar(spine: usize, legs: usize) -> DbSchema {
    let mut rels: Vec<AttrSet> = Vec::new();
    for s in 0..spine as u32 {
        rels.push(AttrSet::from_raw(&[s, s + 1]));
    }
    let mut next = spine as u32 + 1;
    for s in 0..spine as u32 {
        for _ in 0..legs {
            rels.push(AttrSet::from_raw(&[s, next]));
            next += 1;
        }
    }
    DbSchema::new(rels)
}

/// Uniformly random labeled tree on `n` nodes (via a random Prüfer
/// sequence), returned as adjacency lists.
fn random_tree_adjacency<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    if n <= 1 {
        return adj;
    }
    if n == 2 {
        adj[0].push(1);
        adj[1].push(0);
        return adj;
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &s in &seq {
        degree[s] += 1;
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &s in &seq {
        let std::cmp::Reverse(leaf) = heap.pop().expect("tree has a leaf");
        adj[leaf].push(s);
        adj[s].push(leaf);
        degree[s] -= 1;
        if degree[s] == 1 {
            heap.push(std::cmp::Reverse(s));
        }
    }
    let std::cmp::Reverse(u) = heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = heap.pop().expect("two leaves remain");
    adj[u].push(v);
    adj[v].push(u);
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_reduce::{classify, SchemaKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chains_and_stars_are_tree_schemas() {
        for n in 0..20 {
            assert!(is_tree_schema(&chain(n)), "chain {n}");
            assert!(is_tree_schema(&star(n)), "star {n}");
        }
    }

    #[test]
    fn rings_cliques_grids_are_cyclic() {
        for n in 3..10 {
            assert_eq!(classify(&aring_n(n)), SchemaKind::Cyclic);
            assert_eq!(classify(&aclique_n(n)), SchemaKind::Cyclic);
        }
        assert_eq!(classify(&grid(2, 2)), SchemaKind::Cyclic);
        assert_eq!(classify(&grid(3, 4)), SchemaKind::Cyclic);
        // Degenerate grids are paths => tree schemas.
        assert!(is_tree_schema(&grid(1, 5)));
        assert!(is_tree_schema(&grid(4, 1)));
    }

    #[test]
    fn random_tree_schema_is_always_a_tree_schema() {
        let mut rng = StdRng::seed_from_u64(42);
        for n_rels in [1usize, 2, 5, 12, 30] {
            for _ in 0..5 {
                let d = random_tree_schema(&mut rng, n_rels, n_rels * 2, 0.5);
                assert_eq!(d.len(), n_rels);
                assert!(is_tree_schema(&d), "n_rels={n_rels} d={d:?}");
                assert!(d.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn random_cyclic_schema_is_always_cyclic() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let d = random_cyclic_schema(&mut rng, 6, 8, 3, 5);
            assert_eq!(classify(&d), SchemaKind::Cyclic);
        }
    }

    #[test]
    fn random_schema_respects_shape_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = random_schema(&mut rng, 10, 6, 3);
        assert_eq!(d.len(), 10);
        for r in d.iter() {
            assert!((1..=3).contains(&r.len()));
            assert!(r.iter().all(|a| a.0 < 6));
        }
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical edges
        let d = grid(3, 4);
        assert_eq!(d.len(), 3 * 3 + 2 * 4);
        assert_eq!(d.attributes().len(), 12);
    }

    #[test]
    fn ring_of_cliques_is_cyclic_with_structured_residue() {
        let d = ring_of_cliques(3, 3);
        assert_eq!(classify(&d), SchemaKind::Cyclic);
        // 3 cliques x 3 faces + 3 bridges
        assert_eq!(d.len(), 12);
        let single = ring_of_cliques(1, 4);
        assert_eq!(classify(&single), SchemaKind::Cyclic);
    }

    #[test]
    fn wide_chain_is_a_tree_schema_with_exact_overlap() {
        for (n, arity, overlap) in [(1usize, 4usize, 2usize), (3, 4, 3), (8, 6, 3), (5, 8, 5)] {
            let d = wide_chain(n, arity, overlap);
            assert_eq!(d.len(), n);
            assert!(is_tree_schema(&d), "n={n} arity={arity} overlap={overlap}");
            for w in d.rels().windows(2) {
                assert_eq!(w[0].len(), arity);
                assert_eq!(w[0].intersect(&w[1]).len(), overlap);
            }
        }
        assert_eq!(wide_chain(4, 2, 1), chain(4), "chain is the arity-2 case");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn wide_chain_rejects_full_overlap() {
        wide_chain(3, 4, 4);
    }

    #[test]
    fn tpch_like_is_a_wide_acyclic_snowflake() {
        let d = tpch_like();
        assert!(is_tree_schema(&d), "the two-nation snowflake is acyclic");
        assert_eq!(d.len(), 8);
        assert!(d.iter().all(|r| (4..=6).contains(&r.len())));
        // Closing the customer↔supplier cycle through one shared nation
        // attribute must flip the classification — the schema is acyclic
        // *because* the dimensions are split.
        assert_eq!(classify(&tpch_like_cyclic()), SchemaKind::Cyclic);
    }

    #[test]
    fn tpch_like_cyclic_residue_is_the_customer_supplier_cycle() {
        use gyo_reduce::gyo_reduce;
        let d = tpch_like_cyclic();
        let red = gyo_reduce(&d, &gyo_schema::AttrSet::empty());
        assert!(!red.is_total());
        // The cycle: lineitem(0), orders(1), customer(2), supplier(4), and
        // the closing bridge (8). Part/partsupp/nations reduce away.
        assert_eq!(red.survivors, vec![0, 1, 2, 4, 8]);
        // W is a strict subset of U(D): only the join keys on the cycle.
        let w = red.result.attributes();
        assert!(w.len() < d.attributes().len());
        for a in [0u32, 1, 3, 4, 5] {
            assert!(w.contains(gyo_schema::AttrId(a)), "cycle key {a} in W");
        }
        assert!(!w.contains(gyo_schema::AttrId(2)), "partkey reduced away");
    }

    #[test]
    fn caterpillar_is_a_tree_schema() {
        for (s, l) in [(1usize, 0usize), (3, 2), (5, 4)] {
            let d = caterpillar(s, l);
            assert!(is_tree_schema(&d), "spine {s} legs {l}");
            assert_eq!(d.len(), s + s * l);
        }
    }

    #[test]
    fn numbered_catalog_names() {
        let cat = numbered_catalog(3);
        assert_eq!(cat.name(AttrId(2)), "a2");
    }

    #[test]
    fn tiny_random_trees() {
        let mut rng = StdRng::seed_from_u64(1);
        let d0 = random_tree_schema(&mut rng, 0, 5, 0.5);
        assert!(d0.is_empty());
        let d1 = random_tree_schema(&mut rng, 1, 5, 0.5);
        assert_eq!(d1.len(), 1);
    }
}
