//! Named workload families for cross-engine differential testing and the
//! engine benchmarks.
//!
//! The differential suite (`tests/engine_differential.rs`) and the
//! `classify/engines` benches need the *same* enumerable set of schema
//! families so "all engines agree on every family" is one loop, not five
//! copies. [`engine_families`] returns that set — the three deterministic
//! tree shapes, the two canonical cyclic shapes, and a randomized tree —
//! and [`family_state`] builds the matching noisy (non-UR) database state
//! whose dangling tuples are what full reducers exist to remove.

use gyo_relation::DbState;
use gyo_schema::DbSchema;
use rand::Rng;

use crate::data::{noisy_ur_state, random_universal};
use crate::schemas::{
    aring_n, chain, grid, random_tree_schema, star, tpch_like, tpch_like_cyclic, wide_chain,
};

/// A named schema drawn from one of the benchmark families.
#[derive(Clone, Debug)]
pub struct FamilySchema {
    /// Family name (`chain`, `star`, `ring`, `grid`, `random_tree`,
    /// `wide_chain`, `tpch`, `tpch_cyclic`).
    pub name: &'static str,
    /// The generated schema.
    pub schema: DbSchema,
}

/// One schema per engine-workload family at roughly `scale` relations:
/// chains, stars, rings, grids, random trees, plus the two **wide-arity**
/// tree families — arity-6 wide chains (width-3 semijoin keys, driving the
/// wide-key kernels) and the TPC-H-like snowflake (arity 4–6, fact-table
/// fan-out) — and the snowflake's cyclic closure (`tpch_cyclic`), whose
/// GYO residue is a strict sub-cycle of the schema. Rings, non-degenerate
/// grids, and `tpch_cyclic` are cyclic — exactly the schemas the semijoin
/// engines must *decline* (with a residue diagnostic) while the naive and
/// treeify engines still answer.
pub fn engine_families<R: Rng + ?Sized>(rng: &mut R, scale: usize) -> Vec<FamilySchema> {
    let scale = scale.max(3);
    // Side length so the grid has about `scale` edge relations.
    let side = (2..)
        .find(|s| 2 * s * (s - 1) >= scale)
        .expect("2s(s-1) is unbounded in s");
    vec![
        FamilySchema {
            name: "chain",
            schema: chain(scale),
        },
        FamilySchema {
            name: "star",
            schema: star(scale),
        },
        FamilySchema {
            name: "ring",
            schema: aring_n(scale),
        },
        FamilySchema {
            name: "grid",
            schema: grid(side, side),
        },
        FamilySchema {
            name: "random_tree",
            schema: random_tree_schema(rng, scale, 2 * scale, 0.4),
        },
        FamilySchema {
            name: "wide_chain",
            schema: wide_chain(scale, 6, 3),
        },
        FamilySchema {
            name: "tpch",
            schema: tpch_like(),
        },
        FamilySchema {
            name: "tpch_cyclic",
            schema: tpch_like_cyclic(),
        },
    ]
}

/// A noisy (non-UR) state for `d`: the UR projections of a fresh random
/// universal relation over `U(D)` plus `noise_rows` random tuples per
/// relation. With `noise_rows = 0` this is a plain UR state.
pub fn family_state<R: Rng + ?Sized>(
    rng: &mut R,
    d: &DbSchema,
    rows: usize,
    domain: u64,
    noise_rows: usize,
) -> DbState {
    let i = random_universal(rng, &d.attributes(), rows, domain);
    noisy_ur_state(rng, &i, d, noise_rows, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_reduce::is_tree_schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn families_cover_both_schema_kinds() {
        let mut rng = StdRng::seed_from_u64(21);
        let fams = engine_families(&mut rng, 8);
        let names: Vec<&str> = fams.iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            [
                "chain",
                "star",
                "ring",
                "grid",
                "random_tree",
                "wide_chain",
                "tpch",
                "tpch_cyclic"
            ]
        );
        let kinds: Vec<bool> = fams.iter().map(|f| is_tree_schema(&f.schema)).collect();
        assert_eq!(kinds, [true, true, false, false, true, true, true, false]);
    }

    #[test]
    fn wide_families_have_wide_keys() {
        let mut rng = StdRng::seed_from_u64(24);
        let fams = engine_families(&mut rng, 6);
        let wc = fams.iter().find(|f| f.name == "wide_chain").unwrap();
        assert_eq!(wc.schema.len(), 6);
        for w in wc.schema.rels().windows(2) {
            assert_eq!(w[0].intersect(&w[1]).len(), 3, "width-3 semijoin keys");
            assert_eq!(w[0].len(), 6);
        }
        let tpch = fams.iter().find(|f| f.name == "tpch").unwrap();
        assert!(tpch.schema.iter().all(|r| (4..=6).contains(&r.len())));
        assert!(tpch.schema.iter().any(|r| r.len() == 6), "fact table");
    }

    #[test]
    fn grid_scale_tracks_relation_count() {
        let mut rng = StdRng::seed_from_u64(22);
        for scale in [3usize, 8, 24, 60] {
            let fams = engine_families(&mut rng, scale);
            let g = fams.iter().find(|f| f.name == "grid").unwrap();
            assert!(
                g.schema.len() >= scale,
                "scale {scale}: grid has {} rels",
                g.schema.len()
            );
        }
    }

    #[test]
    fn family_state_matches_schema_and_carries_noise() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = chain(4);
        let clean = family_state(&mut rng, &d, 20, 1000, 0);
        assert_eq!(clean.len(), d.len());
        let noisy = family_state(&mut rng, &d, 20, 1000, 10);
        for k in 0..d.len() {
            assert_eq!(noisy.rel(k).attrs(), d.rel(k));
            assert!(noisy.rel(k).len() > clean.rel(k).len().min(15));
        }
    }
}
