//! Schema families and data generators for tests and benchmarks.
//!
//! The paper's figures use hand-sized schemas; reproducing its *algorithmic*
//! claims at benchmark scale needs parameterized families:
//!
//! * deterministic shapes — [`chain`], [`star`], [`aring_n`], [`aclique_n`],
//!   [`grid`] — covering the canonical tree and cyclic topologies, plus the
//!   **wide-arity** tree families [`wide_chain`] (arity/overlap
//!   parameterized — the overlap is the semijoin key width, so `overlap ≥ 3`
//!   exercises the wide-key kernels) and [`tpch_like`] (a TPC-H-style
//!   acyclic snowflake of arity-4…6 relations) plus its cyclic closure
//!   [`tpch_like_cyclic`] (one bridge relation closes the
//!   customer↔supplier cycle; the GYO residue — and hence the treeifying
//!   relation `W` — is a strict subset of the schema);
//! * randomized generators — [`random_tree_schema`] (guaranteed tree
//!   schemas, built around a random qual tree), [`random_schema`]
//!   (unconstrained hypergraphs), [`random_cyclic_schema`];
//! * data generators — [`random_universal`], [`jd_closed_universal`] (a
//!   universal relation already satisfying `⋈D`, via one application of the
//!   join-of-projections closure), and [`ur_state`];
//! * engine wiring — [`engine_families`] (one schema per family) and
//!   [`family_state`] (noisy non-UR states), shared by the differential
//!   engine suite and the `classify/engines` benches.
//!
//! All randomized generators take an external `rand::Rng`, so property tests
//! can drive them from seeds.

#![warn(missing_docs)]

pub mod data;
pub mod families;
pub mod schemas;

pub use data::{jd_closed_universal, noisy_ur_state, random_universal, ur_state};
pub use families::{engine_families, family_state, FamilySchema};
pub use schemas::{
    aclique_n, aring_n, caterpillar, chain, grid, numbered_catalog, random_cyclic_schema,
    random_schema, random_tree_schema, ring_of_cliques, star, tpch_like, tpch_like_cyclic,
    wide_chain,
};
