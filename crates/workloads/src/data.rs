//! Universal-relation data generators.

use gyo_relation::{join_of_projections, DbState, Relation};
use gyo_schema::{AttrSet, DbSchema};
use rand::Rng;

/// A random universal relation over `attrs`: `rows` tuples with values drawn
/// uniformly from `0..domain` per attribute. Smaller domains produce denser
/// joins (lower selectivity); `domain = 1` collapses everything onto one
/// tuple.
///
/// # Panics
///
/// Panics if `domain == 0`.
pub fn random_universal<R: Rng + ?Sized>(
    rng: &mut R,
    attrs: &AttrSet,
    rows: usize,
    domain: u64,
) -> Relation {
    assert!(domain > 0, "domain must be nonempty");
    let width = attrs.len();
    let data: Vec<u64> = (0..rows * width)
        .map(|_| rng.random_range(0..domain))
        .collect();
    Relation::from_row_major(attrs.clone(), rows, data)
}

/// A random universal relation already satisfying `⋈D`, produced by one
/// application of the join-of-projections closure `m_D` to a random
/// relation over `U(D)` (the operator is idempotent, so the result is
/// jd-closed). Useful for lossless-join experiments where `I ⊨ ⋈D` is the
/// premise.
///
/// Note: the closure can blow up the row count for very dense inputs; keep
/// `domain` comfortably above `rows` for near-linear output sizes.
pub fn jd_closed_universal<R: Rng + ?Sized>(
    rng: &mut R,
    d: &DbSchema,
    rows: usize,
    domain: u64,
) -> Relation {
    let u = d.attributes();
    let i = random_universal(rng, &u, rows, domain);
    join_of_projections(&i, d)
}

/// The UR database state `{π_R(I) | R ∈ D}` for a universal relation `I`.
///
/// # Panics
///
/// Panics if `U(D) ⊄ attrs(I)`.
pub fn ur_state(universal: &Relation, d: &DbSchema) -> DbState {
    DbState::from_universal(universal, d)
}

/// A **non-UR** database state: the UR projections of `universal` plus
/// `noise_rows` random tuples per relation (values in `0..domain`). The
/// noise tuples are *dangling* with high probability (they do not join
/// through), which is exactly the situation §4's semijoin transformation —
/// and Yannakakis-style full reducers — exist for.
///
/// # Panics
///
/// Panics if `U(D) ⊄ attrs(I)` or `domain == 0`.
pub fn noisy_ur_state<R: Rng + ?Sized>(
    rng: &mut R,
    universal: &Relation,
    d: &DbSchema,
    noise_rows: usize,
    domain: u64,
) -> DbState {
    assert!(domain > 0, "domain must be nonempty");
    let rels: Vec<Relation> = d
        .iter()
        .map(|r| {
            // Extend the projection's flat buffer with noise rows in place —
            // no per-tuple allocation on either side.
            let proj = universal.project(r);
            let mut data = proj.data().to_vec();
            data.extend((0..noise_rows * r.len()).map(|_| rng.random_range(0..domain)));
            Relation::from_row_major(r.clone(), proj.len() + noise_rows, data)
        })
        .collect();
    DbState::new(d, rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_relation::satisfies_jd;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_universal_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let attrs = AttrSet::from_raw(&[0, 1, 2]);
        let i = random_universal(&mut rng, &attrs, 50, 1000);
        assert!(i.len() <= 50); // dedup may shrink
        assert!(i.len() >= 45); // but collisions are unlikely at domain 1000
        assert_eq!(i.attrs(), &attrs);
    }

    #[test]
    fn domain_one_collapses() {
        let mut rng = StdRng::seed_from_u64(11);
        let attrs = AttrSet::from_raw(&[0, 1]);
        let i = random_universal(&mut rng, &attrs, 10, 1);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn jd_closed_universal_satisfies_its_jd() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc, cd", &mut cat).unwrap();
        let i = jd_closed_universal(&mut rng, &d, 30, 8);
        assert!(satisfies_jd(&i, &d));
    }

    #[test]
    fn ur_state_matches_manual_projection() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        let i = random_universal(&mut rng, &d.attributes(), 20, 4);
        let st = ur_state(&i, &d);
        assert_eq!(st.rel(0), &i.project(d.rel(0)));
        assert_eq!(st.rel(1), &i.project(d.rel(1)));
    }
}

#[cfg(test)]
mod noisy_tests {
    use super::*;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noisy_state_contains_the_ur_projections() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut cat = Catalog::alphabetic();
        let d = gyo_schema::DbSchema::parse("ab, bc", &mut cat).unwrap();
        let i = random_universal(&mut rng, &d.attributes(), 20, 50);
        let clean = ur_state(&i, &d);
        let noisy = noisy_ur_state(&mut rng, &i, &d, 30, 1000);
        for k in 0..d.len() {
            assert!(clean.rel(k).is_subset(noisy.rel(k)));
            assert!(noisy.rel(k).len() > clean.rel(k).len());
        }
    }

    #[test]
    fn zero_noise_is_the_ur_state() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut cat = Catalog::alphabetic();
        let d = gyo_schema::DbSchema::parse("ab, bc", &mut cat).unwrap();
        let i = random_universal(&mut rng, &d.attributes(), 20, 50);
        assert_eq!(noisy_ur_state(&mut rng, &i, &d, 0, 10), ur_state(&i, &d));
    }
}
