//! Weak γ-cycles: representation, constructive search, shortening and
//! contraction (Theorem 5.3's proof devices, Figs. 4–6).

use gyo_schema::{AttrId, AttrSet, DbSchema};

use crate::pairwise::violating_pair;

/// A weak γ-cycle `(R₁, A₁, R₂, A₂, …, Rₘ, Aₘ, R₁)` (§5.2):
///
/// * `m ≥ 3`;
/// * the `Aᵢ` are distinct;
/// * `Aᵢ ∈ Rᵢ ∩ Rᵢ₊₁` (indices mod `m`);
/// * `A₁` appears only in `R₁` and `R₂`, and `A₂` only in `R₂` and `R₃`,
///   among the relations *of the cycle* (the reading under which both
///   directions of Theorem 5.3 (i)⇔(ii) go through).
///
/// `rels[i]` are relation-occurrence indices into the schema; `attrs[i]`
/// joins `rels[i]` to `rels[(i+1) % m]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GammaCycle {
    /// Relation indices `R₁ … Rₘ` (pairwise distinct occurrences).
    pub rels: Vec<usize>,
    /// Linking attributes `A₁ … Aₘ`.
    pub attrs: Vec<AttrId>,
}

impl GammaCycle {
    /// The cycle length `m`.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the cycle is empty (never true for verified cycles).
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Checks every condition of the weak-γ-cycle definition against `d`.
    pub fn verify(&self, d: &DbSchema) -> bool {
        let m = self.rels.len();
        if m < 3 || self.attrs.len() != m {
            return false;
        }
        // Distinct relation occurrences and distinct attributes.
        let mut rset = self.rels.clone();
        rset.sort_unstable();
        rset.dedup();
        if rset.len() != m {
            return false;
        }
        let aset = AttrSet::from_iter(self.attrs.iter().copied());
        if aset.len() != m {
            return false;
        }
        // Adjacency memberships.
        for i in 0..m {
            let r = d.rel(self.rels[i]);
            let r_next = d.rel(self.rels[(i + 1) % m]);
            if !r.contains(self.attrs[i]) || !r_next.contains(self.attrs[i]) {
                return false;
            }
        }
        // Cycle-local "only in" for A₁ (positions 0,1) and A₂ (positions
        // 1,2).
        for (ai, allowed) in [(0usize, [0usize, 1]), (1, [1, 2])] {
            let a = self.attrs[ai];
            for (pos, &r) in self.rels.iter().enumerate() {
                if !allowed.contains(&pos) && d.rel(r).contains(a) {
                    return false;
                }
            }
        }
        true
    }
}

/// Constructive weak-γ-cycle search, implementing the Theorem 5.3 (i)⇒(ii)
/// proof: find a pair violating characterization (ii), connect the residues
/// by a shortest path in the deleted schema (shortest ⟹ already shortened
/// in the Fig. 4 sense), and close the cycle through the deleted
/// intersection. Returns `None` iff `d` is γ-acyclic; returned cycles
/// always [`verify`](GammaCycle::verify).
pub fn find_weak_gamma_cycle(d: &DbSchema) -> Option<GammaCycle> {
    let (i, j) = violating_pair(d)?;
    let x = d.rel(i).intersect(d.rel(j));
    let deleted = d.delete_attrs(&x);
    let path = shortest_path(&deleted, i, j).expect("violating pair residues are connected");
    debug_assert_eq!(path, shorten_path(&deleted, &path));
    debug_assert!(path.len() >= 3, "residues cannot intersect directly");
    let m = path.len();
    let mut attrs = Vec::with_capacity(m);
    for w in path.windows(2) {
        let shared = deleted.rel(w[0]).intersect(deleted.rel(w[1]));
        attrs.push(shared.iter().next().expect("path edges share an attribute"));
    }
    // Close the cycle through the deleted intersection X = Rᵢ ∩ Rⱼ.
    attrs.push(x.iter().next().expect("violating pair intersects"));
    let cycle = GammaCycle { rels: path, attrs };
    debug_assert!(cycle.verify(d), "constructed cycle must verify: {cycle:?}");
    Some(cycle)
}

/// BFS shortest path between nodes of the intersection graph of `d`
/// (adjacency = sharing an attribute). Returns the node sequence from
/// `from` to `to` inclusive.
#[allow(clippy::needless_range_loop)]
fn shortest_path(d: &DbSchema, from: usize, to: usize) -> Option<Vec<usize>> {
    let n = d.len();
    let mut prev = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    prev[from] = from;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        if v == to {
            let mut path = vec![to];
            let mut w = to;
            while w != from {
                w = prev[w];
                path.push(w);
            }
            path.reverse();
            return Some(path);
        }
        for u in 0..n {
            if prev[u] == usize::MAX && !d.rel(v).is_disjoint(d.rel(u)) && !d.rel(v).is_empty() {
                prev[u] = v;
                queue.push_back(u);
            }
        }
    }
    None
}

/// Fig. 4's path shortening: while two non-consecutive path relations
/// intersect (in `d`), splice out the segment between them. Idempotent on
/// BFS-shortest paths.
pub fn shorten_path(d: &DbSchema, path: &[usize]) -> Vec<usize> {
    let mut p: Vec<usize> = path.to_vec();
    'outer: loop {
        for u in 0..p.len() {
            for v in (u + 2)..p.len() {
                if !d.rel(p[u]).is_disjoint(d.rel(p[v])) && !d.rel(p[u]).is_empty() {
                    p.drain(u + 1..v);
                    continue 'outer;
                }
            }
        }
        return p;
    }
}

/// Fig. 5's cycle contraction: while positions `i < j` exist with
/// `Rᵢ ∩ Rᵢ₊₁ ⊆ Rⱼ ∩ Rⱼ₊₁`, replace the cycle by
/// `(R₁, A₁, …, Rᵢ, Aᵢ, Rⱼ₊₁, …, Rₘ, Aₘ, R₁)` — the jump is legal because
/// `Aᵢ ∈ Rᵢ ∩ Rᵢ₊₁ ⊆ Rⱼ₊₁`. A contraction is applied only when the result
/// still verifies (keeping the `A₁`/`A₂` conditions intact).
pub fn contract_cycle(d: &DbSchema, cycle: &GammaCycle) -> GammaCycle {
    let mut c = cycle.clone();
    'outer: loop {
        let m = c.len();
        if m <= 3 {
            return c;
        }
        for i in 0..m {
            for j in (i + 1)..m {
                let int_i = d.rel(c.rels[i]).intersect(d.rel(c.rels[(i + 1) % m]));
                let int_j = d.rel(c.rels[j]).intersect(d.rel(c.rels[(j + 1) % m]));
                if !int_i.is_subset(&int_j) {
                    continue;
                }
                // Keep positions 0..=i, then jump to j+1..m.
                if (j + 1) % m == i {
                    continue; // would not remove anything
                }
                let mut rels: Vec<usize> = c.rels[..=i].to_vec();
                rels.extend_from_slice(&c.rels[j + 1..]);
                let mut attrs: Vec<AttrId> = c.attrs[..=i].to_vec();
                attrs.extend_from_slice(&c.attrs[j + 1..]);
                let candidate = GammaCycle { rels, attrs };
                if candidate.len() >= 3 && candidate.verify(d) {
                    c = candidate;
                    continue 'outer;
                }
            }
        }
        return c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::is_gamma_acyclic;
    use gyo_schema::Catalog;

    fn db(s: &str) -> (DbSchema, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(s, &mut cat).unwrap();
        (d, cat)
    }

    #[test]
    fn no_cycle_in_gamma_acyclic_schemas() {
        for s in ["ab, bc, cd", "a, ab, abc", "ab, ac, ad", "ab, cd"] {
            let (d, _) = db(s);
            assert!(find_weak_gamma_cycle(&d).is_none(), "case {s}");
        }
    }

    #[test]
    fn cycle_found_in_triangle() {
        let (d, _) = db("ab, bc, ac");
        let c = find_weak_gamma_cycle(&d).expect("triangle has a γ-cycle");
        assert!(c.verify(&d));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn cycle_found_in_tree_but_gamma_cyclic_schema() {
        // §5.1's (abc, ab, bc): α-acyclic yet γ-cyclic.
        let (d, _) = db("abc, ab, bc");
        let c = find_weak_gamma_cycle(&d).expect("γ-cyclic");
        assert!(c.verify(&d));
    }

    #[test]
    fn finder_agrees_with_pairwise_test() {
        for s in [
            "ab, bc, cd",
            "abc, ab, bc",
            "ab, bc, ac",
            "ab, bc, cd, da",
            "bcd, acd, abd, abc",
            "abc, cde, ace, afe",
            "ab, bc, cd, cda",
            "abq, bqc, cd, da",
        ] {
            let (d, _) = db(s);
            assert_eq!(
                find_weak_gamma_cycle(&d).is_none(),
                is_gamma_acyclic(&d),
                "case {s}"
            );
        }
    }

    #[test]
    fn verify_rejects_malformed_cycles() {
        let (d, _) = db("ab, bc, ac");
        // too short
        assert!(!GammaCycle {
            rels: vec![0, 1],
            attrs: vec![AttrId(1), AttrId(0)],
        }
        .verify(&d));
        // repeated attribute
        assert!(!GammaCycle {
            rels: vec![0, 1, 2],
            attrs: vec![AttrId(1), AttrId(1), AttrId(0)],
        }
        .verify(&d));
        // wrong adjacency (a ∉ bc)
        assert!(!GammaCycle {
            rels: vec![0, 1, 2],
            attrs: vec![AttrId(0), AttrId(2), AttrId(1)],
        }
        .verify(&d));
    }

    #[test]
    fn fig4_shortening_removes_chords() {
        // Path p0-p1-p2-p3 where p0 and p2 intersect: shorten to p0-p2-p3.
        let (d, _) = db("ab, bc, acd, de");
        let p = shorten_path(&d, &[0, 1, 2, 3]);
        assert_eq!(p, vec![0, 2, 3]);
    }

    #[test]
    fn fig5_contraction_shrinks_redundant_cycle() {
        // D = (acd, ab, bc, cd): the 4-cycle (acd, a, ab, b, bc, c, cd, d)
        // contracts to the triangle (acd, a, ab, b, bc, c) because
        // R₃∩R₄ = {c} ⊆ R₄∩R₁ = {c, d}.
        let (d, _) = db("acd, ab, bc, cd");
        let cycle = GammaCycle {
            rels: vec![0, 1, 2, 3],
            attrs: vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)],
        };
        assert!(cycle.verify(&d), "the hand-built 4-cycle must verify");
        let contracted = contract_cycle(&d, &cycle);
        assert!(contracted.verify(&d));
        assert_eq!(contracted.len(), 3);
        assert_eq!(contracted.rels, vec![0, 1, 2]);
    }

    #[test]
    fn contraction_is_identity_on_tight_rings() {
        let (d, _) = db("ab, bc, cd, de, ea");
        let c = find_weak_gamma_cycle(&d).expect("5-ring");
        let contracted = contract_cycle(&d, &c);
        assert_eq!(contracted.len(), c.len(), "5-ring cycles are tight");
    }
}
