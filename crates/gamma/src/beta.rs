//! β-acyclicity — the middle rung of Fagin's acyclicity ladder \[7\].
//!
//! The paper treats "some aspects of γ-acyclicity"; Fagin's hierarchy
//! situates it:
//!
//! ```text
//! γ-acyclic  ⟹  β-acyclic  ⟹  α-acyclic (tree schema)
//! ```
//!
//! `D` is **β-acyclic** iff every sub-multiset of its relation schemas is
//! α-acyclic (a tree schema). α-acyclicity is not hereditary — the §5.1
//! example `(abc, ab, bc)` is a tree schema whose sub-schema `(ab, bc)`…
//! is also a tree schema, but the triangle-with-roof `(abc, ab, bc, ac)`
//! shows the failure: drop `abc` and the cyclic triangle remains. β fixes
//! exactly that defect.
//!
//! This module implements the definition directly (exponential, guarded)
//! plus the connectivity refinement: it suffices to check *connected*
//! sub-multisets, because a schema is a tree schema iff each connected
//! component is.

use gyo_reduce::is_tree_schema;
use gyo_schema::DbSchema;

/// Whether `D` is β-acyclic: every (connected) sub-multiset of relation
/// schemas is a tree schema. Returns the first cyclic subset as a witness
/// via [`beta_violation`].
///
/// # Panics
///
/// Panics if `d.len() > 16` (the check is exponential in `|D|`).
pub fn is_beta_acyclic(d: &DbSchema) -> bool {
    beta_violation(d).is_none()
}

/// The first connected sub-multiset (as indices) that is a cyclic schema,
/// or `None` when `D` is β-acyclic.
///
/// # Panics
///
/// Panics if `d.len() > 16`.
pub fn beta_violation(d: &DbSchema) -> Option<Vec<usize>> {
    let n = d.len();
    assert!(n <= 16, "β-acyclicity check limited to ≤ 16 relations");
    for mask in 1u32..(1 << n) {
        let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if nodes.len() < 3 {
            continue; // fewer than 3 relations are always tree schemas
        }
        let sub = d.project_rels(&nodes);
        if !sub.is_connected() {
            continue; // components are checked by their own masks
        }
        if !is_tree_schema(&sub) {
            return Some(nodes);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::is_gamma_acyclic;
    use gyo_schema::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(s: &str) -> DbSchema {
        let mut cat = Catalog::alphabetic();
        DbSchema::parse(s, &mut cat).unwrap()
    }

    #[test]
    fn chains_are_beta_acyclic() {
        assert!(is_beta_acyclic(&db("ab, bc, cd")));
        assert!(is_beta_acyclic(&DbSchema::empty()));
        assert!(is_beta_acyclic(&db("abc")));
    }

    #[test]
    fn triangle_with_roof_is_alpha_but_not_beta() {
        // (abc, ab, bc, ac): a tree schema (abc covers everything), but
        // dropping abc leaves the cyclic triangle.
        let d = db("abc, ab, bc, ac");
        assert!(gyo_reduce::is_tree_schema(&d));
        let violation = beta_violation(&d).expect("not β-acyclic");
        assert_eq!(violation, vec![1, 2, 3]);
    }

    #[test]
    fn section_5_1_example_is_beta_but_not_gamma() {
        // (abc, ab, bc): every subset is a tree schema, yet it is
        // γ-cyclic — separating β from γ.
        let d = db("abc, ab, bc");
        assert!(is_beta_acyclic(&d));
        assert!(!is_gamma_acyclic(&d));
    }

    #[test]
    fn cyclic_schemas_are_not_beta_acyclic() {
        // A cyclic schema has a cyclic (sometimes proper) subset witness:
        // the ring needs all 4 edges, the Aclique already breaks at 3 faces.
        for (s, witness_size) in [
            ("ab, bc, ac", 3),
            ("ab, bc, cd, da", 4),
            ("bcd, acd, abd, abc", 3),
        ] {
            let d = db(s);
            let v = beta_violation(&d).expect("cyclic");
            assert_eq!(v.len(), witness_size, "case {s}");
            assert!(!gyo_reduce::is_tree_schema(&d.project_rels(&v)));
        }
    }

    #[test]
    fn hierarchy_gamma_implies_beta_implies_alpha() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..40 {
            let d = gyo_workloads::random_schema(&mut rng, 4, 6, 3);
            let alpha = gyo_reduce::is_tree_schema(&d);
            let beta = is_beta_acyclic(&d);
            let gamma = is_gamma_acyclic(&d);
            assert!(!gamma || beta, "γ ⟹ β failed on {d:?}");
            assert!(!beta || alpha, "β ⟹ α failed on {d:?}");
        }
    }

    #[test]
    fn beta_is_hereditary() {
        // β-acyclicity is closed under taking sub-schemas (unlike α).
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..20 {
            let d = gyo_workloads::random_tree_schema(&mut rng, 4, 6, 0.5);
            if !is_beta_acyclic(&d) {
                continue;
            }
            let n = d.len();
            for mask in 1u32..(1 << n) {
                let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                assert!(
                    is_beta_acyclic(&d.project_rels(&nodes)),
                    "sub-schema {nodes:?} of {d:?}"
                );
            }
        }
    }
}
