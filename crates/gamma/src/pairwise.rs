//! Characterizations (ii) and (iii) of Theorem 5.3.

use gyo_reduce::{is_subtree, is_tree_schema};
use gyo_schema::DbSchema;

/// Theorem 5.3(ii), the polynomial γ-acyclicity test: for all pairs
/// `R₁, R₂ ∈ D` (distinct occurrences) with `R₁ ∩ R₂ ≠ ∅`, deleting
/// `X = R₁ ∩ R₂` from every relation schema must leave `R₁ − X` and
/// `R₂ − X` in different connected components. `O(n²)` deletion-and-BFS
/// rounds.
pub fn is_gamma_acyclic(d: &DbSchema) -> bool {
    violating_pair(d).is_none()
}

/// The first pair `(i, j)` violating Theorem 5.3(ii) — i.e. `Rᵢ ∩ Rⱼ ≠ ∅`
/// yet `Rᵢ − X` and `Rⱼ − X` stay connected after deleting `X = Rᵢ ∩ Rⱼ` —
/// or `None` if `D` is γ-acyclic.
pub fn violating_pair(d: &DbSchema) -> Option<(usize, usize)> {
    let n = d.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let x = d.rel(i).intersect(d.rel(j));
            if x.is_empty() {
                continue;
            }
            let deleted = d.delete_attrs(&x);
            if same_component(&deleted, i, j) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Whether nodes `i` and `j` lie in one connected component of the
/// intersection graph of `d`. Empty relation schemas are isolated, so two
/// empty schemas are *not* connected.
pub(crate) fn same_component(d: &DbSchema, i: usize, j: usize) -> bool {
    if d.rel(i).is_empty() || d.rel(j).is_empty() {
        return false;
    }
    d.connected_components()
        .iter()
        .any(|c| c.contains(&i) && c.contains(&j))
}

/// Theorem 5.3(iii), as an exponential oracle: `D` is γ-acyclic iff `D` is
/// a tree schema and every connected `D' ⊆ D` is a subtree of `D`
/// (Theorem 3.1's GYO criterion decides subtree-ness).
///
/// # Panics
///
/// Panics if `d.len() > 16` — the subset enumeration is exponential.
pub fn is_gamma_acyclic_via_subtrees(d: &DbSchema) -> bool {
    let n = d.len();
    assert!(n <= 16, "subtree oracle limited to ≤ 16 relations");
    if !is_tree_schema(d) {
        return false;
    }
    for mask in 1u32..(1 << n) {
        let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if !d.project_rels(&nodes).is_connected() {
            continue;
        }
        if !is_subtree(d, &nodes) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;

    fn db(s: &str) -> DbSchema {
        let mut cat = Catalog::alphabetic();
        DbSchema::parse(s, &mut cat).unwrap()
    }

    #[test]
    fn chains_are_gamma_acyclic() {
        assert!(is_gamma_acyclic(&db("ab, bc, cd")));
        assert!(is_gamma_acyclic(&db("ab")));
        assert!(is_gamma_acyclic(&DbSchema::empty()));
    }

    #[test]
    fn section_5_1_example_is_tree_but_not_gamma_acyclic() {
        // D = (abc, ab, bc) is a tree schema, but D' = (ab, bc) is connected
        // and not a subtree, so D is NOT γ-acyclic. Characterization (ii):
        // the pair (abc, ab) has X = ab; deleting ab leaves (c, ∅, c) where
        // abc−X = c and bc−X = c stay connected. Wait — R₁ = abc, R₂ = ab:
        // R₂ − X = ∅, disconnected. The violating pair is (ab, bc): X = b,
        // deleting b leaves (ac, a, c): a links ac↔a, c links ac↔c, so a and
        // c (the residues) remain connected through ac.
        let d = db("abc, ab, bc");
        assert!(is_tree_schema(&d));
        assert!(!is_gamma_acyclic(&d));
        assert_eq!(violating_pair(&d), Some((1, 2)));
        assert!(!is_gamma_acyclic_via_subtrees(&d));
    }

    #[test]
    fn rings_and_cliques_are_not_gamma_acyclic() {
        assert!(!is_gamma_acyclic(&db("ab, bc, cd, da")));
        assert!(!is_gamma_acyclic(&db("bcd, acd, abd, abc")));
        assert!(!is_gamma_acyclic(&db("ab, bc, ac")));
    }

    #[test]
    fn oracle_agrees_on_small_cases() {
        for s in [
            "ab, bc, cd",
            "abc, ab, bc",
            "ab, bc, ac",
            "ab, bc, cd, da",
            "abc, cde, ace, afe",
            "ab, cd",
            "abc, bcd",
            "ab, abc, abcd",
        ] {
            let d = db(s);
            assert_eq!(
                is_gamma_acyclic(&d),
                is_gamma_acyclic_via_subtrees(&d),
                "case {s}"
            );
        }
    }

    #[test]
    fn fig7_deleting_intersections_in_cores_does_not_disconnect() {
        // Fig. 7(a): in the Aring (ab, bc, cd, da) take R = cd and S = da
        // sharing d... the figure uses supersets in a bigger schema; the
        // plain statement on cores: some pair stays connected.
        let ring = db("ab, bc, cd, da");
        let (i, j) = violating_pair(&ring).expect("cyclic cores violate (ii)");
        let x = ring.rel(i).intersect(ring.rel(j));
        let deleted = ring.delete_attrs(&x);
        assert!(same_component(&deleted, i, j));

        let clique = db("bcd, acd, abd, abc");
        let (i, j) = violating_pair(&clique).expect("clique violates (ii)");
        let x = clique.rel(i).intersect(clique.rel(j));
        let deleted = clique.delete_attrs(&x);
        assert!(same_component(&deleted, i, j));
    }

    #[test]
    fn gamma_acyclic_implies_tree_schema() {
        for s in ["ab, bc, cd", "a, ab, abc", "ab, cd, ce"] {
            let d = db(s);
            if is_gamma_acyclic(&d) {
                assert!(is_tree_schema(&d), "case {s}");
            }
        }
    }

    #[test]
    fn nested_subsets_are_gamma_acyclic() {
        // (a, ab, abc): every pairwise deletion empties the smaller side.
        assert!(is_gamma_acyclic(&db("a, ab, abc")));
        assert!(is_gamma_acyclic_via_subtrees(&db("a, ab, abc")));
    }

    #[test]
    fn duplicate_relations_are_fine() {
        // (ab, ab): X = ab for the pair; both residues empty ⟹ disconnected.
        assert!(is_gamma_acyclic(&db("ab, ab")));
    }

    #[test]
    fn star_with_private_attrs() {
        // (ab, ac, ad): pair (ab, ac): X = a; residues b and c; deleted
        // schema (b, c, d) disconnected ⟹ γ-acyclic.
        assert!(is_gamma_acyclic(&db("ab, ac, ad")));
    }
}
