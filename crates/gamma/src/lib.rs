//! γ-acyclicity (§5.2 of the paper).
//!
//! Fagin characterized the schemas `D` for which `⋈D ⊨ ⋈D'` holds for
//! *every* connected `D' ⊆ D`: exactly the **γ-acyclic** schemas — those
//! without *weak γ-cycles*. Theorem 5.3 of the paper gives two further
//! characterizations, proved by qual-graph techniques; this crate implements
//! all three and the test suite verifies their equivalence:
//!
//! 1. **(i)** `D` has no weak γ-cycle — [`find_weak_gamma_cycle`] searches
//!    constructively, following the Theorem 5.3 (i)⇒(ii) proof (find a
//!    violating pair, take the connecting path, shorten it per Fig. 4, and
//!    close the cycle);
//! 2. **(ii)** for every pair `R₁, R₂ ∈ D` with `R₁ ∩ R₂ ≠ ∅`, deleting
//!    `R₁ ∩ R₂` from every relation schema disconnects `R₁ − (R₁∩R₂)` from
//!    `R₂ − (R₁∩R₂)` — [`is_gamma_acyclic`], the polynomial decision
//!    procedure;
//! 3. **(iii)** `D` is a tree schema and every connected `D' ⊆ D` is a
//!    subtree of `D` — [`is_gamma_acyclic_via_subtrees`], exponential,
//!    retained as a cross-validation oracle.

#![warn(missing_docs)]

pub mod beta;
pub mod cycles;
pub mod ladder;
pub mod pairwise;

pub use beta::{beta_violation, is_beta_acyclic};
pub use cycles::{find_weak_gamma_cycle, GammaCycle};
pub use ladder::{acyclicity_report, AcyclicityLevel, AcyclicityReport};
pub use pairwise::{is_gamma_acyclic, is_gamma_acyclic_via_subtrees, violating_pair};
