//! The acyclicity ladder: one call classifying a schema on Fagin's
//! hierarchy, with witnesses.
//!
//! ```text
//! γ-acyclic ⊂ β-acyclic ⊂ α-acyclic (tree schema) ⊂ all schemas
//! ```
//!
//! Each level comes with the guarantee the paper associates with it:
//!
//! * **α** — semijoin processing works: full reducers exist, the whole
//!   join is lossless (§4);
//! * **β** — α survives taking *any* sub-database;
//! * **γ** — every *connected* sub-database has a lossless join
//!   (Corollary 5.3 / Fagin's (*)).

use gyo_reduce::{find_cyclic_core, is_tree_schema, CoreWitness};
use gyo_schema::DbSchema;

use crate::beta::beta_violation;
use crate::cycles::{find_weak_gamma_cycle, GammaCycle};
use crate::pairwise::is_gamma_acyclic;

/// Where a schema sits on the acyclicity ladder (most restrictive level it
/// satisfies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AcyclicityLevel {
    /// Cyclic: not even a tree schema.
    Cyclic,
    /// α-acyclic (a tree schema) but not β-acyclic.
    Alpha,
    /// β-acyclic but not γ-acyclic.
    Beta,
    /// γ-acyclic.
    Gamma,
}

/// The classification plus the witness refuting the next level up (if any).
#[derive(Clone, Debug)]
pub struct AcyclicityReport {
    /// The most restrictive level `D` satisfies.
    pub level: AcyclicityLevel,
    /// For `Cyclic`: the Lemma 3.1 core witness.
    pub cyclic_core: Option<CoreWitness>,
    /// For `Alpha`: the cyclic sub-multiset refuting β.
    pub beta_witness: Option<Vec<usize>>,
    /// For `Alpha`/`Beta`: a weak γ-cycle refuting γ.
    pub gamma_witness: Option<GammaCycle>,
}

/// Classifies `d` on the ladder and collects refutation witnesses.
///
/// # Panics
///
/// Panics if `d.len() > 16` (the β check is exponential) or if the GYO
/// residue exceeds the Lemma 3.1 search bound (see
/// [`find_cyclic_core`]).
pub fn acyclicity_report(d: &DbSchema) -> AcyclicityReport {
    if !is_tree_schema(d) {
        return AcyclicityReport {
            level: AcyclicityLevel::Cyclic,
            cyclic_core: find_cyclic_core(d),
            beta_witness: None,
            gamma_witness: None,
        };
    }
    let beta_witness = beta_violation(d);
    let gamma_witness = find_weak_gamma_cycle(d);
    let level = if beta_witness.is_some() {
        AcyclicityLevel::Alpha
    } else if gamma_witness.is_some() {
        AcyclicityLevel::Beta
    } else {
        AcyclicityLevel::Gamma
    };
    debug_assert_eq!(gamma_witness.is_none(), is_gamma_acyclic(d));
    AcyclicityReport {
        level,
        cyclic_core: None,
        beta_witness,
        gamma_witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;

    fn db(s: &str) -> DbSchema {
        let mut cat = Catalog::alphabetic();
        DbSchema::parse(s, &mut cat).unwrap()
    }

    #[test]
    fn ladder_examples_one_per_level() {
        // γ: the chain.
        let r = acyclicity_report(&db("ab, bc, cd"));
        assert_eq!(r.level, AcyclicityLevel::Gamma);
        assert!(r.gamma_witness.is_none() && r.beta_witness.is_none());

        // β but not γ: the §5.1 example.
        let r = acyclicity_report(&db("abc, ab, bc"));
        assert_eq!(r.level, AcyclicityLevel::Beta);
        assert!(r.gamma_witness.is_some());

        // α but not β: the triangle with a roof.
        let r = acyclicity_report(&db("abc, ab, bc, ac"));
        assert_eq!(r.level, AcyclicityLevel::Alpha);
        assert_eq!(r.beta_witness, Some(vec![1, 2, 3]));

        // cyclic: the ring, with its Lemma 3.1 core.
        let r = acyclicity_report(&db("ab, bc, cd, da"));
        assert_eq!(r.level, AcyclicityLevel::Cyclic);
        assert!(r.cyclic_core.is_some());
    }

    #[test]
    fn levels_are_ordered() {
        assert!(AcyclicityLevel::Cyclic < AcyclicityLevel::Alpha);
        assert!(AcyclicityLevel::Alpha < AcyclicityLevel::Beta);
        assert!(AcyclicityLevel::Beta < AcyclicityLevel::Gamma);
    }

    #[test]
    fn degenerate_schemas_are_gamma() {
        assert_eq!(
            acyclicity_report(&DbSchema::empty()).level,
            AcyclicityLevel::Gamma
        );
        assert_eq!(acyclicity_report(&db("abc")).level, AcyclicityLevel::Gamma);
        assert_eq!(
            acyclicity_report(&db("ab, ab")).level,
            AcyclicityLevel::Gamma
        );
    }

    #[test]
    fn witnesses_verify() {
        let d = db("abc, ab, bc");
        let r = acyclicity_report(&d);
        assert!(r.gamma_witness.unwrap().verify(&d));

        let ring = db("ab, bc, cd, da");
        let r = acyclicity_report(&ring);
        let core = r.cyclic_core.unwrap();
        assert!(
            gyo_reduce::cores::classify_core(&ring.delete_attrs(&core.deleted).reduce()).is_some()
        );
    }
}
