//! Property tests for the GYO engine: the §3.3 invariants the paper states
//! without proof ("operations preserve schema type", uniqueness of GR) and
//! the laws connecting GR to reduction.

use gyo_reduce::{classify, gr, gyo_reduce, gyo_reduce_naive, is_tree_schema, GyoStep};
use gyo_schema::{AttrSet, DbSchema};
use proptest::prelude::*;

fn attr_set() -> impl Strategy<Value = AttrSet> {
    proptest::collection::vec(0u32..10, 0..6).prop_map(|v| AttrSet::from_raw(&v))
}

fn schema() -> impl Strategy<Value = DbSchema> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..10, 1..5).prop_map(|v| AttrSet::from_raw(&v)),
        0..6,
    )
    .prop_map(DbSchema::new)
}

/// Applies one legal GYO operation (if any) and returns the new schema.
fn apply_one_op(d: &DbSchema, x: &AttrSet) -> Option<DbSchema> {
    let red = gyo_reduce(d, x);
    let step = red.trace.first()?;
    let mut rels: Vec<AttrSet> = d.iter().cloned().collect();
    match *step {
        GyoStep::DeleteAttr { attr, rel } => {
            rels[rel].remove(attr);
        }
        GyoStep::RemoveSubset { removed, .. } => {
            rels.remove(removed);
        }
    }
    Some(DbSchema::new(rels))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// §3.3: "(1) and (2) preserve schema type" — applying one operation
    /// never flips tree ↔ cyclic.
    #[test]
    fn single_ops_preserve_schema_type(d in schema(), x in attr_set()) {
        if let Some(next) = apply_one_op(&d, &x) {
            prop_assert_eq!(classify(&d), classify(&next), "{:?} -> {:?}", d, next);
        }
    }

    /// Maier & Ullman: GR(D, X) is unique — engine order must not matter,
    /// including under input permutation (up to multiset equality).
    #[test]
    fn gr_is_unique_up_to_input_order(d in schema(), x in attr_set()) {
        let forward = gr(&d, &x);
        let mut rels: Vec<AttrSet> = d.iter().cloned().collect();
        rels.reverse();
        let backward = gr(&DbSchema::new(rels), &x);
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &gyo_reduce_naive(&d, &x).result);
        prop_assert!(forward.is_reduced());
    }

    /// GR with every attribute sacred degenerates to subset elimination:
    /// `GR(D, U(D)) = reduce(D)`.
    #[test]
    fn gr_with_full_sacred_set_is_reduce(d in schema()) {
        let u = d.attributes();
        prop_assert_eq!(gr(&d, &u), d.reduce());
    }

    /// Survivor attribute sets shrink monotonically with the sacred set:
    /// attributes of GR(D, X) outside X can only disappear when X grows.
    #[test]
    fn gr_attributes_contain_sacred_intersection(d in schema(), x in attr_set()) {
        let g = gr(&d, &x);
        // every surviving attribute is an original attribute
        prop_assert!(g.attributes().is_subset(&d.attributes()));
        // sacred attributes of U(D) always survive in some relation unless
        // their entire relations were subset-eliminated — they are never
        // *deleted*, so X ∩ U(D) ⊆ U(GR) ∪ (attrs of eliminated rels ⊆
        // witnesses ⊆ …) ⇒ in fact X ∩ U(D) ⊆ U(GR).
        let sacred_present = x.intersect(&d.attributes());
        prop_assert!(sacred_present.is_subset(&g.attributes()),
            "sacred {:?} lost from {:?} -> {:?}", sacred_present, d, g);
    }

    /// The reduction never grows: |GR| ≤ |D| and Σ|R| never increases.
    #[test]
    fn gr_shrinks(d in schema(), x in attr_set()) {
        let g = gr(&d, &x);
        prop_assert!(g.len() <= d.len());
        let total = |s: &DbSchema| s.iter().map(|r| r.len()).sum::<usize>();
        prop_assert!(total(&g) <= total(&d));
    }

    /// Classification agrees between direct GYO and GYO-after-reduce
    /// (subset elimination preserves type).
    #[test]
    fn classification_survives_reduction(d in schema()) {
        prop_assert_eq!(classify(&d), classify(&d.reduce()));
    }

    /// Adding the full attribute set always treeifies (Theorem 3.2(ii)
    /// upper bound), and adding U(GR(D)) is enough.
    #[test]
    fn treeifying_relation_works(d in schema()) {
        let w = gyo_reduce::treeifying_relation(&d);
        prop_assert!(is_tree_schema(&d.with_rel(w)));
        prop_assert!(is_tree_schema(&d.with_rel(d.attributes())));
    }

    /// Join trees from traces always validate for tree schemas.
    #[test]
    fn trace_join_trees_validate(d in schema()) {
        let red = gyo_reduce(&d, &AttrSet::empty());
        match gyo_reduce::join_tree_from_trace(&d, &red) {
            Some(t) => {
                prop_assert!(red.is_total());
                prop_assert!(t.graph().is_valid_for(&d));
                prop_assert!(t.attribute_connectivity_holds(&d));
            }
            None => prop_assert!(!red.is_total()),
        }
    }
}

/// The sacred-survival law above depends on a subtle fact worth one
/// concrete regression: a sacred attribute's holder can be subset-
/// eliminated, but only into a witness that also holds the attribute.
#[test]
fn sacred_attribute_survives_subset_elimination() {
    let mut cat = gyo_schema::Catalog::alphabetic();
    let d = DbSchema::parse("ab, abc", &mut cat).unwrap();
    let x = AttrSet::parse("a", &mut cat).unwrap();
    let g = gr(&d, &x);
    assert!(g.attributes().contains(cat.lookup("a").unwrap()));
}
