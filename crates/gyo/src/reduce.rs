//! The GYO reduction engine (§3.3).
//!
//! Given a database schema `D` and a *sacred* attribute set `X ⊆ U(D)`, the
//! GYO reduction repeatedly applies two operations until neither applies:
//!
//! 1. **Isolated attribute deletion** — delete an attribute `A ∉ X` that
//!    belongs to exactly one relation schema of `D`;
//! 2. **Subset elimination** — delete a relation schema contained in another
//!    relation schema (equal schemas count; one copy of a duplicate pair may
//!    be deleted).
//!
//! Any maximal sequence yields the same result `GR(D, X)` (Maier & Ullman
//! \[16\]); the result is reduced. Both operations preserve schema type
//! (tree/cyclic), which yields the classical decision procedure: `D` is a
//! tree schema iff `GR(D, ∅)` collapses to the single empty relation schema
//! (Corollary 3.1).

use gyo_schema::{AttrId, AttrSet, DbSchema, FxHashMap, FxHashSet};

/// One GYO operation, recorded against *original* relation indices of the
/// input schema (indices never shift as relations are eliminated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GyoStep {
    /// Deleted attribute `attr` from relation `rel`, where it was isolated
    /// (appeared in no other surviving relation) and not sacred.
    DeleteAttr {
        /// The deleted attribute.
        attr: AttrId,
        /// Original index of the relation it was deleted from.
        rel: usize,
    },
    /// Eliminated relation `removed` because (its current value) was a
    /// subset of relation `witness`'s current value.
    RemoveSubset {
        /// Original index of the eliminated relation.
        removed: usize,
        /// Original index of the containing relation.
        witness: usize,
    },
}

/// The outcome of a GYO reduction: the reduced schema, the surviving
/// original indices, and the full operation trace.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// `GR(D, X)` — surviving relation schemas with deleted attributes
    /// removed, in original multiset order.
    pub result: DbSchema,
    /// Original indices of the surviving relations (parallel to
    /// `result.rels()`).
    pub survivors: Vec<usize>,
    /// Operations applied, in order.
    pub trace: Vec<GyoStep>,
}

impl Reduction {
    /// Whether the reduction ran to the single empty relation schema — the
    /// Corollary 3.1 criterion for tree schemas (an empty input schema also
    /// counts).
    pub fn is_total(&self) -> bool {
        self.result.is_empty() || (self.result.len() == 1 && self.result.rel(0).is_empty())
    }

    /// Pretty-prints the operation trace, one step per line, in the
    /// vocabulary of §3.3 (attribute names resolved through `cat`).
    pub fn display(&self, cat: &gyo_schema::Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for step in &self.trace {
            match *step {
                GyoStep::DeleteAttr { attr, rel } => writeln!(
                    out,
                    "delete isolated attribute {} from R{rel}",
                    cat.name(attr)
                ),
                GyoStep::RemoveSubset { removed, witness } => {
                    writeln!(out, "eliminate R{removed} (⊆ R{witness})")
                }
            }
            .expect("write to string");
        }
        write!(out, "result: {}", self.result.to_notation(cat)).expect("write to string");
        out
    }
}

/// Tree vs cyclic — the paper's fundamental dichotomy (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemaKind {
    /// Some qual graph for the schema is a tree ("α-acyclic" in the wider
    /// literature).
    Tree,
    /// No qual graph for the schema is a tree.
    Cyclic,
}

/// Computes `GR(D, X)` with the incremental engine.
///
/// Runs in `O(Σ|R| · log + subset-probe)` time in practice: attribute
/// occurrence counts drive isolated-attribute deletion; subset elimination
/// probes only the candidate relations sharing the rarest attribute of a
/// shrunken relation.
///
/// # Examples
///
/// ```
/// use gyo_schema::{Catalog, DbSchema, AttrSet};
/// use gyo_reduce::gyo_reduce;
///
/// let mut cat = Catalog::alphabetic();
/// let d = DbSchema::parse("ab, bc, cd", &mut cat).unwrap();
/// let red = gyo_reduce(&d, &AttrSet::empty());
/// assert!(red.is_total()); // chains are tree schemas
///
/// let ring = DbSchema::parse("ab, bc, cd, da", &mut cat).unwrap();
/// assert!(!gyo_reduce(&ring, &AttrSet::empty()).is_total());
/// ```
pub fn gyo_reduce(d: &DbSchema, x: &AttrSet) -> Reduction {
    Engine::new(d, x).run()
}

/// Computes just the reduced schema `GR(D, X)`.
pub fn gr(d: &DbSchema, x: &AttrSet) -> DbSchema {
    gyo_reduce(d, x).result
}

/// A deliberately simple fixpoint engine: scan for the first applicable
/// operation, apply it, repeat. `O(n³·w)` worst case; retained as the test
/// oracle for the incremental engine (both must agree — GR is unique).
pub fn gyo_reduce_naive(d: &DbSchema, x: &AttrSet) -> Reduction {
    let mut rels: Vec<AttrSet> = d.iter().cloned().collect();
    let mut alive: Vec<bool> = vec![true; rels.len()];
    let mut trace = Vec::new();
    loop {
        let mut progressed = false;
        // Operation (1): isolated attribute deletion.
        'attrs: for i in 0..rels.len() {
            if !alive[i] {
                continue;
            }
            for a in rels[i].clone().iter() {
                if x.contains(a) {
                    continue;
                }
                let occurrences = rels
                    .iter()
                    .zip(&alive)
                    .filter(|(r, &al)| al && r.contains(a))
                    .count();
                if occurrences == 1 {
                    rels[i].remove(a);
                    trace.push(GyoStep::DeleteAttr { attr: a, rel: i });
                    progressed = true;
                    break 'attrs;
                }
            }
        }
        if progressed {
            continue;
        }
        // Operation (2): subset elimination.
        'subsets: for i in 0..rels.len() {
            if !alive[i] {
                continue;
            }
            for j in 0..rels.len() {
                if i == j || !alive[j] {
                    continue;
                }
                let removable = rels[i].is_subset(&rels[j]) && (rels[i] != rels[j] || i > j);
                if removable {
                    alive[i] = false;
                    trace.push(GyoStep::RemoveSubset {
                        removed: i,
                        witness: j,
                    });
                    progressed = true;
                    break 'subsets;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let survivors: Vec<usize> = (0..rels.len()).filter(|&i| alive[i]).collect();
    Reduction {
        result: DbSchema::new(survivors.iter().map(|&i| rels[i].clone()).collect()),
        survivors,
        trace,
    }
}

/// Decides whether `D` is a tree schema (Corollary 3.1: `D` is a tree schema
/// iff the unrestricted GYO reduction is total).
pub fn is_tree_schema(d: &DbSchema) -> bool {
    gyo_reduce(d, &AttrSet::empty()).is_total()
}

/// Classifies `D` as [`SchemaKind::Tree`] or [`SchemaKind::Cyclic`].
pub fn classify(d: &DbSchema) -> SchemaKind {
    if is_tree_schema(d) {
        SchemaKind::Tree
    } else {
        SchemaKind::Cyclic
    }
}

/// `U(GR(D))` — by Corollary 3.2 the relation schema of least cardinality
/// whose addition to `D` makes it a tree schema. For a tree schema this is
/// the empty set (adding `∅` changes nothing relevant).
pub fn treeifying_relation(d: &DbSchema) -> AttrSet {
    gr(d, &AttrSet::empty()).attributes()
}

// ---------------------------------------------------------------------------
// Incremental engine
// ---------------------------------------------------------------------------

struct Engine<'a> {
    sacred: &'a AttrSet,
    rels: Vec<AttrSet>,
    alive: Vec<bool>,
    alive_count: usize,
    /// attribute -> indices of alive relations containing it
    holders: FxHashMap<AttrId, FxHashSet<usize>>,
    /// relations whose content changed and must be re-checked
    dirty: Vec<usize>,
    in_dirty: Vec<bool>,
    trace: Vec<GyoStep>,
}

impl<'a> Engine<'a> {
    fn new(d: &DbSchema, sacred: &'a AttrSet) -> Self {
        let rels: Vec<AttrSet> = d.iter().cloned().collect();
        let n = rels.len();
        let mut holders: FxHashMap<AttrId, FxHashSet<usize>> = FxHashMap::default();
        for (i, r) in rels.iter().enumerate() {
            for a in r.iter() {
                holders.entry(a).or_default().insert(i);
            }
        }
        Engine {
            sacred,
            rels,
            alive: vec![true; n],
            alive_count: n,
            holders,
            dirty: (0..n).collect(),
            in_dirty: vec![true; n],
            trace: Vec::new(),
        }
    }

    fn mark_dirty(&mut self, i: usize) {
        if self.alive[i] && !self.in_dirty[i] {
            self.in_dirty[i] = true;
            self.dirty.push(i);
        }
    }

    /// Deletes every currently-isolated non-sacred attribute of relation `i`.
    fn delete_isolated(&mut self, i: usize) {
        let mut to_delete = Vec::new();
        for a in self.rels[i].iter() {
            if self.sacred.contains(a) {
                continue;
            }
            if self.holders.get(&a).map_or(0, |h| h.len()) == 1 {
                to_delete.push(a);
            }
        }
        for a in to_delete {
            self.rels[i].remove(a);
            self.holders.remove(&a);
            self.trace.push(GyoStep::DeleteAttr { attr: a, rel: i });
        }
    }

    /// Looks for an alive `j ≠ i` with `rels[i] ⊆ rels[j]`, preferring the
    /// candidate set of the rarest attribute of `i`. Empty relations scan
    /// for any other alive relation.
    fn find_witness(&self, i: usize) -> Option<usize> {
        if self.rels[i].is_empty() {
            return (0..self.rels.len()).find(|&j| j != i && self.alive[j]);
        }
        // Probe only relations holding the rarest attribute of rels[i].
        let rarest = self.rels[i]
            .iter()
            .min_by_key(|a| self.holders.get(a).map_or(0, |h| h.len()))?;
        let candidates = self.holders.get(&rarest)?;
        for &j in candidates {
            if j == i || !self.alive[j] {
                continue;
            }
            if self.rels[i].is_subset(&self.rels[j]) {
                // For equal multiset entries, remove either copy; determinism
                // of the *resulting multiset* does not depend on the choice.
                return Some(j);
            }
        }
        None
    }

    fn remove_rel(&mut self, i: usize, witness: usize) {
        self.alive[i] = false;
        self.alive_count -= 1;
        self.trace.push(GyoStep::RemoveSubset {
            removed: i,
            witness,
        });
        let attrs: Vec<AttrId> = self.rels[i].iter().collect();
        for a in attrs {
            if let Some(h) = self.holders.get_mut(&a) {
                h.remove(&i);
                if h.len() == 1 {
                    // the attribute may have become isolated elsewhere
                    let sole = *h.iter().next().expect("len checked");
                    self.mark_dirty(sole);
                }
            }
        }
    }

    fn run(mut self) -> Reduction {
        while let Some(i) = self.dirty.pop() {
            self.in_dirty[i] = false;
            if !self.alive[i] {
                continue;
            }
            let before = self.rels[i].len();
            self.delete_isolated(i);
            if self.rels[i].len() != before {
                // A shrunken relation may now be a subset of a neighbor, and
                // *it* is the only relation whose subset status changed.
                self.mark_dirty(i);
            }
            if self.alive_count > 1 {
                if let Some(w) = self.find_witness(i) {
                    self.remove_rel(i, w);
                    // The witness did not change, but relations that shared
                    // attributes with `i` may now hold isolated attributes;
                    // remove_rel marked exactly those.
                }
            }
        }
        debug_assert!(self.fixpoint_reached());
        let survivors: Vec<usize> = (0..self.rels.len()).filter(|&i| self.alive[i]).collect();
        Reduction {
            result: DbSchema::new(survivors.iter().map(|&i| self.rels[i].clone()).collect()),
            survivors,
            trace: self.trace,
        }
    }

    /// Debug check: no operation applies any more.
    fn fixpoint_reached(&self) -> bool {
        for i in 0..self.rels.len() {
            if !self.alive[i] {
                continue;
            }
            for a in self.rels[i].iter() {
                if !self.sacred.contains(a) && self.holders.get(&a).map_or(0, |h| h.len()) == 1 {
                    return false;
                }
            }
            for j in 0..self.rels.len() {
                if i != j && self.alive[j] && self.rels[i].is_subset(&self.rels[j]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;

    fn db(s: &str) -> (DbSchema, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(s, &mut cat).unwrap();
        (d, cat)
    }

    fn set(s: &str, cat: &mut Catalog) -> AttrSet {
        AttrSet::parse(s, cat).unwrap()
    }

    #[test]
    fn fig1_classifications() {
        // Fig. 1 of the paper.
        assert_eq!(classify(&db("ab, bc, cd").0), SchemaKind::Tree);
        assert_eq!(classify(&db("ab, bc, ac").0), SchemaKind::Cyclic);
        assert_eq!(classify(&db("abc, cde, ace, afe").0), SchemaKind::Tree);
    }

    #[test]
    fn fig2_aring_and_aclique_are_cyclic() {
        // Fig. 2a and 2b.
        assert_eq!(classify(&db("ab, bc, cd, da").0), SchemaKind::Cyclic);
        assert_eq!(classify(&db("bcd, acd, abd, abc").0), SchemaKind::Cyclic);
    }

    #[test]
    fn empty_and_trivial_schemas_are_trees() {
        assert!(is_tree_schema(&DbSchema::empty()));
        assert!(is_tree_schema(&db("abc").0));
        assert!(is_tree_schema(&db("ab, ab").0)); // duplicates collapse
        let empty_rel = DbSchema::new(vec![AttrSet::empty()]);
        assert!(is_tree_schema(&empty_rel));
    }

    #[test]
    fn reduction_result_is_reduced_and_respects_sacred_attrs() {
        let (d, mut cat) = db("abc, ab, bc");
        let x = set("abc", &mut cat);
        let red = gyo_reduce(&d, &x);
        assert!(red.result.is_reduced());
        // With all attributes sacred only subset elimination applies.
        assert_eq!(red.result, db("abc").0);
        assert_eq!(red.survivors, vec![0]);
    }

    #[test]
    fn gr_with_partial_sacred_set() {
        // GR((ab, bc, cd), ab): d isolated -> (ab, bc, c); c sacred? no —
        // X = ab, so c deletable once isolated: bc stays (b,c shared)…
        let (d, mut cat) = db("ab, bc, cd");
        let x = set("ab", &mut cat);
        let g = gr(&d, &x);
        // cd loses d, becomes c ⊆ bc, removed; bc loses c (now isolated),
        // becomes b ⊆ ab, removed. Result: (ab).
        assert_eq!(g, db("ab").0);
    }

    #[test]
    fn incremental_agrees_with_naive_on_examples() {
        let cases = [
            "ab, bc, cd",
            "ab, bc, ac",
            "abc, cde, ace, afe",
            "ab, bc, cd, da",
            "bcd, acd, abd, abc",
            "abc, ab, bc, abc",
            "a, b, c",
            "abcde",
            "ab, ab, ab",
        ];
        for s in cases {
            let (d, mut cat) = db(s);
            for xs in ["", "a", "ab", "abc"] {
                let x = set(xs, &mut cat);
                let fast = gyo_reduce(&d, &x);
                let slow = gyo_reduce_naive(&d, &x);
                assert_eq!(fast.result, slow.result, "case {s} X={xs}");
            }
        }
    }

    #[test]
    fn trace_replay_reproduces_result() {
        let (d, _) = db("abc, cde, ace, afe");
        let red = gyo_reduce(&d, &AttrSet::empty());
        // Replay the trace naively and verify it is a legal op sequence.
        let mut rels: Vec<AttrSet> = d.iter().cloned().collect();
        let mut alive = vec![true; rels.len()];
        for step in &red.trace {
            match *step {
                GyoStep::DeleteAttr { attr, rel } => {
                    assert!(alive[rel]);
                    let holders = rels
                        .iter()
                        .zip(&alive)
                        .filter(|(r, &al)| al && r.contains(attr))
                        .count();
                    assert_eq!(holders, 1, "attribute must be isolated");
                    assert!(rels[rel].remove(attr));
                }
                GyoStep::RemoveSubset { removed, witness } => {
                    assert!(alive[removed] && alive[witness]);
                    assert!(rels[removed].is_subset(&rels[witness]));
                    alive[removed] = false;
                }
            }
        }
        let survivors: Vec<AttrSet> = rels
            .iter()
            .zip(&alive)
            .filter(|(_, &al)| al)
            .map(|(r, _)| r.clone())
            .collect();
        assert_eq!(DbSchema::new(survivors), red.result);
    }

    #[test]
    fn corollary_3_2_treeifying_relation() {
        // Aring of size 4: GR is the ring itself, so the treeifying relation
        // is all four attributes.
        let (ring, cat) = db("ab, bc, cd, da");
        assert_eq!(treeifying_relation(&ring).to_notation(&cat), "abcd");
        // Adding it indeed yields a tree schema (Theorem 3.2(ii)).
        let fixed = ring.with_rel(treeifying_relation(&ring));
        assert!(is_tree_schema(&fixed));
        // Tree schemas need nothing.
        let (chain, _) = db("ab, bc");
        assert!(treeifying_relation(&chain).is_empty());
    }

    #[test]
    fn theorem_3_2_iii_any_treeifying_single_relation_covers_u_gr() {
        // If D ∪ (S) is a tree schema then S ⊇ U(GR(D)).
        let (ring, mut cat) = db("ab, bc, cd, da");
        let need = treeifying_relation(&ring);
        // abc misses d: adding it must NOT treeify.
        let s = set("abc", &mut cat);
        assert!(!need.is_subset(&s));
        assert!(!is_tree_schema(&ring.with_rel(s)));
        // any superset of abcd treeifies
        let s2 = set("abcd", &mut cat);
        assert!(is_tree_schema(&ring.with_rel(s2)));
    }

    #[test]
    fn survivors_point_at_original_indices() {
        let (d, mut cat) = db("ab, abc, bc");
        let x = set("abc", &mut cat);
        let red = gyo_reduce(&d, &x);
        assert_eq!(red.survivors, vec![1]);
        assert_eq!(red.result.rel(0), d.rel(1));
    }

    #[test]
    fn sacred_attributes_never_deleted() {
        let (d, mut cat) = db("ab, cd");
        let x = set("ad", &mut cat);
        let red = gyo_reduce(&d, &x);
        for step in &red.trace {
            if let GyoStep::DeleteAttr { attr, .. } = step {
                assert!(!x.contains(*attr));
            }
        }
        // b and c are deletable; a and d sacred: result (a, d).
        let mut expect_cat = Catalog::alphabetic();
        let expect = DbSchema::new(vec![
            AttrSet::parse("a", &mut expect_cat).unwrap(),
            AttrSet::parse("d", &mut expect_cat).unwrap(),
        ]);
        assert_eq!(red.result, expect);
    }

    #[test]
    fn trace_display_is_readable() {
        let (d, cat) = db("abc, ab, bc");
        let red = gyo_reduce(&d, &AttrSet::empty());
        let text = red.display(&cat);
        assert!(text.contains("eliminate"), "{text}");
        assert!(text.ends_with("result: (∅)"), "{text}");
    }

    #[test]
    fn big_chain_reduces_quickly() {
        // a cheap smoke test that the incremental engine is not quadratic in
        // an obvious way: 2000-relation chain.
        let n = 2000u32;
        let rels: Vec<AttrSet> = (0..n).map(|i| AttrSet::from_raw(&[i, i + 1])).collect();
        let d = DbSchema::new(rels);
        assert!(is_tree_schema(&d));
    }
}
