//! Brute-force deciders used to cross-validate the polynomial algorithms.
//!
//! Everything here enumerates **all labeled trees** on `n` nodes via Prüfer
//! sequences (`n^(n-2)` of them), so callers must keep `n` small (the
//! functions assert `n ≤ 8`). These oracles define ground truth for:
//!
//! * tree-schema-ness (some qual graph is a tree);
//! * the subtree relation of Theorem 3.1 (some qual tree in which a node
//!   set induces a connected subgraph);
//! * γ-acyclicity characterization (iii) of Theorem 5.3, used by the
//!   `gyo-gamma` crate's tests.

use gyo_schema::{DbSchema, JoinTree, QualGraph};

/// Decodes a Prüfer sequence into the edge list of a labeled tree on
/// `seq.len() + 2` nodes.
fn pruefer_decode(seq: &[usize], n: usize) -> Vec<(usize, usize)> {
    debug_assert_eq!(seq.len() + 2, n);
    let mut degree = vec![1usize; n];
    for &s in seq {
        degree[s] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Standard decoding: repeatedly attach the smallest leaf.
    let mut leaf_heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &s in seq {
        let std::cmp::Reverse(leaf) = leaf_heap.pop().expect("a tree always has a leaf");
        edges.push((leaf, s));
        degree[s] -= 1;
        if degree[s] == 1 {
            leaf_heap.push(std::cmp::Reverse(s));
        }
    }
    let std::cmp::Reverse(u) = leaf_heap.pop().expect("two nodes remain");
    let std::cmp::Reverse(v) = leaf_heap.pop().expect("two nodes remain");
    edges.push((u, v));
    edges
}

/// Calls `f` with every labeled tree on `n` nodes (as an edge list); stops
/// early when `f` returns `true` and returns whether any call did.
///
/// # Panics
///
/// Panics if `n > 8` (8^6 = 262 144 trees is the sanity limit).
pub fn any_labeled_tree(n: usize, mut f: impl FnMut(&[(usize, usize)]) -> bool) -> bool {
    assert!(n <= 8, "brute-force tree enumeration limited to n ≤ 8");
    match n {
        0 | 1 => f(&[]),
        2 => f(&[(0, 1)]),
        _ => {
            let mut seq = vec![0usize; n - 2];
            loop {
                if f(&pruefer_decode(&seq, n)) {
                    return true;
                }
                // odometer increment over base-n digits
                let mut i = 0;
                loop {
                    if i == seq.len() {
                        return false;
                    }
                    seq[i] += 1;
                    if seq[i] < n {
                        break;
                    }
                    seq[i] = 0;
                    i += 1;
                }
            }
        }
    }
}

/// Ground truth for tree-schema-ness: does *some* labeled tree on `d.len()`
/// nodes validate as a qual graph for `d`?
pub fn is_tree_schema_bruteforce(d: &DbSchema) -> bool {
    let n = d.len();
    if n == 0 {
        return true;
    }
    any_labeled_tree(n, |edges| {
        QualGraph::new(n, edges.iter().copied()).is_valid_for(d)
    })
}

/// Ground truth for Theorem 3.1's subtree relation: does some qual tree for
/// `d` exist in which `nodes` induce a connected subgraph?
pub fn is_subtree_bruteforce(d: &DbSchema, nodes: &[usize]) -> bool {
    let n = d.len();
    if n == 0 {
        return nodes.is_empty();
    }
    any_labeled_tree(n, |edges| {
        let g = QualGraph::new(n, edges.iter().copied());
        match JoinTree::try_new(g, d) {
            Some(t) => t.induces_connected(nodes),
            None => false,
        }
    })
}

/// Collects every qual tree for `d` (small `d` only).
pub fn all_qual_trees(d: &DbSchema) -> Vec<JoinTree> {
    let n = d.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    any_labeled_tree(n, |edges| {
        let g = QualGraph::new(n, edges.iter().copied());
        if let Some(t) = JoinTree::try_new(g, d) {
            out.push(t);
        }
        false
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::is_tree_schema;
    use gyo_schema::Catalog;

    fn db(s: &str) -> DbSchema {
        let mut cat = Catalog::alphabetic();
        DbSchema::parse(s, &mut cat).unwrap()
    }

    #[test]
    fn tree_counts_match_cayley() {
        // All 3 labeled trees on 3 nodes, 16 on 4 nodes.
        let mut count = 0;
        any_labeled_tree(3, |_| {
            count += 1;
            false
        });
        assert_eq!(count, 3);
        count = 0;
        any_labeled_tree(4, |_| {
            count += 1;
            false
        });
        assert_eq!(count, 16);
    }

    #[test]
    fn decoded_trees_are_trees() {
        any_labeled_tree(5, |edges| {
            let g = QualGraph::new(5, edges.iter().copied());
            assert!(g.is_tree(), "Prüfer decode must give a tree: {edges:?}");
            false
        });
    }

    #[test]
    fn bruteforce_agrees_with_gyo_classification() {
        let cases = [
            "ab, bc, cd",
            "ab, bc, ac",
            "abc, cde, ace, afe",
            "ab, bc, cd, da",
            "bcd, acd, abd, abc",
            "ab, cd",
            "abc, ab, bc",
        ];
        for s in cases {
            let d = db(s);
            assert_eq!(
                is_tree_schema(&d),
                is_tree_schema_bruteforce(&d),
                "case {s}"
            );
        }
    }

    #[test]
    fn fig1_triangle_has_exactly_zero_qual_trees_and_chain_has_some() {
        assert!(all_qual_trees(&db("ab, bc, ac")).is_empty());
        let chains = all_qual_trees(&db("ab, bc, cd"));
        assert_eq!(chains.len(), 1, "the chain's only qual tree is itself");
    }
}
