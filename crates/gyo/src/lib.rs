//! GYO reductions and the tree/cyclic schema dichotomy.
//!
//! Implements §3.1 and §3.3 of Goodman, Shmueli & Tay (1983/84):
//!
//! * [`reduce`] — the GYO reduction `GR(D, X)` with respect to a *sacred*
//!   attribute set `X` (isolated-attribute deletion + subset elimination),
//!   with full operation traces, an incremental engine, and a naive fixpoint
//!   engine kept as a test oracle. `GR(D, X)` is unique and reduced (Maier &
//!   Ullman), which the property tests verify by randomizing operation order.
//! * [`jointree`] — join trees rebuilt from reduction traces (the
//!   constructive content of Theorem 3.1) and the subtree characterization
//!   `D' is a subtree of D  ⇔  GR(D, U(D')) ⊆ D'`.
//! * [`cores`] — Arings and Acliques, the "building blocks" of cyclic
//!   schemas, and the Lemma 3.1 witness search: `D` is cyclic iff some
//!   attribute deletion turns it into an Aring or Aclique.
//! * [`oracle`] — exponential-time brute-force deciders (qual-tree
//!   enumeration) used to cross-validate the fast algorithms on small
//!   inputs.

#![warn(missing_docs)]

pub mod cores;
pub mod jointree;
pub mod oracle;
pub mod reduce;

pub use cores::{aclique, aring, classify_core, find_cyclic_core, CoreKind, CoreWitness};
pub use jointree::{is_subtree, join_tree_from_trace};
pub use reduce::{
    classify, gr, gyo_reduce, gyo_reduce_naive, is_tree_schema, treeifying_relation, GyoStep,
    Reduction, SchemaKind,
};
