//! Arings, Acliques, and the Lemma 3.1 cyclic-core witness search.
//!
//! §3.1 of the paper: for `U = {A₁,…,Aₙ}`, `n > 2`,
//!
//! * the **Aring** of size `n` is `({A₁,A₂}, {A₂,A₃}, …, {Aₙ₋₁,Aₙ}, {Aₙ,A₁})`;
//! * the **Aclique** of size `n` is `(U−{A₁}, U−{A₂}, …, U−{Aₙ})`.
//!
//! **Lemma 3.1** (Goodman & Shmueli \[12\]): `D` is cyclic iff there exists
//! `X ⊆ U(D)` such that eliminating subset and duplicate relation schemas
//! from `(R − X | R ∈ D)` results in an Aring or an Aclique. Arings and
//! Acliques are thus the "building blocks" of cyclic schemas (Fig. 2).

use gyo_schema::{AttrId, AttrSet, DbSchema, FxHashMap};

use crate::reduce::{gr, is_tree_schema};

/// Which cyclic core a schema is (up to attribute ordering).
///
/// The size-3 Aring and size-3 Aclique are the *same* schema (the triangle
/// `(ab, bc, ca)`); [`classify_core`] reports it as `Aring(3)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// An Aring of the given size (≥ 3).
    Aring(usize),
    /// An Aclique of the given size (≥ 3).
    Aclique(usize),
}

/// A Lemma 3.1 witness: deleting `deleted` from every relation schema of the
/// original `D` and then eliminating subsets/duplicates yields `core`.
#[derive(Clone, Debug)]
pub struct CoreWitness {
    /// The attribute set `X` deleted uniformly from `D`.
    pub deleted: AttrSet,
    /// The resulting Aring or Aclique.
    pub core: DbSchema,
    /// Which core it is.
    pub kind: CoreKind,
}

/// Builds the Aring of size `attrs.len()` over the given attributes.
///
/// # Panics
///
/// Panics if fewer than 3 distinct attributes are supplied.
pub fn aring(attrs: &[AttrId]) -> DbSchema {
    let n = attrs.len();
    assert!(n >= 3, "an Aring needs at least 3 attributes");
    let distinct: std::collections::BTreeSet<_> = attrs.iter().collect();
    assert_eq!(distinct.len(), n, "Aring attributes must be distinct");
    DbSchema::new(
        (0..n)
            .map(|i| AttrSet::from_iter([attrs[i], attrs[(i + 1) % n]]))
            .collect(),
    )
}

/// Builds the Aclique of size `attrs.len()` over the given attributes.
///
/// # Panics
///
/// Panics if fewer than 3 distinct attributes are supplied.
pub fn aclique(attrs: &[AttrId]) -> DbSchema {
    let n = attrs.len();
    assert!(n >= 3, "an Aclique needs at least 3 attributes");
    let u = AttrSet::from_iter(attrs.iter().copied());
    assert_eq!(u.len(), n, "Aclique attributes must be distinct");
    DbSchema::new(
        attrs
            .iter()
            .map(|&a| {
                let mut r = u.clone();
                r.remove(a);
                r
            })
            .collect(),
    )
}

/// Recognizes Arings structurally (any schema isomorphic to an Aring):
/// `n ≥ 3` binary relation schemas over exactly `n` attributes, every
/// attribute in exactly two schemas, forming a single cycle.
pub fn is_aring(d: &DbSchema) -> bool {
    let n = d.len();
    if n < 3 {
        return false;
    }
    let u = d.attributes();
    if u.len() != n {
        return false;
    }
    let mut occurrences: FxHashMap<AttrId, usize> = FxHashMap::default();
    for r in d.iter() {
        if r.len() != 2 {
            return false;
        }
        for a in r.iter() {
            *occurrences.entry(a).or_insert(0) += 1;
        }
    }
    if occurrences.values().any(|&c| c != 2) {
        return false;
    }
    // n binary edges, every vertex of degree 2, single component ⟹ one
    // cycle through all n vertices.
    d.is_connected()
}

/// Recognizes Acliques structurally: `n ≥ 3` *distinct* relation schemas
/// over exactly `n` attributes, each schema of size `n − 1` (hence each
/// omits a distinct attribute).
pub fn is_aclique(d: &DbSchema) -> bool {
    let n = d.len();
    if n < 3 {
        return false;
    }
    let u = d.attributes();
    if u.len() != n {
        return false;
    }
    if d.iter().any(|r| r.len() != n - 1) {
        return false;
    }
    // All schemas distinct ⟹ each omits a different attribute.
    let mut seen: Vec<&AttrSet> = d.iter().collect();
    seen.sort();
    seen.windows(2).all(|w| w[0] != w[1])
}

/// Classifies `d` as an Aring or Aclique, if it is one. The triangle (size
/// 3, where the two notions coincide) is reported as `Aring(3)`.
pub fn classify_core(d: &DbSchema) -> Option<CoreKind> {
    if is_aring(d) {
        Some(CoreKind::Aring(d.len()))
    } else if is_aclique(d) {
        Some(CoreKind::Aclique(d.len()))
    } else {
        None
    }
}

/// Lemma 3.1 witness search: finds `X ⊆ U(D)` such that deleting `X` from
/// every relation schema and eliminating subsets/duplicates yields an Aring
/// or Aclique. Returns `None` iff `D` is a tree schema.
///
/// The search first shrinks `D` to its GYO residue `G = GR(D, ∅)` — any
/// witness for `G` extends to one for `D` by also deleting `U(D) − U(G)` —
/// and then enumerates subsets of `U(G)` in ascending cardinality, so the
/// returned witness deletes as few *residue* attributes as possible.
///
/// # Panics
///
/// Panics if the residue has more than `MAX_RESIDUE_ATTRS` (24) attributes;
/// the enumeration is exponential and the caller should shrink the input.
pub fn find_cyclic_core(d: &DbSchema) -> Option<CoreWitness> {
    const MAX_RESIDUE_ATTRS: usize = 24;
    if is_tree_schema(d) {
        return None;
    }
    let g = gr(d, &AttrSet::empty());
    let u_d = d.attributes();
    let u_g = g.attributes();
    let base_deleted = u_d.difference(&u_g);
    let pool: Vec<AttrId> = u_g.iter().collect();
    assert!(
        pool.len() <= MAX_RESIDUE_ATTRS,
        "cyclic-core search limited to residues with ≤ {MAX_RESIDUE_ATTRS} attributes \
         (got {})",
        pool.len()
    );
    for k in 0..=pool.len() {
        let mut found = None;
        for_each_combination(&pool, k, &mut |subset| {
            let x = AttrSet::from_iter(subset.iter().copied());
            let candidate = g.delete_attrs(&x).reduce();
            if let Some(kind) = classify_core(&candidate) {
                found = Some(CoreWitness {
                    deleted: base_deleted.union(&x),
                    core: candidate,
                    kind,
                });
                return true;
            }
            false
        });
        if found.is_some() {
            return found;
        }
    }
    unreachable!("Lemma 3.1: every cyclic schema has an Aring/Aclique witness")
}

/// Calls `f` with every `k`-combination of `pool`; stops early when `f`
/// returns `true`.
fn for_each_combination(pool: &[AttrId], k: usize, f: &mut dyn FnMut(&[AttrId]) -> bool) -> bool {
    fn rec(
        pool: &[AttrId],
        k: usize,
        start: usize,
        acc: &mut Vec<AttrId>,
        f: &mut dyn FnMut(&[AttrId]) -> bool,
    ) -> bool {
        if acc.len() == k {
            return f(acc);
        }
        let remaining = k - acc.len();
        for i in start..=pool.len().saturating_sub(remaining) {
            acc.push(pool[i]);
            if rec(pool, k, i + 1, acc, f) {
                acc.pop();
                return true;
            }
            acc.pop();
        }
        false
    }
    rec(pool, k, 0, &mut Vec::with_capacity(k), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::classify;
    use crate::reduce::SchemaKind;
    use gyo_schema::Catalog;

    fn db(s: &str) -> (DbSchema, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(s, &mut cat).unwrap();
        (d, cat)
    }

    fn ids(n: u32) -> Vec<AttrId> {
        (0..n).map(AttrId).collect()
    }

    #[test]
    fn fig2a_aring_of_size_4() {
        let (d, _) = db("ab, bc, cd, da");
        assert!(is_aring(&d));
        assert!(!is_aclique(&d));
        assert_eq!(classify_core(&d), Some(CoreKind::Aring(4)));
        assert_eq!(
            aring(&ids(4)),
            DbSchema::parse("ab, bc, cd, da", &mut Catalog::alphabetic()).unwrap()
        );
    }

    #[test]
    fn fig2b_aclique_of_size_4() {
        let (d, _) = db("bcd, acd, abd, abc");
        assert!(is_aclique(&d));
        assert!(!is_aring(&d));
        assert_eq!(classify_core(&d), Some(CoreKind::Aclique(4)));
        assert_eq!(
            aclique(&ids(4)),
            DbSchema::parse("bcd, acd, abd, abc", &mut Catalog::alphabetic()).unwrap()
        );
    }

    #[test]
    fn triangle_is_both_ring_and_clique() {
        let (d, _) = db("ab, bc, ac");
        assert!(is_aring(&d));
        assert!(is_aclique(&d));
        assert_eq!(classify_core(&d), Some(CoreKind::Aring(3)));
    }

    #[test]
    fn generated_cores_are_cyclic() {
        for n in 3..8 {
            assert_eq!(classify(&aring(&ids(n))), SchemaKind::Cyclic, "Aring {n}");
            assert_eq!(
                classify(&aclique(&ids(n))),
                SchemaKind::Cyclic,
                "Aclique {n}"
            );
        }
    }

    #[test]
    fn recognizers_reject_near_misses() {
        // A broken ring (chain) is not an Aring.
        assert!(!is_aring(&db("ab, bc, cd").0));
        // Two disjoint triangles: 6 rels, 6 attrs, degrees right, but not
        // connected.
        let (d, _) = db("ab, bc, ca, de, ef, fd");
        assert!(!is_aring(&d));
        // An Aclique with a duplicated face is not an Aclique.
        assert!(!is_aclique(&db("bcd, bcd, abd, abc").0));
        // Wrong arity.
        assert!(!is_aclique(&db("ab, cd, ac").0));
        // The empty and tiny schemas.
        assert!(classify_core(&DbSchema::empty()).is_none());
        assert!(classify_core(&db("ab, ba").0).is_none());
    }

    #[test]
    fn witness_for_a_core_is_trivial() {
        let (d, _) = db("ab, bc, cd, da");
        let w = find_cyclic_core(&d).expect("cyclic");
        assert!(w.deleted.is_empty());
        assert_eq!(w.kind, CoreKind::Aring(4));
        assert_eq!(w.core, d);
    }

    #[test]
    fn witness_for_tree_schema_is_none() {
        assert!(find_cyclic_core(&db("ab, bc, cd").0).is_none());
        assert!(find_cyclic_core(&DbSchema::empty()).is_none());
    }

    #[test]
    fn fig2c_style_schema_has_both_ring_and_clique_witnesses() {
        // A schema in the spirit of Fig. 2c: deleting abg reveals an Aring
        // on cdef, deleting efg reveals the Aclique on abcd.
        let (d, mut cat) = db("abce, bef, dif, cda, dab, bcd, cg");
        assert_eq!(classify(&d), SchemaKind::Cyclic);

        // Direct check of the two hand-picked witnesses.
        let x_ring = AttrSet::parse("abgi", &mut cat).unwrap();
        let ring = d.delete_attrs(&x_ring).reduce();
        assert_eq!(classify_core(&ring), Some(CoreKind::Aring(4)), "{ring:?}");

        let x_clique = AttrSet::parse("efgi", &mut cat).unwrap();
        let clique = d.delete_attrs(&x_clique).reduce();
        assert_eq!(
            classify_core(&clique),
            Some(CoreKind::Aclique(4)),
            "{clique:?}"
        );

        // And the search finds some witness on its own.
        let w = find_cyclic_core(&d).expect("cyclic");
        let check = d.delete_attrs(&w.deleted).reduce();
        assert_eq!(classify_core(&check), Some(w.kind));
    }

    #[test]
    fn witness_deletion_verifies_on_original_schema() {
        // Lemma 3.1 (⇐): the witness applies to D itself, not just GR(D).
        let (d, _) = db("abc, bcd, cde, dea, eab");
        let w = find_cyclic_core(&d).expect("5-cycle of triples is cyclic");
        let candidate = d.delete_attrs(&w.deleted).reduce();
        assert_eq!(classify_core(&candidate), Some(w.kind));
        assert_eq!(candidate, w.core);
    }

    #[test]
    fn recognizers_agree_with_general_isomorphism() {
        use gyo_schema::are_isomorphic;
        // is_aring(d) ⟺ d ≅ aring(n); same for Acliques.
        let (ring_renamed, _) = db("xy, yz, zw, wx");
        assert!(is_aring(&ring_renamed));
        assert!(are_isomorphic(&ring_renamed, &aring(&ids(4))));

        let (clique_renamed, _) = db("xyz, xyw, xzw, yzw");
        assert!(is_aclique(&clique_renamed));
        assert!(are_isomorphic(&clique_renamed, &aclique(&ids(4))));

        // negative: a chain is isomorphic to neither
        let (chain, _) = db("ab, bc, cd");
        assert!(!are_isomorphic(&chain, &aring(&ids(3))));
    }

    #[test]
    fn combination_enumeration_visits_all_subsets() {
        let pool = ids(5);
        let mut count = 0;
        for_each_combination(&pool, 3, &mut |c| {
            assert_eq!(c.len(), 3);
            count += 1;
            false
        });
        assert_eq!(count, 10);
    }
}
