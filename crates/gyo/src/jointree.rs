//! Join trees from GYO traces, and the subtree characterization of
//! Theorem 3.1.
//!
//! Theorem 3.1 links GYO reductions with qual trees:
//!
//! * the subset-elimination steps of a *total* reduction (each eliminated
//!   relation paired with its witness) form the edge set of a qual tree for
//!   `D` — the constructive half, implemented by [`join_tree_from_trace`];
//! * for a tree schema `D` and `D' ⊆ D`, the nodes of `D'` induce a
//!   connected subgraph of *some* qual tree for `D` (i.e. `D'` is a
//!   **subtree** of `D`) iff the GYO reduction of `D` with the attributes of
//!   `D'` held sacred eliminates everything except (copies of) `D'`'s
//!   relations: `GR(D, U(D')) ⊆ D'` — implemented by [`is_subtree`].

use gyo_schema::{DbSchema, JoinTree, QualGraph};

use crate::reduce::{gyo_reduce, GyoStep, Reduction};

/// Rebuilds a qual tree from the trace of a **total** GYO reduction: each
/// `RemoveSubset { removed, witness }` step contributes the tree edge
/// `{removed, witness}`.
///
/// Returns `None` if the reduction was not total (the schema is cyclic) or —
/// which the library's invariants rule out, but the validator re-checks —
/// the collected edges fail to form a qual tree.
pub fn join_tree_from_trace(d: &DbSchema, red: &Reduction) -> Option<JoinTree> {
    if !red.is_total() {
        return None;
    }
    let edges: Vec<(usize, usize)> = red
        .trace
        .iter()
        .filter_map(|s| match *s {
            GyoStep::RemoveSubset { removed, witness } => Some((removed, witness)),
            GyoStep::DeleteAttr { .. } => None,
        })
        .collect();
    JoinTree::try_new(QualGraph::new(d.len(), edges), d)
}

/// Computes a join tree for `d` directly (GYO-reduce, then rebuild).
/// `None` iff `d` is cyclic.
pub fn join_tree(d: &DbSchema) -> Option<JoinTree> {
    let red = gyo_reduce(d, &gyo_schema::AttrSet::empty());
    join_tree_from_trace(d, &red)
}

/// Theorem 3.1(ii): for a **tree schema** `d`, decides whether the relation
/// schemas at `nodes` form a *subtree* of `d` — i.e. whether some qual tree
/// for `d` exists in which `nodes` induce a connected subgraph.
///
/// Criterion: every relation of `GR(D, U(D'))` occurs in `D'`.
///
/// Returns `false` when `d` is cyclic (no qual tree exists at all).
///
/// # Panics
///
/// Panics if any index in `nodes` is out of range.
pub fn is_subtree(d: &DbSchema, nodes: &[usize]) -> bool {
    if !crate::reduce::is_tree_schema(d) {
        return false;
    }
    if nodes.is_empty() {
        // The empty node set induces the empty subgraph, which is trivially
        // connected; GR(D, ∅) would collapse to (∅) and the generic check
        // below would wrongly demand ∅ ∈ D'.
        return true;
    }
    let d_prime = d.project_rels(nodes);
    let g = gyo_reduce(d, &d_prime.attributes()).result;
    let contained = g.iter().all(|r| d_prime.contains_rel(r));
    contained
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use gyo_schema::{AttrSet, Catalog};

    fn db(s: &str) -> DbSchema {
        let mut cat = Catalog::alphabetic();
        DbSchema::parse(s, &mut cat).unwrap()
    }

    #[test]
    fn trace_tree_for_chain() {
        let d = db("ab, bc, cd");
        let t = join_tree(&d).expect("chain is a tree schema");
        assert_eq!(t.node_count(), 3);
        assert!(t.attribute_connectivity_holds(&d));
    }

    #[test]
    fn trace_tree_for_fig1_row3() {
        let d = db("abc, cde, ace, afe");
        let t = join_tree(&d).expect("tree schema");
        assert!(t.graph().is_valid_for(&d));
    }

    #[test]
    fn no_tree_for_cyclic() {
        assert!(join_tree(&db("ab, bc, ac")).is_none());
        assert!(join_tree(&db("ab, bc, cd, da")).is_none());
    }

    #[test]
    fn trace_tree_with_duplicates_and_empties() {
        let d = DbSchema::new(vec![
            AttrSet::from_raw(&[0, 1]),
            AttrSet::from_raw(&[0, 1]),
            AttrSet::empty(),
        ]);
        let t = join_tree(&d).expect("duplicates + empty rel is a tree schema");
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn subtree_section_5_1_example() {
        // D = (abc, ab, bc): D' = (ab, bc) is NOT a subtree (paper §5.1).
        let d = db("abc, ab, bc");
        assert!(!is_subtree(&d, &[1, 2]));
        assert!(is_subtree(&d, &[0, 1]));
        assert!(is_subtree(&d, &[0]));
        assert!(is_subtree(&d, &[1]));
        assert!(is_subtree(&d, &[0, 1, 2]));
    }

    #[test]
    fn subtree_matches_bruteforce_on_small_trees() {
        let cases = ["ab, bc, cd", "abc, cde, ace, afe", "abc, ab, bc", "ab, cd"];
        for s in cases {
            let d = db(s);
            let n = d.len();
            // every subset of nodes
            for mask in 0u32..(1 << n) {
                let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                assert_eq!(
                    is_subtree(&d, &nodes),
                    oracle::is_subtree_bruteforce(&d, &nodes),
                    "case {s}, nodes {nodes:?}"
                );
            }
        }
    }

    #[test]
    fn subtree_of_cyclic_schema_is_false() {
        let d = db("ab, bc, ac");
        assert!(!is_subtree(&d, &[0]));
    }

    #[test]
    fn empty_node_set_is_a_subtree_of_any_tree_schema() {
        assert!(is_subtree(&db("ab, bc"), &[]));
    }
}
