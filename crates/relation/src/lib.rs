//! A small in-memory relational engine — the execution substrate for the
//! paper's queries.
//!
//! The paper reasons about *universal relation (UR) databases*: collections
//! `D = {π_R(I) | R ∈ D}` of projections of a single universal relation `I`,
//! queried with natural joins (`⋈`), projections (`π_X`) and semijoins
//! (`⋉`, where `R ⋉ S ≝ π_R(R ⋈ S)`). This crate implements exactly that
//! algebra:
//!
//! * [`Relation`] — a set of tuples over an attribute set, with `⋈`, `π`,
//!   `⋉`, and set operations;
//! * [`DbState`] — a database state: one relation per relation schema of a
//!   [`DbSchema`](gyo_schema::DbSchema);
//! * [`universal`] — universal relations, the join-of-projections operator
//!   `m_D` (the chase for join dependencies), and join-dependency
//!   satisfaction `I ⊨ ⋈D`;
//! * [`exec`] — precompiled semijoin steps ([`SemijoinStep`]) and the
//!   batched [`semijoin_program`] executor used by the cached full-reducer
//!   engine.
//!
//! # Flat row-major storage
//!
//! Every [`Relation`] keeps its tuples in **one flat `Vec<u64>` buffer**
//! with stride = arity: row `i` lives at `data[i·arity..(i+1)·arity]` and
//! is read as a `&[u64]` slice ([`Relation::row`], [`Relation::rows`],
//! [`Relation::data`]). Normalization (sort + dedup) runs directly on the
//! flat buffer with stride-aware comparison, and every operator —
//! projection, hash join, semijoin, union, the batched mask executor —
//! both reads and writes flat buffers, so **no operator allocates per
//! row**. The buffer is `Arc`-shared: cloning a relation is O(1), and
//! clones share the storage *and* the lazily built derivation caches
//! (column positions, hash-join build tables, packed key columns).
//!
//! Nested tuple vectors appear in exactly two places, both boundaries: the
//! ergonomic constructor [`Relation::new`] (input conversion) and the test
//! shim [`Relation::to_vecs`] (assertion output). Use
//! [`Relation::from_row_major`] everywhere performance matters; the nested
//! forms are acceptable only in tests, doc examples, and one-off input
//! conversion — never inside operators, engines, or generators.
//!
//! The hot paths are cache-assisted: every [`Relation`] lazily memoizes, per
//! key attribute set, its column positions and its hash-join build table, so
//! repeated joins and semijoins against the same relation (or clones of it)
//! skip the rebuild.
//!
//! Values are plain `u64`; the library's semantic oracles only need equality
//! on values, never arithmetic or ordering semantics.

#![warn(missing_docs)]

pub mod database;
pub mod exec;
pub mod relation;
pub mod universal;

pub use database::DbState;
pub use exec::{semijoin_program, SemijoinStep};
pub use relation::Relation;
pub use universal::{join_of_projections, satisfies_jd};
