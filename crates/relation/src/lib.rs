//! A small in-memory relational engine — the execution substrate for the
//! paper's queries.
//!
//! The paper reasons about *universal relation (UR) databases*: collections
//! `D = {π_R(I) | R ∈ D}` of projections of a single universal relation `I`,
//! queried with natural joins (`⋈`), projections (`π_X`) and semijoins
//! (`⋉`, where `R ⋉ S ≝ π_R(R ⋈ S)`). This crate implements exactly that
//! algebra:
//!
//! * [`Relation`] — a set of tuples over an attribute set, with `⋈`, `π`,
//!   `⋉`, and set operations;
//! * [`DbState`] — a database state: one relation per relation schema of a
//!   [`DbSchema`](gyo_schema::DbSchema);
//! * [`universal`] — universal relations, the join-of-projections operator
//!   `m_D` (the chase for join dependencies), and join-dependency
//!   satisfaction `I ⊨ ⋈D`;
//! * [`exec`] — precompiled semijoin steps ([`SemijoinStep`]) and the
//!   selection-vector [`semijoin_program`] executor used by the cached
//!   full-reducer engine;
//! * [`kernels`] — the columnar kernel layer: gather projection, chunked
//!   branchless key-probe kernels over [`SelVec`] selection vectors, the
//!   generation-stamped [`kernels::StampTable`], and packed row sorting.
//!
//! # Flat row-major storage
//!
//! Every [`Relation`] keeps its tuples in **one flat `Vec<u64>` buffer**
//! with stride = arity: row `i` lives at `data[i·arity..(i+1)·arity]` and
//! is read as a `&[u64]` slice ([`Relation::row`], [`Relation::rows`],
//! [`Relation::data`]). Normalization (sort + dedup) runs directly on the
//! flat buffer with stride-aware comparison, and every operator —
//! projection, hash join, semijoin, union, the batched mask executor —
//! both reads and writes flat buffers, so **no operator allocates per
//! row**. The buffer is `Arc`-shared: cloning a relation is O(1), and
//! clones share the storage *and* the lazily built derivation caches
//! (column positions, hash-join build tables, packed key columns).
//!
//! Nested tuple vectors appear in exactly two places, both boundaries: the
//! ergonomic constructor [`Relation::new`] (input conversion) and the test
//! shim [`Relation::to_vecs`] (assertion output). Use
//! [`Relation::from_row_major`] everywhere performance matters; the nested
//! forms are acceptable only in tests, doc examples, and one-off input
//! conversion — never inside operators, engines, or generators.
//!
//! # Columnar kernels and the SelVec execution model
//!
//! On top of the flat layout sits the [`kernels`] layer: projection moves
//! values in column-strided blocks ([`kernels::ColumnarView::gather_into`]),
//! join outputs are assembled column-at-a-time over a matched-pair list,
//! and semijoin filtering — both the one-shot operator and whole compiled
//! programs — runs through reusable [`SelVec`] **selection vectors**
//! (`u32` survivor indices plus a generation-stamped bitset) probed in
//! fixed-size chunks with branchless mask accumulation. The
//! [`semijoin_program`] executor threads one `SelVec` per relation slot
//! through an entire full-reducer program: no intermediate relation is
//! materialized and, with a caller-owned [`exec::ExecScratch`]
//! ([`exec::semijoin_program_with`]), no step allocates after warm-up.
//!
//! Row-at-a-time execution remains in exactly the places where a column
//! decomposition has nothing to offer: hash-*building* (`KeyIndex`
//! construction walks rows once), the probe half of `natural_join`
//! (match fan-out is data-dependent), normalization of rows whose values
//! are too wide to pack into `u64`/`u128` scalars
//! ([`kernels::sort_dedup_packed`] falls back to an index-permutation
//! sort), and the `Vec<Vec<u64>>` boundary shims.
//!
//! The hot paths are cache-assisted: every [`Relation`] lazily memoizes, per
//! key attribute set, its column positions and its hash-join build table, so
//! repeated joins and semijoins against the same relation (or clones of it)
//! skip the rebuild.
//!
//! Values are plain `u64`; the library's semantic oracles only need equality
//! on values, never arithmetic or ordering semantics.

#![warn(missing_docs)]

pub mod database;
pub mod exec;
pub mod kernels;
pub mod relation;
pub mod universal;

pub use database::DbState;
pub use exec::{semijoin_program, semijoin_program_with, ExecScratch, SemijoinStep};
pub use kernels::{ColumnarView, SelVec};
pub use relation::Relation;
pub use universal::{join_of_projections, satisfies_jd};
