//! A small in-memory relational engine — the execution substrate for the
//! paper's queries.
//!
//! The paper reasons about *universal relation (UR) databases*: collections
//! `D = {π_R(I) | R ∈ D}` of projections of a single universal relation `I`,
//! queried with natural joins (`⋈`), projections (`π_X`) and semijoins
//! (`⋉`, where `R ⋉ S ≝ π_R(R ⋈ S)`). This crate implements exactly that
//! algebra:
//!
//! * [`Relation`] — a set of tuples over an attribute set, with `⋈`, `π`,
//!   `⋉`, and set operations;
//! * [`DbState`] — a database state: one relation per relation schema of a
//!   [`DbSchema`](gyo_schema::DbSchema);
//! * [`universal`] — universal relations, the join-of-projections operator
//!   `m_D` (the chase for join dependencies), and join-dependency
//!   satisfaction `I ⊨ ⋈D`;
//! * [`exec`] — precompiled semijoin steps ([`SemijoinStep`]) and the
//!   batched [`semijoin_program`] executor used by the cached full-reducer
//!   engine.
//!
//! The hot paths are cache-assisted: every [`Relation`] lazily memoizes, per
//! key attribute set, its column positions and its hash-join build table, so
//! repeated joins and semijoins against the same relation (or clones of it)
//! skip the rebuild.
//!
//! Values are plain `u64`; the library's semantic oracles only need equality
//! on values, never arithmetic or ordering semantics.

#![warn(missing_docs)]

pub mod database;
pub mod exec;
pub mod relation;
pub mod universal;

pub use database::DbState;
pub use exec::{semijoin_program, SemijoinStep};
pub use relation::Relation;
pub use universal::{join_of_projections, satisfies_jd};
