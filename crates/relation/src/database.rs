//! Database states: one relation state per relation schema.

use gyo_schema::{AttrSet, DbSchema};

use crate::relation::Relation;

/// A database state for a [`DbSchema`]: the `i`-th relation state belongs to
/// the `i`-th relation schema (§2 of the paper).
///
/// UR (universal-relation) database states are built with
/// [`DbState::from_universal`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbState {
    rels: Vec<Relation>,
}

impl DbState {
    /// Wraps relation states, checking that each matches its schema.
    ///
    /// # Panics
    ///
    /// Panics if the counts differ or some relation's attribute set differs
    /// from its schema.
    pub fn new(schema: &DbSchema, rels: Vec<Relation>) -> Self {
        assert_eq!(schema.len(), rels.len(), "state/schema length mismatch");
        for (rs, r) in schema.iter().zip(&rels) {
            assert_eq!(rs, r.attrs(), "relation state schema mismatch");
        }
        Self { rels }
    }

    /// The UR database `{π_R(I) | R ∈ D}` (§2).
    ///
    /// # Panics
    ///
    /// Panics if some relation schema is not covered by `universal`'s
    /// attributes.
    pub fn from_universal(universal: &Relation, schema: &DbSchema) -> Self {
        let rels = schema.iter().map(|r| universal.project(r)).collect();
        Self { rels }
    }

    /// The `i`-th relation state.
    #[inline]
    pub fn rel(&self, i: usize) -> &Relation {
        &self.rels[i]
    }

    /// Mutable access (used by program executors that reduce states in
    /// place).
    #[inline]
    pub fn rel_mut(&mut self, i: usize) -> &mut Relation {
        &mut self.rels[i]
    }

    /// All relation states.
    #[inline]
    pub fn rels(&self) -> &[Relation] {
        &self.rels
    }

    /// Number of relations.
    #[inline]
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the state holds no relations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// `⋈_{R∈D} R` — joins every relation (left-to-right; the result is
    /// order-independent). The empty database joins to the identity
    /// relation `{()}`.
    pub fn join_all(&self) -> Relation {
        let mut acc = Relation::identity();
        for r in &self.rels {
            acc = acc.natural_join(r);
        }
        acc
    }

    /// Evaluates the natural-join query `(D, X)`: `π_X(⋈_{R∈D} R)`.
    ///
    /// # Panics
    ///
    /// Panics if `x ⊄ U(D)` (for a nonempty join result).
    pub fn eval_join_query(&self, x: &AttrSet) -> Relation {
        let joined = self.join_all();
        if joined.is_empty() {
            return Relation::empty(x.clone());
        }
        joined.project(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;

    fn setup() -> (DbSchema, Catalog, Relation) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        let u = AttrSet::parse("abc", &mut cat).unwrap();
        let i = Relation::new(
            u,
            vec![vec![1, 10, 100], vec![2, 20, 200], vec![3, 20, 201]],
        );
        (d, cat, i)
    }

    #[test]
    fn from_universal_projects() {
        let (d, _, i) = setup();
        let state = DbState::from_universal(&i, &d);
        assert_eq!(state.rel(0).len(), 3); // (1,10), (2,20), (3,20)
        assert_eq!(state.rel(1).len(), 3); // (10,100), (20,200), (20,201)
    }

    #[test]
    fn join_all_recovers_more_than_universal() {
        // The classic fact: I ⊆ ⋈ π_R(I), possibly strictly.
        let (d, _, i) = setup();
        let state = DbState::from_universal(&i, &d);
        let joined = state.join_all();
        assert!(i.is_subset(&joined));
        // b=20 pairs with both c=200 and c=201 for BOTH a=2 and a=3:
        assert_eq!(joined.len(), 5);
    }

    #[test]
    fn eval_join_query_projects() {
        let (d, mut cat, i) = setup();
        let state = DbState::from_universal(&i, &d);
        let x = AttrSet::parse("ac", &mut cat).unwrap();
        let q = state.eval_join_query(&x);
        assert_eq!(q.attrs(), &x);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn empty_database_state() {
        let d = DbSchema::empty();
        let state = DbState::new(&d, vec![]);
        assert_eq!(state.join_all(), Relation::identity());
        assert_eq!(state.eval_join_query(&AttrSet::empty()).len(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn schema_state_mismatch_panics() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab", &mut cat).unwrap();
        DbState::new(&d, vec![]);
    }

    #[test]
    fn empty_relation_empties_the_join() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        let ab = AttrSet::parse("ab", &mut cat).unwrap();
        let bc = AttrSet::parse("bc", &mut cat).unwrap();
        let state = DbState::new(
            &d,
            vec![Relation::new(ab, vec![vec![1, 2]]), Relation::empty(bc)],
        );
        assert!(state.join_all().is_empty());
        let x = AttrSet::parse("a", &mut cat).unwrap();
        assert!(state.eval_join_query(&x).is_empty());
    }
}
