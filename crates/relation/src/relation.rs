//! Relations (sets of tuples) and the natural-join algebra.

use std::fmt;

use gyo_schema::{AttrId, AttrSet, Catalog, FxHashMap};

/// A relation state: a *set* of tuples over an attribute set.
///
/// Column order follows the sorted order of [`AttrSet`] ids; tuples are kept
/// sorted and deduplicated, so equality is set equality and all operations
/// are deterministic.
///
/// The degenerate relations over the empty attribute set follow standard
/// convention: `{}` (the empty relation, a join annihilator) and `{()}` (the
/// single empty tuple, the join identity).
///
/// # Examples
///
/// ```
/// use gyo_schema::{AttrSet, Catalog};
/// use gyo_relation::Relation;
///
/// let mut cat = Catalog::alphabetic();
/// let ab = AttrSet::parse("ab", &mut cat).unwrap();
/// let bc = AttrSet::parse("bc", &mut cat).unwrap();
/// let r = Relation::new(ab, vec![vec![1, 10], vec![2, 20]]);
/// let s = Relation::new(bc, vec![vec![10, 100], vec![30, 300]]);
/// let j = r.natural_join(&s);
/// assert_eq!(j.len(), 1); // only b=10 matches
/// assert_eq!(j.tuples()[0], vec![1, 10, 100]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    attrs: AttrSet,
    tuples: Vec<Vec<u64>>,
}

impl Relation {
    /// Creates a relation, validating arity and normalizing (sort + dedup).
    ///
    /// # Panics
    ///
    /// Panics if any tuple's arity differs from `attrs.len()`.
    pub fn new(attrs: AttrSet, mut tuples: Vec<Vec<u64>>) -> Self {
        for t in &tuples {
            assert_eq!(
                t.len(),
                attrs.len(),
                "tuple arity {} does not match schema arity {}",
                t.len(),
                attrs.len()
            );
        }
        tuples.sort_unstable();
        tuples.dedup();
        Self { attrs, tuples }
    }

    /// The empty relation over `attrs` (no tuples).
    pub fn empty(attrs: AttrSet) -> Self {
        Self {
            attrs,
            tuples: Vec::new(),
        }
    }

    /// The join identity: the relation over `∅` holding the single empty
    /// tuple.
    pub fn identity() -> Self {
        Self {
            attrs: AttrSet::empty(),
            tuples: vec![Vec::new()],
        }
    }

    /// The relation's attribute set.
    #[inline]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The normalized (sorted, deduplicated) tuples.
    #[inline]
    pub fn tuples(&self) -> &[Vec<u64>] {
        &self.tuples
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test (`tuple` in column order).
    pub fn contains(&self, tuple: &[u64]) -> bool {
        self.tuples
            .binary_search_by(|t| t.as_slice().cmp(tuple))
            .is_ok()
    }

    /// Positions (column indices) of `attrs` within this relation's columns.
    ///
    /// # Panics
    ///
    /// Panics if some attribute is not part of this relation.
    fn positions_of(&self, attrs: &AttrSet) -> Vec<usize> {
        attrs
            .iter()
            .map(|a| {
                self.attrs
                    .as_slice()
                    .binary_search(&a)
                    .expect("attribute not in relation schema")
            })
            .collect()
    }

    /// Projection `π_X(self)`.
    ///
    /// # Panics
    ///
    /// Panics if `x ⊄ attrs`; the paper always projects onto subsets.
    pub fn project(&self, x: &AttrSet) -> Relation {
        assert!(
            x.is_subset(&self.attrs),
            "projection target must be a subset of the relation schema"
        );
        if *x == self.attrs {
            return self.clone();
        }
        let pos = self.positions_of(x);
        let mut tuples: Vec<Vec<u64>> = self
            .tuples
            .iter()
            .map(|t| pos.iter().map(|&p| t[p]).collect())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        Relation {
            attrs: x.clone(),
            tuples,
        }
    }

    /// Natural join `self ⋈ other` (a cross product when the schemas are
    /// disjoint). Hash join on the shared attributes, building on the
    /// smaller side.
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let shared = build.attrs.intersect(&probe.attrs);
        let out_attrs = build.attrs.union(&probe.attrs);

        let build_key = build.positions_of(&shared);
        let probe_key = probe.positions_of(&shared);
        // Output columns: for each output attribute, where to copy it from.
        // Prefer the probe side so probe tuples copy contiguously when the
        // schemas are disjoint.
        enum Src {
            Build(usize),
            Probe(usize),
        }
        let srcs: Vec<Src> = out_attrs
            .iter()
            .map(|a| match probe.attrs.as_slice().binary_search(&a) {
                Ok(p) => Src::Probe(p),
                Err(_) => Src::Build(
                    build
                        .attrs
                        .as_slice()
                        .binary_search(&a)
                        .expect("output attr comes from one side"),
                ),
            })
            .collect();

        let mut table: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
        for (i, t) in build.tuples.iter().enumerate() {
            let key: Vec<u64> = build_key.iter().map(|&p| t[p]).collect();
            table.entry(key).or_default().push(i);
        }

        let mut tuples = Vec::new();
        let mut key = Vec::with_capacity(probe_key.len());
        for pt in &probe.tuples {
            key.clear();
            key.extend(probe_key.iter().map(|&p| pt[p]));
            if let Some(matches) = table.get(&key) {
                for &bi in matches {
                    let bt = &build.tuples[bi];
                    let out: Vec<u64> = srcs
                        .iter()
                        .map(|s| match *s {
                            Src::Build(p) => bt[p],
                            Src::Probe(p) => pt[p],
                        })
                        .collect();
                    tuples.push(out);
                }
            }
        }
        tuples.sort_unstable();
        tuples.dedup();
        Relation {
            attrs: out_attrs,
            tuples,
        }
    }

    /// Natural semijoin `self ⋉ other = π_self(self ⋈ other)`, computed
    /// directly by filtering (no join materialization).
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared = self.attrs.intersect(&other.attrs);
        let my_key = self.positions_of(&shared);
        let other_key = other.positions_of(&shared);
        let mut keys: FxHashMap<Vec<u64>, ()> = FxHashMap::default();
        for t in &other.tuples {
            keys.insert(other_key.iter().map(|&p| t[p]).collect(), ());
        }
        let tuples: Vec<Vec<u64>> = self
            .tuples
            .iter()
            .filter(|t| {
                let key: Vec<u64> = my_key.iter().map(|&p| t[p]).collect();
                keys.contains_key(&key)
            })
            .cloned()
            .collect();
        // already sorted and unique: filtering preserves both
        Relation {
            attrs: self.attrs.clone(),
            tuples,
        }
    }

    /// Set union of two relations over the same attribute set.
    ///
    /// # Panics
    ///
    /// Panics if the attribute sets differ.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.attrs, other.attrs, "union requires equal schemas");
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        tuples.sort_unstable();
        tuples.dedup();
        Relation {
            attrs: self.attrs.clone(),
            tuples,
        }
    }

    /// Whether `self ⊆ other` as tuple sets (same attribute set required).
    pub fn is_subset(&self, other: &Relation) -> bool {
        assert_eq!(self.attrs, other.attrs, "comparison requires equal schemas");
        self.tuples.iter().all(|t| other.contains(t))
    }

    /// Renders a small relation as an ASCII table for diagnostics.
    pub fn to_table(&self, cat: &Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let header: Vec<&str> = self.attrs.iter().map(|a| cat.name(a)).collect();
        writeln!(out, "| {} |", header.join(" | ")).expect("write to string");
        for t in &self.tuples {
            let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            writeln!(out, "| {} |", row.join(" | ")).expect("write to string");
        }
        out
    }

    /// The attribute ids in column order (sorted).
    pub fn columns(&self) -> &[AttrId] {
        self.attrs.as_slice()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation({:?}, {} tuples)",
            self.attrs,
            self.tuples.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(raw: &[u32]) -> AttrSet {
        AttrSet::from_raw(raw)
    }

    #[test]
    fn construction_normalizes() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![2, 2], vec![1, 1], vec![2, 2]]);
        assert_eq!(r.tuples(), &[vec![1, 1], vec![2, 2]]);
        assert!(r.contains(&[2, 2]));
        assert!(!r.contains(&[3, 3]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Relation::new(attrs(&[0, 1]), vec![vec![1]]);
    }

    #[test]
    fn projection_dedups() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![1, 20], vec![2, 10]]);
        let p = r.project(&attrs(&[0]));
        assert_eq!(p.tuples(), &[vec![1], vec![2]]);
    }

    #[test]
    fn projection_onto_empty_set() {
        let r = Relation::new(attrs(&[0]), vec![vec![7]]);
        let p = r.project(&AttrSet::empty());
        assert_eq!(p, Relation::identity());
        let e = Relation::empty(attrs(&[0]));
        assert!(e.project(&AttrSet::empty()).is_empty());
    }

    #[test]
    fn join_on_shared_attribute() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![10, 100], vec![10, 101]]);
        let j = r.natural_join(&s);
        assert_eq!(j.attrs(), &attrs(&[0, 1, 2]));
        assert_eq!(j.tuples(), &[vec![1, 10, 100], vec![1, 10, 101]]);
    }

    #[test]
    fn join_is_commutative() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20], vec![3, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![20, 9], vec![10, 8]]);
        assert_eq!(r.natural_join(&s), s.natural_join(&r));
    }

    #[test]
    fn disjoint_join_is_cross_product() {
        let r = Relation::new(attrs(&[0]), vec![vec![1], vec![2]]);
        let s = Relation::new(attrs(&[1]), vec![vec![10], vec![20]]);
        let j = r.natural_join(&s);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_identities() {
        let r = Relation::new(attrs(&[0]), vec![vec![1], vec![2]]);
        assert_eq!(r.natural_join(&Relation::identity()), r);
        let annihilator = Relation::empty(AttrSet::empty());
        assert!(r.natural_join(&annihilator).is_empty());
    }

    #[test]
    fn self_join_is_idempotent() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        assert_eq!(r.natural_join(&r), r);
    }

    #[test]
    fn semijoin_filters_left_side() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![10, 5]]);
        let sj = r.semijoin(&s);
        assert_eq!(sj.attrs(), r.attrs());
        assert_eq!(sj.tuples(), &[vec![1, 10]]);
        // definition check: R ⋉ S = π_R(R ⋈ S)
        assert_eq!(sj, r.natural_join(&s).project(r.attrs()));
    }

    #[test]
    fn semijoin_with_disjoint_nonempty_relation_is_identity() {
        let r = Relation::new(attrs(&[0]), vec![vec![1]]);
        let s = Relation::new(attrs(&[5]), vec![vec![9]]);
        assert_eq!(r.semijoin(&s), r);
        // ... and with an empty disjoint relation it empties out.
        let nothing = Relation::empty(attrs(&[5]));
        assert!(r.semijoin(&nothing).is_empty());
    }

    #[test]
    fn union_and_subset() {
        let r = Relation::new(attrs(&[0]), vec![vec![1]]);
        let s = Relation::new(attrs(&[0]), vec![vec![2]]);
        let u = r.union(&s);
        assert_eq!(u.len(), 2);
        assert!(r.is_subset(&u));
        assert!(!u.is_subset(&r));
    }

    #[test]
    fn table_rendering() {
        let mut cat = Catalog::alphabetic();
        let ab = AttrSet::parse("ab", &mut cat).unwrap();
        let r = Relation::new(ab, vec![vec![1, 2]]);
        let t = r.to_table(&cat);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
