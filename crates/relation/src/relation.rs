//! Relations (sets of tuples) and the natural-join algebra.
//!
//! # Storage layout
//!
//! A [`Relation`] stores its tuples in a **single flat row-major buffer**:
//! one `Vec<u64>` holding `len · arity` values, where row `i` occupies
//! `data[i·arity .. (i+1)·arity]` (the stride is the arity). There is no
//! per-tuple allocation anywhere on the operator paths — rows are read as
//! `&[u64]` slices straight out of the buffer ([`Relation::row`],
//! [`Relation::rows`]), and `project`/`natural_join`/`semijoin`/`union`
//! write their outputs into flat buffers, pre-sized wherever the output
//! size is bounded up front (joins grow theirs — the output size is not
//! knowable in advance).
//!
//! The buffer is normalized (rows strictly increasing in lexicographic
//! order, duplicates removed) at construction, so equality is set equality
//! and binary search works on row indices. Normalization itself is
//! stride-aware and allocation-free per row: width-1 and width-2 rows sort
//! as packed scalars, wider rows sort through an index permutation.
//!
//! The buffer sits behind an `Arc`, so cloning a relation is O(1) and all
//! clones share both the tuple storage and the lazily built derivation
//! caches (column positions, hash-join build tables, flat key columns).
//!
//! The only nested-vector conversions left are **boundaries**:
//! [`Relation::new`] accepts nested vectors for ergonomic construction, and
//! [`Relation::to_vecs`] materializes them for test assertions. Neither is
//! acceptable on a hot path — operators and engines must stay on the flat
//! buffer.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use gyo_schema::{AttrId, AttrSet, Catalog, FxHashMap};

use crate::kernels::{self, ColumnarView, SelVec};

/// Packs a width-2 key into one scalar. The first column lands in the high
/// half, so `u128` ordering equals lexicographic row ordering — every
/// width-2 build, probe, and sort site must agree on this encoding.
#[inline]
fn pack2(a: u64, b: u64) -> u128 {
    (a as u128) << 64 | b as u128
}

/// Inverse of [`pack2`].
#[inline]
fn unpack2(p: u128) -> (u64, u64) {
    ((p >> 64) as u64, p as u64)
}

/// A hash index over one key-attribute set: key values (in [`AttrSet`]
/// column order) → indices of the tuples carrying them. Keys of width ≤ 2
/// pack exactly into scalars, so building and probing never allocates per
/// row; wider keys are boxed once per *distinct* key, never per tuple.
#[derive(Debug)]
pub(crate) enum KeyIndex {
    /// Width-0 key: every tuple carries the empty key.
    Empty(Vec<usize>),
    /// Width-1 key.
    One(FxHashMap<u64, Vec<usize>>),
    /// Width-2 key, packed into one `u128`.
    Two(FxHashMap<u128, Vec<usize>>),
    /// Width ≥ 3 (rare in tree schemas).
    Wide(FxHashMap<Box<[u64]>, Vec<usize>>),
}

impl KeyIndex {
    fn build(rel: &Relation, pos: &[usize]) -> Self {
        match *pos {
            [] => KeyIndex::Empty((0..rel.len).collect()),
            [p] => {
                let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
                for (i, t) in rel.rows().enumerate() {
                    map.entry(t[p]).or_default().push(i);
                }
                KeyIndex::One(map)
            }
            [p, q] => {
                let mut map: FxHashMap<u128, Vec<usize>> = FxHashMap::default();
                for (i, t) in rel.rows().enumerate() {
                    map.entry(pack2(t[p], t[q])).or_default().push(i);
                }
                KeyIndex::Two(map)
            }
            _ => {
                let mut map: FxHashMap<Box<[u64]>, Vec<usize>> = FxHashMap::default();
                let mut scratch: Vec<u64> = Vec::with_capacity(pos.len());
                for (i, t) in rel.rows().enumerate() {
                    scratch.clear();
                    scratch.extend(pos.iter().map(|&p| t[p]));
                    if let Some(bucket) = map.get_mut(scratch.as_slice()) {
                        bucket.push(i);
                    } else {
                        map.insert(scratch.clone().into_boxed_slice(), vec![i]);
                    }
                }
                KeyIndex::Wide(map)
            }
        }
    }
}

/// Lazily built per-relation derivations, keyed by the [`AttrSet`] they were
/// derived for: column positions (for projections and semijoin probes) and
/// hash-join build tables (for `⋈`/`⋉` against this relation).
///
/// A [`Relation`]'s attribute set and tuples never change after
/// construction, so cached derivations stay valid for the relation's whole
/// life; clones share the cache (same tuples ⟹ same derivations). The cache
/// is invisible to equality and never allocated until first use.
#[derive(Default)]
struct RelCache {
    slot: OnceLock<Arc<Mutex<CacheInner>>>,
}

#[derive(Default)]
struct CacheInner {
    positions: FxHashMap<AttrSet, Arc<Vec<usize>>>,
    builds: FxHashMap<AttrSet, Arc<KeyIndex>>,
    columns: FxHashMap<AttrSet, Arc<KeyColumn>>,
}

/// A relation's key values over one key-attribute set, extracted into flat,
/// cache-friendly storage (row `i` of the column is tuple `i`'s key). Keys
/// of width ≤ 2 pack exactly into scalars and wider keys live in one packed
/// side buffer (stride = key width), so the batched executor's inner loops
/// never chase per-tuple heap pointers — there is no `Vec<u64>` per row for
/// any key width.
#[derive(Debug)]
pub(crate) enum KeyColumn {
    /// Width-0 key: every tuple has the empty key.
    Empty,
    /// Width-1 key: the single key value per tuple, with the value range
    /// precomputed (the batched executor arms its stamp table from the
    /// range without rescanning the column).
    One {
        /// The key value per tuple.
        vals: Vec<u64>,
        /// Smallest key (0 for an empty relation).
        min: u64,
        /// Largest key (0 for an empty relation).
        max: u64,
    },
    /// Width-2 key: both values packed into one `u128` per tuple.
    Two(Vec<u128>),
    /// Width ≥ 3: keys packed row-major into one flat buffer
    /// (`keys[i·width .. (i+1)·width]` is tuple `i`'s key).
    Wide {
        /// Key width (≥ 3).
        width: usize,
        /// Packed key values, `len · width` of them.
        keys: Vec<u64>,
    },
}

impl KeyColumn {
    fn extract(rel: &Relation, pos: &[usize]) -> Self {
        match *pos {
            [] => KeyColumn::Empty,
            [p] => {
                let vals: Vec<u64> = rel.rows().map(|t| t[p]).collect();
                let min = vals.iter().copied().min().unwrap_or(0);
                let max = vals.iter().copied().max().unwrap_or(0);
                KeyColumn::One { vals, min, max }
            }
            [p, q] => KeyColumn::Two(rel.rows().map(|t| pack2(t[p], t[q])).collect()),
            _ => {
                let mut keys = Vec::with_capacity(rel.len * pos.len());
                for t in rel.rows() {
                    keys.extend(pos.iter().map(|&p| t[p]));
                }
                KeyColumn::Wide {
                    width: pos.len(),
                    keys,
                }
            }
        }
    }
}

impl RelCache {
    fn inner(&self) -> &Mutex<CacheInner> {
        self.slot.get_or_init(Arc::default)
    }
}

impl Clone for RelCache {
    fn clone(&self) -> Self {
        // Force the slot into existence before sharing: a clone taken
        // *before* the first derivation must still share later fills with
        // the original (the engines clone state relations up front and
        // rely on the originals accumulating the key columns — an
        // uninitialized-slot clone would silently fork the cache and
        // rebuild every derivation on every call).
        let cache = RelCache::default();
        let _ = cache
            .slot
            .set(Arc::clone(self.slot.get_or_init(Arc::default)));
        cache
    }
}

/// A relation state: a *set* of tuples over an attribute set, stored
/// row-major in one flat buffer (see the [module docs](self) for the
/// layout).
///
/// Column order follows the sorted order of [`AttrSet`] ids; rows are kept
/// sorted and deduplicated, so equality is set equality and all operations
/// are deterministic.
///
/// The degenerate relations over the empty attribute set follow standard
/// convention: `{}` (the empty relation, a join annihilator) and `{()}` (the
/// single empty tuple, the join identity).
///
/// # Examples
///
/// ```
/// use gyo_schema::{AttrSet, Catalog};
/// use gyo_relation::Relation;
///
/// let mut cat = Catalog::alphabetic();
/// let ab = AttrSet::parse("ab", &mut cat).unwrap();
/// let bc = AttrSet::parse("bc", &mut cat).unwrap();
/// let r = Relation::new(ab, vec![vec![1, 10], vec![2, 20]]);
/// let s = Relation::new(bc, vec![vec![10, 100], vec![30, 300]]);
/// let j = r.natural_join(&s);
/// assert_eq!(j.len(), 1); // only b=10 matches
/// assert_eq!(j.row(0), &[1, 10, 100]);
/// ```
pub struct Relation {
    attrs: AttrSet,
    /// Tuple width (= `attrs.len()`), the buffer stride.
    arity: usize,
    /// Row count. Kept separately from the buffer because arity-0
    /// relations (`{}` vs `{()}`) have no data to count rows from.
    len: usize,
    /// Row-major tuple values, `len · arity` of them, rows strictly
    /// increasing. Shared by clones.
    data: Arc<Vec<u64>>,
    cache: RelCache,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Self {
            attrs: self.attrs.clone(),
            arity: self.arity,
            len: self.len,
            data: Arc::clone(&self.data),
            cache: self.cache.clone(),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.attrs == other.attrs
            && self.len == other.len
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl Eq for Relation {}

/// Iterator over a relation's rows as `&[u64]` slices of the flat buffer
/// (see [`Relation::rows`]).
#[derive(Clone, Debug)]
pub struct Rows<'a> {
    data: &'a [u64],
    arity: usize,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [u64];

    #[inline]
    fn next(&mut self) -> Option<&'a [u64]> {
        if self.front == self.back {
            return None;
        }
        let i = self.front;
        self.front += 1;
        Some(if self.arity == 0 {
            &[]
        } else {
            &self.data[i * self.arity..(i + 1) * self.arity]
        })
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

/// Sorts and deduplicates a row-major buffer in place (stride-aware);
/// returns the surviving row count and buffer. Detects the already-sorted
/// common case with one linear scan, packs width ≤ 2 rows into scalars,
/// packs wider rows into `u64`/`u128` scalars whenever the value bits fit
/// (see [`kernels::sort_dedup_packed`]), and only falls back to an index
/// permutation for genuinely wide rows — no per-row heap allocation for
/// any arity.
fn normalize(arity: usize, rows: usize, mut data: Vec<u64>) -> (usize, Vec<u64>) {
    if arity == 0 {
        // All empty tuples are equal: the set has at most one element.
        return (rows.min(1), data);
    }
    debug_assert_eq!(data.len(), rows * arity);
    let row = |i: usize| &data[i * arity..(i + 1) * arity];
    if (1..rows).all(|i| row(i - 1) < row(i)) {
        return (rows, data);
    }
    match arity {
        1 => {
            data.sort_unstable();
            data.dedup();
            (data.len(), data)
        }
        2 => {
            let mut packed: Vec<u128> = data.chunks_exact(2).map(|c| pack2(c[0], c[1])).collect();
            packed.sort_unstable();
            packed.dedup();
            data.clear();
            for &p in &packed {
                let (a, b) = unpack2(p);
                data.push(a);
                data.push(b);
            }
            (packed.len(), data)
        }
        _ => {
            // Columnar fast path: rows whose values fit pack into scalars
            // and sort as machine words.
            let data = match kernels::sort_dedup_packed(arity, rows, data) {
                Ok(done) => return done,
                Err(data) => data,
            };
            // Row-at-a-time fallback (values too wide to pack): sort an
            // index permutation, then gather the surviving rows.
            let mut idx: Vec<usize> = (0..rows).collect();
            idx.sort_unstable_by(|&a, &b| {
                data[a * arity..(a + 1) * arity].cmp(&data[b * arity..(b + 1) * arity])
            });
            idx.dedup_by(|a, b| {
                data[*a * arity..(*a + 1) * arity] == data[*b * arity..(*b + 1) * arity]
            });
            let mut out = Vec::with_capacity(idx.len() * arity);
            for i in idx {
                out.extend_from_slice(&data[i * arity..(i + 1) * arity]);
            }
            (out.len() / arity, out)
        }
    }
}

impl Relation {
    /// Creates a relation from nested tuple vectors, validating arity and
    /// normalizing (sort + dedup). This is the ergonomic **boundary**
    /// constructor; hot paths should build flat buffers and use
    /// [`Relation::from_row_major`] instead.
    ///
    /// # Panics
    ///
    /// Panics if any tuple's arity differs from `attrs.len()`.
    pub fn new(attrs: AttrSet, tuples: Vec<Vec<u64>>) -> Self {
        let arity = attrs.len();
        let mut data = Vec::with_capacity(tuples.len() * arity);
        for t in &tuples {
            assert_eq!(
                t.len(),
                arity,
                "tuple arity {} does not match schema arity {}",
                t.len(),
                arity
            );
            data.extend_from_slice(t);
        }
        Self::from_row_major(attrs, tuples.len(), data)
    }

    /// Creates a relation from a flat row-major buffer of `rows · arity`
    /// values (row `i` at `data[i·arity..(i+1)·arity]`), normalizing
    /// (sort + dedup) with stride-aware comparison — the zero-per-row-
    /// allocation constructor every operator output goes through.
    ///
    /// For `attrs = ∅` the buffer is empty and `rows` alone distinguishes
    /// `{}` (`rows == 0`) from `{()}` (`rows ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * attrs.len()`.
    pub fn from_row_major(attrs: AttrSet, rows: usize, data: Vec<u64>) -> Self {
        assert_eq!(
            data.len(),
            rows * attrs.len(),
            "flat buffer length {} does not match {} rows of arity {}",
            data.len(),
            rows,
            attrs.len()
        );
        let (len, data) = normalize(attrs.len(), rows, data);
        Self {
            arity: attrs.len(),
            attrs,
            len,
            data: Arc::new(data),
            cache: RelCache::default(),
        }
    }

    /// Internal constructor for a buffer already sorted and deduplicated.
    fn from_normalized(attrs: AttrSet, len: usize, data: Vec<u64>) -> Self {
        let arity = attrs.len();
        debug_assert_eq!(data.len(), len * arity);
        debug_assert!(
            arity == 0
                || (1..len)
                    .all(|i| data[(i - 1) * arity..i * arity] < data[i * arity..(i + 1) * arity]),
            "not normalized"
        );
        debug_assert!(arity != 0 || len <= 1, "arity-0 relations hold ≤ 1 row");
        Self {
            arity,
            attrs,
            len,
            data: Arc::new(data),
            cache: RelCache::default(),
        }
    }

    /// The empty relation over `attrs` (no tuples).
    pub fn empty(attrs: AttrSet) -> Self {
        Self::from_normalized(attrs, 0, Vec::new())
    }

    /// The join identity: the relation over `∅` holding the single empty
    /// tuple.
    pub fn identity() -> Self {
        Self::from_normalized(AttrSet::empty(), 1, Vec::new())
    }

    /// The relation's attribute set.
    #[inline]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Tuple width — the number of columns, and the stride of the flat
    /// buffer.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Row `i` as a slice of the flat buffer (column order = sorted
    /// [`AttrSet`] order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        assert!(i < self.len, "row {} out of range ({} rows)", i, self.len);
        if self.arity == 0 {
            &[]
        } else {
            &self.data[i * self.arity..(i + 1) * self.arity]
        }
    }

    /// Iterates the normalized rows as `&[u64]` slices — the zero-copy
    /// replacement for the old `&[Vec<u64>]` accessor.
    #[inline]
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            arity: self.arity,
            front: 0,
            back: self.len,
        }
    }

    /// The raw flat row-major buffer (`len() · arity()` values, rows
    /// strictly increasing). Useful for bulk transfers into new flat
    /// buffers without per-row indirection.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Materializes the rows as nested vectors. **Test/assert boundary
    /// shim only** — one heap allocation per row, exactly what the flat
    /// layout exists to avoid; never call this on an operator or engine
    /// path.
    pub fn to_vecs(&self) -> Vec<Vec<u64>> {
        self.rows().map(<[u64]>::to_vec).collect()
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test (`tuple` in column order). When the full-attribute
    /// `KeyIndex` is already cached — built by [`Relation::is_subset`] and
    /// other assert-heavy repeated-probe paths — the probe is one O(1)
    /// hash lookup (the key positions are the identity map, so the tuple
    /// *is* the probe key); a cold one-shot call falls back to the
    /// allocation-free binary search over the sorted rows rather than
    /// paying an O(n) index build it would never amortize.
    pub fn contains(&self, tuple: &[u64]) -> bool {
        if self.arity == 0 {
            return tuple.is_empty() && self.len > 0;
        }
        if tuple.len() != self.arity {
            return false; // a tuple of the wrong width is never a member
        }
        if let Some(index) = self.key_index_if_cached(&self.attrs) {
            return match &*index {
                KeyIndex::Empty(all) => !all.is_empty(),
                KeyIndex::One(map) => map.contains_key(&tuple[0]),
                KeyIndex::Two(map) => map.contains_key(&pack2(tuple[0], tuple[1])),
                KeyIndex::Wide(map) => map.contains_key(tuple),
            };
        }
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.row(mid).cmp(tuple) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Positions (column indices) of `attrs` within this relation's columns.
    ///
    /// # Panics
    ///
    /// Panics if some attribute is not part of this relation.
    fn positions_of(&self, attrs: &AttrSet) -> Vec<usize> {
        attrs
            .iter()
            .map(|a| {
                self.attrs
                    .as_slice()
                    .binary_search(&a)
                    .expect("attribute not in relation schema")
            })
            .collect()
    }

    /// Cached [`Self::positions_of`]: the first call per `attrs` derives the
    /// positions, later calls (including on clones) return the shared copy.
    pub(crate) fn positions_cached(&self, attrs: &AttrSet) -> Arc<Vec<usize>> {
        let mut inner = self.cache.inner().lock().expect("relation cache lock");
        if let Some(pos) = inner.positions.get(attrs) {
            return Arc::clone(pos);
        }
        let pos = Arc::new(self.positions_of(attrs));
        inner.positions.insert(attrs.clone(), Arc::clone(&pos));
        pos
    }

    /// The already-cached build table over `key`, if any — no build is
    /// triggered. Lets cold paths choose a cheaper strategy instead of
    /// paying an index build they would not amortize.
    pub(crate) fn key_index_if_cached(&self, key: &AttrSet) -> Option<Arc<KeyIndex>> {
        self.cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .builds
            .get(key)
            .cloned()
    }

    /// The hash-join build table over `key ⊆ attrs(self)` (see
    /// [`KeyIndex`]). Built once per key set and cached, so repeated
    /// joins/semijoins against this relation (or clones of it) reuse the
    /// build.
    pub(crate) fn key_index(&self, key: &AttrSet) -> Arc<KeyIndex> {
        if let Some(table) = self
            .cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .builds
            .get(key)
        {
            return Arc::clone(table);
        }
        // Build outside the lock: the derivation is pure, so a racing
        // builder at worst duplicates work.
        let pos = self.positions_of(key);
        let table = Arc::new(KeyIndex::build(self, &pos));
        self.cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .builds
            .entry(key.clone())
            .or_insert_with(|| Arc::clone(&table))
            .clone()
    }

    /// The flat key column over `key ⊆ attrs(self)` (see [`KeyColumn`]),
    /// extracted once and cached — the batched semijoin executor reads
    /// these instead of chasing per-tuple heap pointers.
    pub(crate) fn key_column(&self, key: &AttrSet) -> Arc<KeyColumn> {
        if let Some(col) = self
            .cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .columns
            .get(key)
        {
            return Arc::clone(col);
        }
        let pos = self.positions_of(key);
        let col = Arc::new(KeyColumn::extract(self, &pos));
        self.cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .columns
            .entry(key.clone())
            .or_insert_with(|| Arc::clone(&col))
            .clone()
    }

    /// A columnar view of the flat buffer (the kernel layer's window onto
    /// this relation's storage).
    #[inline]
    pub fn columns_view(&self) -> ColumnarView<'_> {
        ColumnarView::new(&self.data, self.arity, self.len)
    }

    /// The relation restricted to the rows a [`SelVec`] selected. Returns a
    /// plain clone when everything survives. Surviving rows are gathered
    /// contiguously (selection order is ascending), so no re-normalization
    /// happens.
    pub(crate) fn gather_selected(&self, sel: &SelVec) -> Relation {
        debug_assert!(sel.len() <= self.len);
        if sel.len() == self.len {
            return self.clone();
        }
        let mut data = Vec::with_capacity(sel.len() * self.arity);
        kernels::gather_rows(&self.data, self.arity, sel, &mut data);
        Relation::from_normalized(self.attrs.clone(), sel.len(), data)
    }

    /// Projection `π_X(self)`, via the gather kernel: the column-index map
    /// is computed once (and cached per `AttrSet`), then values move in
    /// column-strided blocks — no per-row scatter loop.
    ///
    /// # Panics
    ///
    /// Panics if `x ⊄ attrs`; the paper always projects onto subsets.
    pub fn project(&self, x: &AttrSet) -> Relation {
        assert!(
            x.is_subset(&self.attrs),
            "projection target must be a subset of the relation schema"
        );
        if *x == self.attrs {
            return self.clone();
        }
        let pos = self.positions_cached(x);
        let mut data = Vec::with_capacity(self.len * pos.len());
        self.columns_view().gather_into(&pos, &mut data);
        Relation::from_row_major(x.clone(), self.len, data)
    }

    /// Natural join `self ⋈ other` (a cross product when the schemas are
    /// disjoint). Hash join on the shared attributes, building on the
    /// smaller side. The probe phase collects matching `(probe, build)` row
    /// pairs; the output buffer is then assembled **column-at-a-time** over
    /// the pair list (one tight gather loop per output column) instead of a
    /// per-value scatter inside the probe loop.
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let (build, probe) = if self.len <= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let shared = build.attrs.intersect(&probe.attrs);
        let out_attrs = build.attrs.union(&probe.attrs);
        let out_arity = out_attrs.len();

        // Output column map: each output column reads either from the probe
        // side or from the build side, at a fixed position.
        let mut probe_cols: Vec<(usize, usize)> = Vec::new(); // (out col, probe pos)
        let mut build_cols: Vec<(usize, usize)> = Vec::new(); // (out col, build pos)
        for (j, a) in out_attrs.iter().enumerate() {
            match probe.attrs.as_slice().binary_search(&a) {
                Ok(p) => probe_cols.push((j, p)),
                Err(_) => build_cols.push((
                    j,
                    build
                        .attrs
                        .as_slice()
                        .binary_search(&a)
                        .expect("output attr comes from one side"),
                )),
            }
        }

        let table = build.key_index(&shared);
        let probe_key = probe.positions_cached(&shared);

        // Probe phase: stream matching row pairs into a bounded block
        // buffer, flushing each full block through the column-at-a-time
        // assembly kernel. Probe keys are read straight off the row slices
        // (one streaming pass; the index-shape dispatch is hoisted out of
        // the loop) — extracting a key column here would cost an extra
        // pass over the probe side, which one-shot joins never earn back.
        // The block bound keeps huge join outputs from materializing a
        // full pair list before assembly.
        let mut data: Vec<u64> = Vec::new();
        let mut rows = 0usize;
        debug_assert!(
            probe.len <= u32::MAX as usize && build.len <= u32::MAX as usize,
            "pair indices are u32; row counts must fit (cf. SelVec::reset)"
        );
        const FLUSH: usize = kernels::CHUNK * 16;
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(FLUSH);
        let mut emit = |pairs: &mut Vec<(u32, u32)>, data: &mut Vec<u64>, force: bool| {
            if force || pairs.len() >= FLUSH {
                rows += pairs.len();
                kernels::gather_pairs(
                    &probe.data,
                    probe.arity,
                    &build.data,
                    build.arity,
                    &probe_cols,
                    &build_cols,
                    pairs,
                    out_arity,
                    data,
                );
                pairs.clear();
            }
        };
        macro_rules! probe_loop {
            ($iter:expr, $map:expr) => {
                for (pi, k) in $iter {
                    if let Some(matches) = $map.get(&k) {
                        for &bi in matches {
                            pairs.push((pi as u32, bi as u32));
                        }
                        emit(&mut pairs, &mut data, false);
                    }
                }
            };
        }
        match &*table {
            KeyIndex::Empty(all) => {
                // Disjoint schemas: cross product.
                for pi in 0..probe.len {
                    for &bi in all {
                        pairs.push((pi as u32, bi as u32));
                    }
                    emit(&mut pairs, &mut data, false);
                }
            }
            KeyIndex::One(map) => {
                let p = probe_key[0];
                probe_loop!(probe.rows().enumerate().map(|(pi, t)| (pi, t[p])), map)
            }
            KeyIndex::Two(map) => {
                let (p, q) = (probe_key[0], probe_key[1]);
                probe_loop!(
                    probe
                        .rows()
                        .enumerate()
                        .map(|(pi, t)| (pi, pack2(t[p], t[q]))),
                    map
                )
            }
            KeyIndex::Wide(map) => {
                let mut scratch: Vec<u64> = Vec::with_capacity(probe_key.len());
                for (pi, t) in probe.rows().enumerate() {
                    scratch.clear();
                    scratch.extend(probe_key.iter().map(|&p| t[p]));
                    if let Some(matches) = map.get(scratch.as_slice()) {
                        for &bi in matches {
                            pairs.push((pi as u32, bi as u32));
                        }
                        emit(&mut pairs, &mut data, false);
                    }
                }
            }
        }
        emit(&mut pairs, &mut data, true);
        debug_assert_eq!(data.len(), rows * out_arity);
        Relation::from_row_major(out_attrs, rows, data)
    }

    /// Natural semijoin `self ⋉ other = π_self(self ⋈ other)`, computed
    /// directly by filtering (no join materialization). The build over
    /// `other`'s key columns comes from its cache, so repeated semijoins
    /// against the same relation reuse it.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared = self.attrs.intersect(&other.attrs);
        let my_key = self.positions_cached(&shared);
        let index = other.key_index(&shared);
        self.semijoin_filtered(&my_key, &index)
    }

    /// The probe half of a semijoin: one streaming pass keeps the tuples
    /// whose `my_key` columns hit `index`, written contiguously into one
    /// pre-sized flat buffer (filtering preserves normalization). The
    /// index-shape dispatch is hoisted out of the row loop; this stays
    /// row-at-a-time deliberately — a one-shot filter earns nothing from a
    /// selection vector (that is the *program* executor's tool, where
    /// selections thread across many steps without materializing).
    pub(crate) fn semijoin_filtered(&self, my_key: &[usize], index: &KeyIndex) -> Relation {
        if self.len == 0 {
            return self.clone();
        }
        // The output is bounded by the input; reserving the bound up front
        // avoids doubling reallocations, and a highly selective filter
        // gives the excess back.
        let mut data: Vec<u64> = Vec::with_capacity(self.len * self.arity);
        let mut kept = 0usize;
        macro_rules! filter_rows {
            ($keep:expr) => {
                for t in self.rows() {
                    #[allow(clippy::redundant_closure_call)]
                    if $keep(t) {
                        data.extend_from_slice(t);
                        kept += 1;
                    }
                }
            };
        }
        match (index, my_key) {
            (KeyIndex::Empty(all), _) => {
                return if all.is_empty() {
                    Relation::empty(self.attrs.clone())
                } else {
                    self.clone()
                };
            }
            (KeyIndex::One(map), &[p]) => filter_rows!(|t: &[u64]| map.contains_key(&t[p])),
            (KeyIndex::Two(map), &[p, q]) => {
                filter_rows!(|t: &[u64]| map.contains_key(&pack2(t[p], t[q])))
            }
            (KeyIndex::Wide(map), _) => {
                let mut scratch: Vec<u64> = Vec::with_capacity(my_key.len());
                filter_rows!(|t: &[u64]| {
                    scratch.clear();
                    scratch.extend(my_key.iter().map(|&p| t[p]));
                    map.contains_key(scratch.as_slice())
                })
            }
            _ => unreachable!("key width matches the index shape"),
        }
        if data.capacity() > 2 * data.len() {
            data.shrink_to_fit();
        }
        Relation::from_normalized(self.attrs.clone(), kept, data)
    }

    /// Set union of two relations over the same attribute set, computed as
    /// a sorted merge of the two flat buffers (both inputs are normalized).
    ///
    /// # Panics
    ///
    /// Panics if the attribute sets differ.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.attrs, other.attrs, "union requires equal schemas");
        let mut data = Vec::with_capacity((self.len + other.len) * self.arity);
        let mut rows = 0usize;
        let mut a = self.rows().peekable();
        let mut b = other.rows().peekable();
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => match x.cmp(y) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        b.next();
                        true
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let t = if take_a { a.next() } else { b.next() }.expect("peeked");
            data.extend_from_slice(t);
            rows += 1;
        }
        Relation::from_normalized(self.attrs.clone(), rows, data)
    }

    /// Whether `self ⊆ other` as tuple sets (same attribute set required).
    /// Builds (or reuses) `other`'s full-attribute `KeyIndex` once and
    /// probes it directly per row: this is the assert-heavy repeated-probe
    /// pattern the cached index exists for — one hash lookup per tuple,
    /// one cache-lock for the whole check.
    pub fn is_subset(&self, other: &Relation) -> bool {
        assert_eq!(self.attrs, other.attrs, "comparison requires equal schemas");
        if self.arity == 0 || self.is_empty() {
            return self.is_empty() || other.len > 0;
        }
        let index = other.key_index(&other.attrs);
        match &*index {
            KeyIndex::Empty(all) => !all.is_empty(),
            KeyIndex::One(map) => self.rows().all(|t| map.contains_key(&t[0])),
            KeyIndex::Two(map) => self.rows().all(|t| map.contains_key(&pack2(t[0], t[1]))),
            KeyIndex::Wide(map) => self.rows().all(|t| map.contains_key(t)),
        }
    }

    /// Renders a small relation as an ASCII table for diagnostics.
    pub fn to_table(&self, cat: &Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let header: Vec<&str> = self.attrs.iter().map(|a| cat.name(a)).collect();
        writeln!(out, "| {} |", header.join(" | ")).expect("write to string");
        for t in self.rows() {
            let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            writeln!(out, "| {} |", row.join(" | ")).expect("write to string");
        }
        out
    }

    /// The attribute ids in column order (sorted).
    pub fn columns(&self) -> &[AttrId] {
        self.attrs.as_slice()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({:?}, {} tuples)", self.attrs, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(raw: &[u32]) -> AttrSet {
        AttrSet::from_raw(raw)
    }

    #[test]
    fn construction_normalizes() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![2, 2], vec![1, 1], vec![2, 2]]);
        assert_eq!(r.to_vecs(), vec![vec![1, 1], vec![2, 2]]);
        assert!(r.contains(&[2, 2]));
        assert!(!r.contains(&[3, 3]));
    }

    #[test]
    fn flat_construction_matches_nested() {
        let nested = Relation::new(
            attrs(&[0, 1, 2]),
            vec![vec![3, 1, 2], vec![1, 1, 1], vec![3, 1, 2]],
        );
        let flat = Relation::from_row_major(attrs(&[0, 1, 2]), 3, vec![3, 1, 2, 1, 1, 1, 3, 1, 2]);
        assert_eq!(nested, flat);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.data(), &[1, 1, 1, 3, 1, 2]);
        assert_eq!(flat.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Relation::new(attrs(&[0, 1]), vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "flat buffer length")]
    fn flat_length_mismatch_panics() {
        Relation::from_row_major(attrs(&[0, 1]), 2, vec![1, 2, 3]);
    }

    #[test]
    fn rows_iterator_is_exact_and_flat() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![2, 20], vec![1, 10]]);
        let rows: Vec<&[u64]> = r.rows().collect();
        assert_eq!(rows, vec![&[1u64, 10][..], &[2, 20]]);
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.row(1), &[2, 20]);
    }

    #[test]
    fn arity_zero_rows() {
        let id = Relation::identity();
        assert_eq!(id.len(), 1);
        assert_eq!(id.rows().collect::<Vec<_>>(), vec![&[] as &[u64]]);
        assert!(id.contains(&[]));
        let nothing = Relation::empty(AttrSet::empty());
        assert_eq!(nothing.rows().count(), 0);
        assert!(!nothing.contains(&[]));
        // Many empty tuples collapse to the identity.
        let collapsed = Relation::new(AttrSet::empty(), vec![vec![], vec![], vec![]]);
        assert_eq!(collapsed, id);
    }

    #[test]
    fn projection_dedups() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![1, 20], vec![2, 10]]);
        let p = r.project(&attrs(&[0]));
        assert_eq!(p.to_vecs(), vec![vec![1], vec![2]]);
    }

    #[test]
    fn projection_onto_empty_set() {
        let r = Relation::new(attrs(&[0]), vec![vec![7]]);
        let p = r.project(&AttrSet::empty());
        assert_eq!(p, Relation::identity());
        let e = Relation::empty(attrs(&[0]));
        assert!(e.project(&AttrSet::empty()).is_empty());
    }

    #[test]
    fn join_on_shared_attribute() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![10, 100], vec![10, 101]]);
        let j = r.natural_join(&s);
        assert_eq!(j.attrs(), &attrs(&[0, 1, 2]));
        assert_eq!(j.to_vecs(), vec![vec![1, 10, 100], vec![1, 10, 101]]);
    }

    #[test]
    fn join_is_commutative() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20], vec![3, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![20, 9], vec![10, 8]]);
        assert_eq!(r.natural_join(&s), s.natural_join(&r));
    }

    #[test]
    fn disjoint_join_is_cross_product() {
        let r = Relation::new(attrs(&[0]), vec![vec![1], vec![2]]);
        let s = Relation::new(attrs(&[1]), vec![vec![10], vec![20]]);
        let j = r.natural_join(&s);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_identities() {
        let r = Relation::new(attrs(&[0]), vec![vec![1], vec![2]]);
        assert_eq!(r.natural_join(&Relation::identity()), r);
        let annihilator = Relation::empty(AttrSet::empty());
        assert!(r.natural_join(&annihilator).is_empty());
    }

    #[test]
    fn self_join_is_idempotent() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        assert_eq!(r.natural_join(&r), r);
    }

    #[test]
    fn semijoin_filters_left_side() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![10, 5]]);
        let sj = r.semijoin(&s);
        assert_eq!(sj.attrs(), r.attrs());
        assert_eq!(sj.to_vecs(), vec![vec![1, 10]]);
        // definition check: R ⋉ S = π_R(R ⋈ S)
        assert_eq!(sj, r.natural_join(&s).project(r.attrs()));
    }

    #[test]
    fn semijoin_with_disjoint_nonempty_relation_is_identity() {
        let r = Relation::new(attrs(&[0]), vec![vec![1]]);
        let s = Relation::new(attrs(&[5]), vec![vec![9]]);
        assert_eq!(r.semijoin(&s), r);
        // ... and with an empty disjoint relation it empties out.
        let nothing = Relation::empty(attrs(&[5]));
        assert!(r.semijoin(&nothing).is_empty());
    }

    #[test]
    fn wide_key_join_and_semijoin() {
        // Shared attribute sets of width ≥ 3 exercise the packed wide-key
        // index paths.
        let r = Relation::new(
            attrs(&[0, 1, 2, 3]),
            vec![vec![1, 2, 3, 4], vec![1, 2, 9, 4], vec![5, 6, 7, 8]],
        );
        let s = Relation::new(
            attrs(&[0, 1, 2, 9]),
            vec![vec![1, 2, 3, 0], vec![5, 6, 0, 0]],
        );
        let sj = r.semijoin(&s);
        assert_eq!(sj.to_vecs(), vec![vec![1, 2, 3, 4]]);
        let j = r.natural_join(&s);
        assert_eq!(j.to_vecs(), vec![vec![1, 2, 3, 4, 0]]);
        assert_eq!(sj, j.project(r.attrs()));
    }

    #[test]
    fn union_and_subset() {
        let r = Relation::new(attrs(&[0]), vec![vec![1]]);
        let s = Relation::new(attrs(&[0]), vec![vec![2]]);
        let u = r.union(&s);
        assert_eq!(u.len(), 2);
        assert!(r.is_subset(&u));
        assert!(!u.is_subset(&r));
    }

    #[test]
    fn union_merges_overlapping_sorted_inputs() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 1], vec![3, 3], vec![5, 5]]);
        let s = Relation::new(attrs(&[0, 1]), vec![vec![2, 2], vec![3, 3], vec![6, 6]]);
        let u = r.union(&s);
        assert_eq!(
            u.to_vecs(),
            vec![vec![1, 1], vec![2, 2], vec![3, 3], vec![5, 5], vec![6, 6]]
        );
        assert_eq!(Relation::identity().union(&Relation::identity()).len(), 1);
    }

    #[test]
    fn clones_share_storage_and_derivation_caches() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let key = attrs(&[1]);
        let idx = r.key_index(&key);
        let clone = r.clone();
        assert!(
            Arc::ptr_eq(&idx, &clone.key_index(&key)),
            "clone reuses the build"
        );
        assert!(Arc::ptr_eq(
            &r.positions_cached(&key),
            &clone.positions_cached(&key)
        ));
        assert_eq!(clone.data(), r.data(), "clones share the flat buffer");
    }

    #[test]
    fn equality_ignores_caches() {
        let a = Relation::new(attrs(&[0, 1]), vec![vec![1, 2]]);
        let b = Relation::new(attrs(&[0, 1]), vec![vec![1, 2]]);
        let _ = a.key_index(&attrs(&[0]));
        assert_eq!(a, b);
        assert_eq!(b, a);
    }

    #[test]
    fn cached_build_survives_repeated_semijoins() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let hub = Relation::new(attrs(&[1, 2]), vec![vec![10, 5], vec![30, 6]]);
        let first = r.semijoin(&hub);
        let second = r.semijoin(&hub); // hits hub's cached key index
        assert_eq!(first, second);
        assert_eq!(first.to_vecs(), vec![vec![1, 10]]);
    }

    #[test]
    fn table_rendering() {
        let mut cat = Catalog::alphabetic();
        let ab = AttrSet::parse("ab", &mut cat).unwrap();
        let r = Relation::new(ab, vec![vec![1, 2]]);
        let t = r.to_table(&cat);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
