//! Relations (sets of tuples) and the natural-join algebra.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use gyo_schema::{AttrId, AttrSet, Catalog, FxHashMap};

/// A hash index over one key-attribute set: key values (in [`AttrSet`]
/// column order) → indices of the tuples carrying them.
pub(crate) type KeyIndex = FxHashMap<Vec<u64>, Vec<usize>>;

/// Lazily built per-relation derivations, keyed by the [`AttrSet`] they were
/// derived for: column positions (for projections and semijoin probes) and
/// hash-join build tables (for `⋈`/`⋉` against this relation).
///
/// A [`Relation`]'s attribute set and tuples never change after
/// construction, so cached derivations stay valid for the relation's whole
/// life; clones share the cache (same tuples ⟹ same derivations). The cache
/// is invisible to equality and never allocated until first use.
#[derive(Default)]
struct RelCache {
    slot: OnceLock<Arc<Mutex<CacheInner>>>,
}

#[derive(Default)]
struct CacheInner {
    positions: FxHashMap<AttrSet, Arc<Vec<usize>>>,
    builds: FxHashMap<AttrSet, Arc<KeyIndex>>,
    columns: FxHashMap<AttrSet, Arc<KeyColumn>>,
}

/// A relation's key values over one key-attribute set, extracted into flat,
/// cache-friendly storage (row `i` of the column is tuple `i`'s key). Keys
/// of width ≤ 2 pack exactly into scalars, so the batched executor's inner
/// loops never chase per-tuple heap pointers.
#[derive(Debug)]
pub(crate) enum KeyColumn {
    /// Width-0 key: every tuple has the empty key.
    Empty,
    /// Width-1 key: the single key value per tuple.
    One(Vec<u64>),
    /// Width-2 key: both values packed into one `u128` per tuple.
    Two(Vec<u128>),
    /// Width ≥ 3: one boxed key per tuple (rare in tree schemas).
    Wide(Vec<Vec<u64>>),
}

impl KeyColumn {
    fn extract(tuples: &[Vec<u64>], pos: &[usize]) -> Self {
        match *pos {
            [] => KeyColumn::Empty,
            [p] => KeyColumn::One(tuples.iter().map(|t| t[p]).collect()),
            [p, q] => KeyColumn::Two(
                tuples
                    .iter()
                    .map(|t| (t[p] as u128) << 64 | t[q] as u128)
                    .collect(),
            ),
            _ => KeyColumn::Wide(
                tuples
                    .iter()
                    .map(|t| pos.iter().map(|&p| t[p]).collect())
                    .collect(),
            ),
        }
    }
}

impl RelCache {
    fn inner(&self) -> &Mutex<CacheInner> {
        self.slot.get_or_init(Arc::default)
    }
}

impl Clone for RelCache {
    fn clone(&self) -> Self {
        let cache = RelCache::default();
        if let Some(shared) = self.slot.get() {
            let _ = cache.slot.set(Arc::clone(shared));
        }
        cache
    }
}

/// A relation state: a *set* of tuples over an attribute set.
///
/// Column order follows the sorted order of [`AttrSet`] ids; tuples are kept
/// sorted and deduplicated, so equality is set equality and all operations
/// are deterministic.
///
/// The degenerate relations over the empty attribute set follow standard
/// convention: `{}` (the empty relation, a join annihilator) and `{()}` (the
/// single empty tuple, the join identity).
///
/// # Examples
///
/// ```
/// use gyo_schema::{AttrSet, Catalog};
/// use gyo_relation::Relation;
///
/// let mut cat = Catalog::alphabetic();
/// let ab = AttrSet::parse("ab", &mut cat).unwrap();
/// let bc = AttrSet::parse("bc", &mut cat).unwrap();
/// let r = Relation::new(ab, vec![vec![1, 10], vec![2, 20]]);
/// let s = Relation::new(bc, vec![vec![10, 100], vec![30, 300]]);
/// let j = r.natural_join(&s);
/// assert_eq!(j.len(), 1); // only b=10 matches
/// assert_eq!(j.tuples()[0], vec![1, 10, 100]);
/// ```
pub struct Relation {
    attrs: AttrSet,
    tuples: Vec<Vec<u64>>,
    cache: RelCache,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Self {
            attrs: self.attrs.clone(),
            tuples: self.tuples.clone(),
            cache: self.cache.clone(),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.attrs == other.attrs && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// Creates a relation, validating arity and normalizing (sort + dedup).
    ///
    /// # Panics
    ///
    /// Panics if any tuple's arity differs from `attrs.len()`.
    pub fn new(attrs: AttrSet, mut tuples: Vec<Vec<u64>>) -> Self {
        for t in &tuples {
            assert_eq!(
                t.len(),
                attrs.len(),
                "tuple arity {} does not match schema arity {}",
                t.len(),
                attrs.len()
            );
        }
        tuples.sort_unstable();
        tuples.dedup();
        Self {
            attrs,
            tuples,
            cache: RelCache::default(),
        }
    }

    /// Internal constructor for tuples already sorted and deduplicated.
    fn from_normalized(attrs: AttrSet, tuples: Vec<Vec<u64>>) -> Self {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]), "not normalized");
        Self {
            attrs,
            tuples,
            cache: RelCache::default(),
        }
    }

    /// The empty relation over `attrs` (no tuples).
    pub fn empty(attrs: AttrSet) -> Self {
        Self::from_normalized(attrs, Vec::new())
    }

    /// The join identity: the relation over `∅` holding the single empty
    /// tuple.
    pub fn identity() -> Self {
        Self::from_normalized(AttrSet::empty(), vec![Vec::new()])
    }

    /// The relation's attribute set.
    #[inline]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The normalized (sorted, deduplicated) tuples.
    #[inline]
    pub fn tuples(&self) -> &[Vec<u64>] {
        &self.tuples
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test (`tuple` in column order).
    pub fn contains(&self, tuple: &[u64]) -> bool {
        self.tuples
            .binary_search_by(|t| t.as_slice().cmp(tuple))
            .is_ok()
    }

    /// Positions (column indices) of `attrs` within this relation's columns.
    ///
    /// # Panics
    ///
    /// Panics if some attribute is not part of this relation.
    fn positions_of(&self, attrs: &AttrSet) -> Vec<usize> {
        attrs
            .iter()
            .map(|a| {
                self.attrs
                    .as_slice()
                    .binary_search(&a)
                    .expect("attribute not in relation schema")
            })
            .collect()
    }

    /// Cached [`Self::positions_of`]: the first call per `attrs` derives the
    /// positions, later calls (including on clones) return the shared copy.
    pub(crate) fn positions_cached(&self, attrs: &AttrSet) -> Arc<Vec<usize>> {
        let mut inner = self.cache.inner().lock().expect("relation cache lock");
        if let Some(pos) = inner.positions.get(attrs) {
            return Arc::clone(pos);
        }
        let pos = Arc::new(self.positions_of(attrs));
        inner.positions.insert(attrs.clone(), Arc::clone(&pos));
        pos
    }

    /// The hash-join build table over `key ⊆ attrs(self)`: key values (in
    /// column order) → indices of the tuples carrying them. Built once per
    /// key set and cached, so repeated joins/semijoins against this relation
    /// (or clones of it) reuse the build.
    pub(crate) fn key_index(&self, key: &AttrSet) -> Arc<KeyIndex> {
        if let Some(table) = self
            .cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .builds
            .get(key)
        {
            return Arc::clone(table);
        }
        // Build outside the lock: the derivation is pure, so a racing
        // builder at worst duplicates work.
        let pos = self.positions_of(key);
        let mut table = KeyIndex::default();
        let mut scratch: Vec<u64> = Vec::with_capacity(pos.len());
        for (i, t) in self.tuples.iter().enumerate() {
            scratch.clear();
            scratch.extend(pos.iter().map(|&p| t[p]));
            if let Some(bucket) = table.get_mut(scratch.as_slice()) {
                bucket.push(i);
            } else {
                table.insert(scratch.clone(), vec![i]);
            }
        }
        let table = Arc::new(table);
        self.cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .builds
            .entry(key.clone())
            .or_insert_with(|| Arc::clone(&table))
            .clone()
    }

    /// The flat key column over `key ⊆ attrs(self)` (see [`KeyColumn`]),
    /// extracted once and cached — the batched semijoin executor reads
    /// these instead of chasing per-tuple heap pointers.
    pub(crate) fn key_column(&self, key: &AttrSet) -> Arc<KeyColumn> {
        if let Some(col) = self
            .cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .columns
            .get(key)
        {
            return Arc::clone(col);
        }
        let pos = self.positions_of(key);
        let col = Arc::new(KeyColumn::extract(&self.tuples, &pos));
        self.cache
            .inner()
            .lock()
            .expect("relation cache lock")
            .columns
            .entry(key.clone())
            .or_insert_with(|| Arc::clone(&col))
            .clone()
    }

    /// The relation restricted to the tuples whose mask bit is set
    /// (`mask.len() == self.len()`); `kept` is the popcount. Returns a
    /// plain clone when everything survives.
    pub(crate) fn filter_by_mask(&self, mask: &[bool], kept: usize) -> Relation {
        debug_assert_eq!(mask.len(), self.tuples.len());
        if kept == self.tuples.len() {
            return self.clone();
        }
        let tuples: Vec<Vec<u64>> = self
            .tuples
            .iter()
            .zip(mask)
            .filter(|(_, &alive)| alive)
            .map(|(t, _)| t.clone())
            .collect();
        Relation::from_normalized(self.attrs.clone(), tuples)
    }

    /// Projection `π_X(self)`.
    ///
    /// # Panics
    ///
    /// Panics if `x ⊄ attrs`; the paper always projects onto subsets.
    pub fn project(&self, x: &AttrSet) -> Relation {
        assert!(
            x.is_subset(&self.attrs),
            "projection target must be a subset of the relation schema"
        );
        if *x == self.attrs {
            return self.clone();
        }
        let pos = self.positions_cached(x);
        let mut tuples: Vec<Vec<u64>> = self
            .tuples
            .iter()
            .map(|t| pos.iter().map(|&p| t[p]).collect())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        Relation::from_normalized(x.clone(), tuples)
    }

    /// Natural join `self ⋈ other` (a cross product when the schemas are
    /// disjoint). Hash join on the shared attributes, building on the
    /// smaller side.
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let shared = build.attrs.intersect(&probe.attrs);
        let out_attrs = build.attrs.union(&probe.attrs);

        let probe_key = probe.positions_cached(&shared);
        // Output columns: for each output attribute, where to copy it from.
        // Prefer the probe side so probe tuples copy contiguously when the
        // schemas are disjoint.
        enum Src {
            Build(usize),
            Probe(usize),
        }
        let srcs: Vec<Src> = out_attrs
            .iter()
            .map(|a| match probe.attrs.as_slice().binary_search(&a) {
                Ok(p) => Src::Probe(p),
                Err(_) => Src::Build(
                    build
                        .attrs
                        .as_slice()
                        .binary_search(&a)
                        .expect("output attr comes from one side"),
                ),
            })
            .collect();

        let table = build.key_index(&shared);

        let mut tuples = Vec::new();
        let mut key = Vec::with_capacity(probe_key.len());
        for pt in &probe.tuples {
            key.clear();
            key.extend(probe_key.iter().map(|&p| pt[p]));
            if let Some(matches) = table.get(key.as_slice()) {
                for &bi in matches {
                    let bt = &build.tuples[bi];
                    let out: Vec<u64> = srcs
                        .iter()
                        .map(|s| match *s {
                            Src::Build(p) => bt[p],
                            Src::Probe(p) => pt[p],
                        })
                        .collect();
                    tuples.push(out);
                }
            }
        }
        tuples.sort_unstable();
        tuples.dedup();
        Relation::from_normalized(out_attrs, tuples)
    }

    /// Natural semijoin `self ⋉ other = π_self(self ⋈ other)`, computed
    /// directly by filtering (no join materialization). The build over
    /// `other`'s key columns comes from its cache, so repeated semijoins
    /// against the same relation reuse it.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared = self.attrs.intersect(&other.attrs);
        let my_key = self.positions_cached(&shared);
        let index = other.key_index(&shared);
        self.semijoin_filtered(&my_key, &index)
    }

    /// The probe half of a semijoin: keeps the tuples whose `my_key` columns
    /// hit `index`. Reuses one scratch key buffer across probe tuples.
    pub(crate) fn semijoin_filtered(&self, my_key: &[usize], index: &KeyIndex) -> Relation {
        let mut key: Vec<u64> = Vec::with_capacity(my_key.len());
        let tuples: Vec<Vec<u64>> = self
            .tuples
            .iter()
            .filter(|t| {
                key.clear();
                key.extend(my_key.iter().map(|&p| t[p]));
                index.contains_key(key.as_slice())
            })
            .cloned()
            .collect();
        // already sorted and unique: filtering preserves both
        Relation::from_normalized(self.attrs.clone(), tuples)
    }

    /// Set union of two relations over the same attribute set.
    ///
    /// # Panics
    ///
    /// Panics if the attribute sets differ.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.attrs, other.attrs, "union requires equal schemas");
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        tuples.sort_unstable();
        tuples.dedup();
        Relation::from_normalized(self.attrs.clone(), tuples)
    }

    /// Whether `self ⊆ other` as tuple sets (same attribute set required).
    pub fn is_subset(&self, other: &Relation) -> bool {
        assert_eq!(self.attrs, other.attrs, "comparison requires equal schemas");
        self.tuples.iter().all(|t| other.contains(t))
    }

    /// Renders a small relation as an ASCII table for diagnostics.
    pub fn to_table(&self, cat: &Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let header: Vec<&str> = self.attrs.iter().map(|a| cat.name(a)).collect();
        writeln!(out, "| {} |", header.join(" | ")).expect("write to string");
        for t in &self.tuples {
            let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            writeln!(out, "| {} |", row.join(" | ")).expect("write to string");
        }
        out
    }

    /// The attribute ids in column order (sorted).
    pub fn columns(&self) -> &[AttrId] {
        self.attrs.as_slice()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation({:?}, {} tuples)",
            self.attrs,
            self.tuples.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(raw: &[u32]) -> AttrSet {
        AttrSet::from_raw(raw)
    }

    #[test]
    fn construction_normalizes() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![2, 2], vec![1, 1], vec![2, 2]]);
        assert_eq!(r.tuples(), &[vec![1, 1], vec![2, 2]]);
        assert!(r.contains(&[2, 2]));
        assert!(!r.contains(&[3, 3]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Relation::new(attrs(&[0, 1]), vec![vec![1]]);
    }

    #[test]
    fn projection_dedups() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![1, 20], vec![2, 10]]);
        let p = r.project(&attrs(&[0]));
        assert_eq!(p.tuples(), &[vec![1], vec![2]]);
    }

    #[test]
    fn projection_onto_empty_set() {
        let r = Relation::new(attrs(&[0]), vec![vec![7]]);
        let p = r.project(&AttrSet::empty());
        assert_eq!(p, Relation::identity());
        let e = Relation::empty(attrs(&[0]));
        assert!(e.project(&AttrSet::empty()).is_empty());
    }

    #[test]
    fn join_on_shared_attribute() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![10, 100], vec![10, 101]]);
        let j = r.natural_join(&s);
        assert_eq!(j.attrs(), &attrs(&[0, 1, 2]));
        assert_eq!(j.tuples(), &[vec![1, 10, 100], vec![1, 10, 101]]);
    }

    #[test]
    fn join_is_commutative() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20], vec![3, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![20, 9], vec![10, 8]]);
        assert_eq!(r.natural_join(&s), s.natural_join(&r));
    }

    #[test]
    fn disjoint_join_is_cross_product() {
        let r = Relation::new(attrs(&[0]), vec![vec![1], vec![2]]);
        let s = Relation::new(attrs(&[1]), vec![vec![10], vec![20]]);
        let j = r.natural_join(&s);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_identities() {
        let r = Relation::new(attrs(&[0]), vec![vec![1], vec![2]]);
        assert_eq!(r.natural_join(&Relation::identity()), r);
        let annihilator = Relation::empty(AttrSet::empty());
        assert!(r.natural_join(&annihilator).is_empty());
    }

    #[test]
    fn self_join_is_idempotent() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        assert_eq!(r.natural_join(&r), r);
    }

    #[test]
    fn semijoin_filters_left_side() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let s = Relation::new(attrs(&[1, 2]), vec![vec![10, 5]]);
        let sj = r.semijoin(&s);
        assert_eq!(sj.attrs(), r.attrs());
        assert_eq!(sj.tuples(), &[vec![1, 10]]);
        // definition check: R ⋉ S = π_R(R ⋈ S)
        assert_eq!(sj, r.natural_join(&s).project(r.attrs()));
    }

    #[test]
    fn semijoin_with_disjoint_nonempty_relation_is_identity() {
        let r = Relation::new(attrs(&[0]), vec![vec![1]]);
        let s = Relation::new(attrs(&[5]), vec![vec![9]]);
        assert_eq!(r.semijoin(&s), r);
        // ... and with an empty disjoint relation it empties out.
        let nothing = Relation::empty(attrs(&[5]));
        assert!(r.semijoin(&nothing).is_empty());
    }

    #[test]
    fn union_and_subset() {
        let r = Relation::new(attrs(&[0]), vec![vec![1]]);
        let s = Relation::new(attrs(&[0]), vec![vec![2]]);
        let u = r.union(&s);
        assert_eq!(u.len(), 2);
        assert!(r.is_subset(&u));
        assert!(!u.is_subset(&r));
    }

    #[test]
    fn clones_share_derivation_caches() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let key = attrs(&[1]);
        let idx = r.key_index(&key);
        assert_eq!(idx.len(), 2);
        let clone = r.clone();
        assert!(
            Arc::ptr_eq(&idx, &clone.key_index(&key)),
            "clone reuses the build"
        );
        assert!(Arc::ptr_eq(
            &r.positions_cached(&key),
            &clone.positions_cached(&key)
        ));
    }

    #[test]
    fn equality_ignores_caches() {
        let a = Relation::new(attrs(&[0, 1]), vec![vec![1, 2]]);
        let b = Relation::new(attrs(&[0, 1]), vec![vec![1, 2]]);
        let _ = a.key_index(&attrs(&[0]));
        assert_eq!(a, b);
        assert_eq!(b, a);
    }

    #[test]
    fn cached_build_survives_repeated_semijoins() {
        let r = Relation::new(attrs(&[0, 1]), vec![vec![1, 10], vec![2, 20]]);
        let hub = Relation::new(attrs(&[1, 2]), vec![vec![10, 5], vec![30, 6]]);
        let first = r.semijoin(&hub);
        let second = r.semijoin(&hub); // hits hub's cached key index
        assert_eq!(first, second);
        assert_eq!(first.tuples(), &[vec![1, 10]]);
    }

    #[test]
    fn table_rendering() {
        let mut cat = Catalog::alphabetic();
        let ab = AttrSet::parse("ab", &mut cat).unwrap();
        let r = Relation::new(ab, vec![vec![1, 2]]);
        let t = r.to_table(&cat);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
