//! Compiled semijoin programs over relation vectors — selection-vector
//! execution.
//!
//! A full-reducer semijoin program applies `2·(n−1)` semijoins whose key
//! attributes depend only on the relation *schemas*, never on the data.
//! [`SemijoinStep`] precompiles the shared attribute set once per schema,
//! and [`semijoin_program`] executes a whole step sequence without
//! materializing intermediate relations: semijoins only ever *remove*
//! tuples, so the executor tracks one reusable [`SelVec`] per slot (the
//! surviving row indices plus a generation-stamped bitset) and runs every
//! step over the relations' cached flat key columns (keys of width ≤ 2
//! packed into scalars, wider keys in one packed side buffer).
//!
//! Every step is two columnar kernels:
//!
//! 1. **Build** a membership structure over the *selected* source keys —
//!    a [`StampTable`] (direct-map, one store per key) when the packed
//!    `u64` key range is small, a reused hash set otherwise, and a reused
//!    sorted `(hash, row)` spine for wide keys (probes re-compare the
//!    actual key slices through the packed side buffers — a chunked memcmp
//!    — so hash collisions cannot lie).
//! 2. **Probe** the target's key column through the selection-vector
//!    retain kernels ([`SelVec::retain_u64`]&c.): fixed-size chunks,
//!    branchless mask accumulation, no per-row branching.
//!
//! All scratch state lives in an [`ExecScratch`] that is reused across
//! steps *and* across whole program runs, so after warm-up (first run at a
//! given shape) a full-reducer pass over k relations performs **zero heap
//! allocation per step** — the repo-level allocation-counter test
//! (`crates/relation/tests/alloc.rs`) pins this down. Surviving tuples are
//! materialized once, at the end, and only for slots that actually lost
//! tuples.
//!
//! Because the key columns are cached *on the relations* (and shared by
//! clones), repeated executions over the same state — the plan-cache usage
//! pattern of the full-reducer engine — pay the column extraction only
//! once.

use std::hash::{Hash, Hasher};

use gyo_schema::{AttrSet, FxHashSet, FxHasher};

use crate::kernels::{SelVec, StampTable};
use crate::relation::{KeyColumn, Relation};

/// One precompiled semijoin statement
/// `rels[target] := rels[target] ⋉ rels[source]`, with the shared (key)
/// attribute set derived ahead of execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemijoinStep {
    target: usize,
    source: usize,
    shared: AttrSet,
}

impl SemijoinStep {
    /// Compiles the step for fixed relation schemas (`schemas[i]` is the
    /// attribute set of slot `i`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn new(schemas: &[AttrSet], target: usize, source: usize) -> Self {
        let shared = schemas[target].intersect(&schemas[source]);
        Self {
            target,
            source,
            shared,
        }
    }

    /// Slot of the relation being filtered (and overwritten).
    #[inline]
    pub fn target(&self) -> usize {
        self.target
    }

    /// Slot of the relation filtered against.
    #[inline]
    pub fn source(&self) -> usize {
        self.source
    }

    /// The semijoin key: `schema(target) ∩ schema(source)`.
    #[inline]
    pub fn key(&self) -> &AttrSet {
        &self.shared
    }
}

/// Reusable execution state for [`semijoin_program_with`]: one selection
/// vector per slot plus the per-step membership scratch (stamp table, hash
/// sets per packed key width, the wide-key hash spine). Everything is
/// grow-only — steps after warm-up allocate nothing.
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// Per-slot liveness (index `i` tracks `rels[i]`).
    sel: Vec<SelVec>,
    /// Direct-map membership for small-range packed `u64` keys.
    stamp: StampTable,
    /// Hash-set fallback for packed `u64` keys with a large value range.
    one: FxHashSet<u64>,
    /// Membership for packed width-2 (`u128`) keys.
    two: FxHashSet<u128>,
    /// Wide-key membership spine: `(fxhash(key), source row)`, sorted by
    /// hash; probes binary-search the hash then memcmp the key slices.
    wide: Vec<(u64, u32)>,
}

impl ExecScratch {
    /// A fresh scratch (everything warms up on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_slots(&mut self, n: usize) {
        if self.sel.len() < n {
            self.sel.resize_with(n, SelVec::default);
        }
    }
}

#[inline]
fn hash_wide(key: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Executes a compiled semijoin program in place:
/// `rels[step.target] := rels[step.target] ⋉ rels[step.source]` for each
/// step, in order. Unlike §6 program semantics (every statement creates a
/// new relation), slots are overwritten — which is exactly the
/// Bernstein–Chiu reading where each site updates its own state.
///
/// Allocates a fresh [`ExecScratch`] per call; callers that execute
/// programs repeatedly (the cached full-reducer engine) should hold one
/// scratch and use [`semijoin_program_with`].
///
/// # Panics
///
/// Panics if a step's indices are out of range; debug builds also check
/// that each step's compiled key matches the slot schemas.
pub fn semijoin_program(rels: &mut [Relation], steps: &[SemijoinStep]) {
    let mut scratch = ExecScratch::new();
    semijoin_program_with(rels, steps, &mut scratch);
}

/// [`semijoin_program`] with caller-owned scratch: selection vectors and
/// membership buffers are reused across calls, making every step
/// allocation-free after the first run at a given shape.
pub fn semijoin_program_with(
    rels: &mut [Relation],
    steps: &[SemijoinStep],
    scratch: &mut ExecScratch,
) {
    scratch.ensure_slots(rels.len());
    for (sel, rel) in scratch.sel.iter_mut().zip(rels.iter()) {
        sel.reset(rel.len());
    }
    for step in steps {
        debug_assert!(
            step.shared.is_subset(rels[step.target].attrs())
                && step.shared.is_subset(rels[step.source].attrs()),
            "step compiled for different schemas"
        );
        apply_step(rels, scratch, step);
    }
    for (rel, sel) in rels.iter_mut().zip(&scratch.sel) {
        if sel.len() < rel.len() {
            *rel = rel.gather_selected(sel);
        }
    }
}

fn apply_step(rels: &[Relation], scratch: &mut ExecScratch, step: &SemijoinStep) {
    let target = &rels[step.target];
    let source = &rels[step.source];
    if step.target == step.source {
        return; // R ⋉ R = R
    }
    if scratch.sel[step.target].is_empty() {
        return; // ∅ ⋉ S = ∅
    }
    if scratch.sel[step.source].is_empty() {
        // R ⋉ ∅ = ∅: kill the whole target.
        scratch.sel[step.target].clear();
        return;
    }

    let source_col = source.key_column(&step.shared);
    if matches!(*source_col, KeyColumn::Empty) {
        return; // nonempty source, empty key: every target tuple matches
    }
    let target_col = target.key_column(&step.shared);

    // Split borrows: the target's SelVec is mutated by the probe while the
    // source's is only read during the build.
    let (sel_lo, sel_hi) = scratch.sel.split_at_mut(step.target.max(step.source));
    let (tsel, ssel): (&mut SelVec, &SelVec) = if step.target > step.source {
        (&mut sel_hi[0], &sel_lo[step.source])
    } else {
        (&mut sel_lo[step.target], &sel_hi[0])
    };

    // Build membership over the *selected* source keys, then probe the
    // target's key column through the chunked retain kernels.
    match (&*source_col, &*target_col) {
        (
            KeyColumn::One {
                vals: svals,
                min,
                max,
            },
            KeyColumn::One { vals: tvals, .. },
        ) => {
            // The column's precomputed range bounds the *selected* keys, so
            // a small span gets the direct-map table (one store per insert,
            // one load per probe) with no range rescan.
            if scratch.stamp.begin(*min, *max) {
                let stamp = &mut scratch.stamp;
                ssel.for_each(|i| stamp.insert(svals[i]));
                let stamp = &scratch.stamp;
                tsel.retain_u64(tvals, |k| stamp.contains(k));
            } else {
                scratch.one.clear();
                let set = &mut scratch.one;
                ssel.for_each(|i| {
                    set.insert(svals[i]);
                });
                let set = &scratch.one;
                tsel.retain_u64(tvals, |k| set.contains(&k));
            }
        }
        (KeyColumn::Two(svals), KeyColumn::Two(tvals)) => {
            scratch.two.clear();
            let set = &mut scratch.two;
            ssel.for_each(|i| {
                set.insert(svals[i]);
            });
            let set = &scratch.two;
            tsel.retain_u128(tvals, |k| set.contains(&k));
        }
        (
            KeyColumn::Wide { width, keys: skeys },
            KeyColumn::Wide {
                width: twidth,
                keys: tkeys,
            },
        ) => {
            debug_assert_eq!(width, twidth, "key widths match across a step");
            let w = *width;
            scratch.wide.clear();
            let spine = &mut scratch.wide;
            ssel.for_each(|i| spine.push((hash_wide(&skeys[i * w..(i + 1) * w]), i as u32)));
            spine.sort_unstable_by_key(|&(h, _)| h);
            let spine = &scratch.wide;
            tsel.retain_wide(tkeys, w, |key| {
                let h = hash_wide(key);
                let mut at = spine.partition_point(|&(sh, _)| sh < h);
                // Collisions re-compare the actual key slices (chunked
                // memcmp under slice ==), so a hash match never lies.
                while let Some(&(sh, si)) = spine.get(at) {
                    if sh != h {
                        break;
                    }
                    let si = si as usize;
                    if &skeys[si * w..(si + 1) * w] == key {
                        return true;
                    }
                    at += 1;
                }
                false
            });
        }
        _ => unreachable!("key widths match across a step"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(raw: &[u32]) -> AttrSet {
        AttrSet::from_raw(raw)
    }

    #[test]
    fn step_compiles_shared_attributes() {
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2])];
        let step = SemijoinStep::new(&schemas, 0, 1);
        assert_eq!(step.target(), 0);
        assert_eq!(step.source(), 1);
        assert_eq!(step.key(), &attrs(&[1]));
    }

    #[test]
    fn program_matches_sequential_semijoins() {
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2]), attrs(&[2, 3])];
        let mut rels = vec![
            Relation::new(
                schemas[0].clone(),
                vec![vec![1, 10], vec![2, 20], vec![3, 30]],
            ),
            Relation::new(schemas[1].clone(), vec![vec![10, 100], vec![20, 200]]),
            Relation::new(schemas[2].clone(), vec![vec![100, 7]]),
        ];
        let expected = {
            let mut r = rels.clone();
            r[1] = r[1].semijoin(&r[2]);
            r[0] = r[0].semijoin(&r[1]);
            r
        };
        let steps = vec![
            SemijoinStep::new(&schemas, 1, 2),
            SemijoinStep::new(&schemas, 0, 1),
        ];
        semijoin_program(&mut rels, &steps);
        assert_eq!(rels, expected);
        assert_eq!(rels[0].to_vecs(), vec![vec![1, 10]]);
    }

    #[test]
    fn masked_execution_respects_earlier_filtering() {
        // The same slot is filtered twice; the second step must see the
        // first step's surviving tuples, not the original relation.
        let schemas = vec![attrs(&[0, 1]), attrs(&[1]), attrs(&[0])];
        let mut rels = vec![
            Relation::new(
                schemas[0].clone(),
                vec![vec![1, 10], vec![2, 10], vec![2, 20]],
            ),
            Relation::new(schemas[1].clone(), vec![vec![10]]),
            // After step 1, slot 0 = {(1,10), (2,10)}; its a-values {1, 2}
            // both hit slot 2, but slot 2 is then filtered by slot 0 too.
            Relation::new(schemas[2].clone(), vec![vec![1], vec![3]]),
        ];
        let steps = vec![
            SemijoinStep::new(&schemas, 0, 1), // drop (2,20)
            SemijoinStep::new(&schemas, 2, 0), // keep a=1, drop a=3
            SemijoinStep::new(&schemas, 0, 2), // keep only a=1 rows
        ];
        semijoin_program(&mut rels, &steps);
        assert_eq!(rels[0].to_vecs(), vec![vec![1, 10]]);
        assert_eq!(rels[2].to_vecs(), vec![vec![1]]);
    }

    #[test]
    fn disjoint_step_keeps_or_empties() {
        let schemas = vec![attrs(&[0]), attrs(&[5])];
        let mut rels = vec![
            Relation::new(schemas[0].clone(), vec![vec![1]]),
            Relation::new(schemas[1].clone(), vec![vec![9]]),
        ];
        let step = SemijoinStep::new(&schemas, 0, 1);
        assert!(step.key().is_empty());
        semijoin_program(&mut rels, std::slice::from_ref(&step));
        assert_eq!(rels[0].len(), 1, "disjoint nonempty source keeps tuples");

        rels[1] = Relation::empty(attrs(&[5]));
        semijoin_program(&mut rels, std::slice::from_ref(&step));
        assert!(rels[0].is_empty(), "disjoint empty source annihilates");
    }

    #[test]
    fn wide_keys_fall_back_correctly() {
        let schemas = vec![attrs(&[0, 1, 2, 3]), attrs(&[0, 1, 2, 9])];
        let mut rels = vec![
            Relation::new(
                schemas[0].clone(),
                vec![vec![1, 2, 3, 4], vec![1, 2, 9, 4], vec![5, 6, 7, 8]],
            ),
            Relation::new(schemas[1].clone(), vec![vec![1, 2, 3, 0], vec![5, 6, 0, 0]]),
        ];
        let expected = rels[0].semijoin(&rels[1]);
        semijoin_program(&mut rels, &[SemijoinStep::new(&schemas, 0, 1)]);
        assert_eq!(rels[0], expected);
        assert_eq!(rels[0].len(), 1);
    }

    #[test]
    fn empty_target_short_circuits() {
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2])];
        let mut rels = vec![
            Relation::empty(schemas[0].clone()),
            Relation::new(schemas[1].clone(), vec![vec![1, 2]]),
        ];
        semijoin_program(&mut rels, &[SemijoinStep::new(&schemas, 0, 1)]);
        assert!(rels[0].is_empty());
    }

    #[test]
    fn large_key_range_uses_the_hash_fallback() {
        // Keys straddling the whole u64 range exceed StampTable::MAX_RANGE,
        // forcing the hash-set membership path; semantics must not move.
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2])];
        let huge = u64::MAX - 3;
        let mut rels = vec![
            Relation::new(
                schemas[0].clone(),
                vec![vec![1, 0], vec![2, huge], vec![3, 500]],
            ),
            Relation::new(schemas[1].clone(), vec![vec![huge, 9], vec![0, 9]]),
        ];
        let expected = rels[0].semijoin(&rels[1]);
        semijoin_program(&mut rels, &[SemijoinStep::new(&schemas, 0, 1)]);
        assert_eq!(rels[0], expected);
        assert_eq!(rels[0].len(), 2);
    }

    #[test]
    fn scratch_reuse_across_programs_is_sound() {
        // Run two different programs through one scratch: stale selections
        // or stale membership from run 1 must not leak into run 2.
        let mut scratch = ExecScratch::new();
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2]), attrs(&[2, 3])];
        let mk = |tuples: Vec<Vec<u64>>, k: usize| Relation::new(schemas[k].clone(), tuples);
        let mut rels = vec![
            mk(vec![vec![1, 10], vec![2, 20], vec![3, 30]], 0),
            mk(vec![vec![10, 100], vec![20, 200]], 1),
            mk(vec![vec![100, 7]], 2),
        ];
        let steps = vec![
            SemijoinStep::new(&schemas, 1, 2),
            SemijoinStep::new(&schemas, 0, 1),
        ];
        let mut expected = rels.clone();
        expected[1] = expected[1].semijoin(&expected[2]);
        expected[0] = expected[0].semijoin(&expected[1]);
        semijoin_program_with(&mut rels, &steps, &mut scratch);
        assert_eq!(rels, expected);

        // Second program: different shape, previously-dead slots revive.
        let mut rels2 = vec![
            mk(vec![vec![7, 70], vec![8, 80]], 0),
            mk(vec![vec![70, 1], vec![80, 1], vec![90, 1]], 1),
            mk(vec![vec![1, 1]], 2),
        ];
        let mut expected2 = rels2.clone();
        expected2[1] = expected2[1].semijoin(&expected2[0]);
        let steps2 = vec![SemijoinStep::new(&schemas, 1, 0)];
        semijoin_program_with(&mut rels2, &steps2, &mut scratch);
        assert_eq!(rels2, expected2);
        assert_eq!(rels2[1].len(), 2);
    }
}
