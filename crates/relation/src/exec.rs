//! Compiled semijoin programs over relation vectors.
//!
//! A full-reducer semijoin program applies `2·(n−1)` semijoins whose key
//! attributes depend only on the relation *schemas*, never on the data.
//! [`SemijoinStep`] precompiles the shared attribute set once per schema,
//! and [`semijoin_program`] executes a whole step sequence without
//! materializing intermediate relations: semijoins only ever *remove*
//! tuples, so the executor tracks one alive-bitmask per slot and runs every
//! step over the relations' cached flat key columns (keys of width ≤ 2
//! packed into scalars) — no per-tuple heap chasing, no per-step allocation
//! (membership scratch sets are reused across steps). Surviving tuples are materialized once, at the end, and
//! only for slots that actually lost tuples.
//!
//! Because the key columns are cached *on the relations* (and shared by
//! clones), repeated executions over the same state — the plan-cache usage
//! pattern of the full-reducer engine — pay the column extraction only
//! once.

use gyo_schema::{AttrSet, FxHashSet};

use crate::relation::{KeyColumn, Relation};

/// One precompiled semijoin statement
/// `rels[target] := rels[target] ⋉ rels[source]`, with the shared (key)
/// attribute set derived ahead of execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemijoinStep {
    target: usize,
    source: usize,
    shared: AttrSet,
}

impl SemijoinStep {
    /// Compiles the step for fixed relation schemas (`schemas[i]` is the
    /// attribute set of slot `i`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn new(schemas: &[AttrSet], target: usize, source: usize) -> Self {
        let shared = schemas[target].intersect(&schemas[source]);
        Self {
            target,
            source,
            shared,
        }
    }

    /// Slot of the relation being filtered (and overwritten).
    #[inline]
    pub fn target(&self) -> usize {
        self.target
    }

    /// Slot of the relation filtered against.
    #[inline]
    pub fn source(&self) -> usize {
        self.source
    }

    /// The semijoin key: `schema(target) ∩ schema(source)`.
    #[inline]
    pub fn key(&self) -> &AttrSet {
        &self.shared
    }
}

/// Per-slot liveness: which tuples of the slot's relation still survive.
struct Mask {
    alive: Vec<bool>,
    kept: usize,
}

impl Mask {
    fn full(len: usize) -> Self {
        Mask {
            alive: vec![true; len],
            kept: len,
        }
    }
}

/// Reusable membership scratch, one set per packed key width class. Wide
/// keys use a per-step set of borrowed slices instead (see [`apply_step`]):
/// the slices borrow the source's packed key buffer, so they cannot outlive
/// one step — but they also never allocate per row.
#[derive(Default)]
struct Scratch {
    one: FxHashSet<u64>,
    two: FxHashSet<u128>,
}

/// Executes a compiled semijoin program in place:
/// `rels[step.target] := rels[step.target] ⋉ rels[step.source]` for each
/// step, in order. Unlike §6 program semantics (every statement creates a
/// new relation), slots are overwritten — which is exactly the
/// Bernstein–Chiu reading where each site updates its own state.
///
/// # Panics
///
/// Panics if a step's indices are out of range; debug builds also check
/// that each step's compiled key matches the slot schemas.
pub fn semijoin_program(rels: &mut [Relation], steps: &[SemijoinStep]) {
    let mut masks: Vec<Option<Mask>> = (0..rels.len()).map(|_| None).collect();
    let mut scratch = Scratch::default();
    for step in steps {
        debug_assert!(
            step.shared.is_subset(rels[step.target].attrs())
                && step.shared.is_subset(rels[step.source].attrs()),
            "step compiled for different schemas"
        );
        apply_step(rels, &mut masks, &mut scratch, step);
    }
    for (rel, mask) in rels.iter_mut().zip(&masks) {
        if let Some(m) = mask {
            if m.kept < rel.len() {
                *rel = rel.filter_by_mask(&m.alive, m.kept);
            }
        }
    }
}

fn apply_step(
    rels: &[Relation],
    masks: &mut [Option<Mask>],
    scratch: &mut Scratch,
    step: &SemijoinStep,
) {
    let target = &rels[step.target];
    let source = &rels[step.source];
    let target_kept = masks[step.target].as_ref().map_or(target.len(), |m| m.kept);
    if target_kept == 0 {
        return; // ∅ ⋉ S = ∅
    }
    let source_kept = masks[step.source].as_ref().map_or(source.len(), |m| m.kept);
    if source_kept == 0 {
        // R ⋉ ∅ = ∅: kill the whole target.
        let mask = masks[step.target].get_or_insert_with(|| Mask::full(target.len()));
        mask.alive.fill(false);
        mask.kept = 0;
        return;
    }

    let source_col = source.key_column(&step.shared);
    if matches!(*source_col, KeyColumn::Empty) {
        return; // nonempty source, empty key: every target tuple matches
    }
    let target_col = target.key_column(&step.shared);

    // Membership set over the source's surviving key values…
    let source_alive = masks[step.source].as_ref().map(|m| m.alive.as_slice());
    let alive_at = |alive: Option<&[bool]>, i: usize| alive.map_or(true, |a| a[i]);
    // Wide keys borrow stride-indexed views of the source's packed key
    // buffer — no per-tuple allocation for any key width.
    let mut wide: FxHashSet<&[u64]> = FxHashSet::default();
    match &*source_col {
        KeyColumn::Empty => unreachable!("handled above"),
        KeyColumn::One(vals) => {
            scratch.one.clear();
            for (i, &v) in vals.iter().enumerate() {
                if alive_at(source_alive, i) {
                    scratch.one.insert(v);
                }
            }
        }
        KeyColumn::Two(vals) => {
            scratch.two.clear();
            for (i, &v) in vals.iter().enumerate() {
                if alive_at(source_alive, i) {
                    scratch.two.insert(v);
                }
            }
        }
        KeyColumn::Wide { width, keys } => {
            for (i, k) in keys.chunks_exact(*width).enumerate() {
                if alive_at(source_alive, i) {
                    wide.insert(k);
                }
            }
        }
    }

    // …then drop the target tuples whose key misses it.
    let mask = masks[step.target].get_or_insert_with(|| Mask::full(target.len()));
    match &*target_col {
        KeyColumn::Empty => unreachable!("key widths match across a step"),
        KeyColumn::One(vals) => {
            for (alive, v) in mask.alive.iter_mut().zip(vals) {
                if *alive && !scratch.one.contains(v) {
                    *alive = false;
                    mask.kept -= 1;
                }
            }
        }
        KeyColumn::Two(vals) => {
            for (alive, v) in mask.alive.iter_mut().zip(vals) {
                if *alive && !scratch.two.contains(v) {
                    *alive = false;
                    mask.kept -= 1;
                }
            }
        }
        KeyColumn::Wide { width, keys } => {
            for (alive, k) in mask.alive.iter_mut().zip(keys.chunks_exact(*width)) {
                if *alive && !wide.contains(k) {
                    *alive = false;
                    mask.kept -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(raw: &[u32]) -> AttrSet {
        AttrSet::from_raw(raw)
    }

    #[test]
    fn step_compiles_shared_attributes() {
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2])];
        let step = SemijoinStep::new(&schemas, 0, 1);
        assert_eq!(step.target(), 0);
        assert_eq!(step.source(), 1);
        assert_eq!(step.key(), &attrs(&[1]));
    }

    #[test]
    fn program_matches_sequential_semijoins() {
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2]), attrs(&[2, 3])];
        let mut rels = vec![
            Relation::new(
                schemas[0].clone(),
                vec![vec![1, 10], vec![2, 20], vec![3, 30]],
            ),
            Relation::new(schemas[1].clone(), vec![vec![10, 100], vec![20, 200]]),
            Relation::new(schemas[2].clone(), vec![vec![100, 7]]),
        ];
        let expected = {
            let mut r = rels.clone();
            r[1] = r[1].semijoin(&r[2]);
            r[0] = r[0].semijoin(&r[1]);
            r
        };
        let steps = vec![
            SemijoinStep::new(&schemas, 1, 2),
            SemijoinStep::new(&schemas, 0, 1),
        ];
        semijoin_program(&mut rels, &steps);
        assert_eq!(rels, expected);
        assert_eq!(rels[0].to_vecs(), vec![vec![1, 10]]);
    }

    #[test]
    fn masked_execution_respects_earlier_filtering() {
        // The same slot is filtered twice; the second step must see the
        // first step's surviving tuples, not the original relation.
        let schemas = vec![attrs(&[0, 1]), attrs(&[1]), attrs(&[0])];
        let mut rels = vec![
            Relation::new(
                schemas[0].clone(),
                vec![vec![1, 10], vec![2, 10], vec![2, 20]],
            ),
            Relation::new(schemas[1].clone(), vec![vec![10]]),
            // After step 1, slot 0 = {(1,10), (2,10)}; its a-values {1, 2}
            // both hit slot 2, but slot 2 is then filtered by slot 0 too.
            Relation::new(schemas[2].clone(), vec![vec![1], vec![3]]),
        ];
        let steps = vec![
            SemijoinStep::new(&schemas, 0, 1), // drop (2,20)
            SemijoinStep::new(&schemas, 2, 0), // keep a=1, drop a=3
            SemijoinStep::new(&schemas, 0, 2), // keep only a=1 rows
        ];
        semijoin_program(&mut rels, &steps);
        assert_eq!(rels[0].to_vecs(), vec![vec![1, 10]]);
        assert_eq!(rels[2].to_vecs(), vec![vec![1]]);
    }

    #[test]
    fn disjoint_step_keeps_or_empties() {
        let schemas = vec![attrs(&[0]), attrs(&[5])];
        let mut rels = vec![
            Relation::new(schemas[0].clone(), vec![vec![1]]),
            Relation::new(schemas[1].clone(), vec![vec![9]]),
        ];
        let step = SemijoinStep::new(&schemas, 0, 1);
        assert!(step.key().is_empty());
        semijoin_program(&mut rels, std::slice::from_ref(&step));
        assert_eq!(rels[0].len(), 1, "disjoint nonempty source keeps tuples");

        rels[1] = Relation::empty(attrs(&[5]));
        semijoin_program(&mut rels, std::slice::from_ref(&step));
        assert!(rels[0].is_empty(), "disjoint empty source annihilates");
    }

    #[test]
    fn wide_keys_fall_back_correctly() {
        let schemas = vec![attrs(&[0, 1, 2, 3]), attrs(&[0, 1, 2, 9])];
        let mut rels = vec![
            Relation::new(
                schemas[0].clone(),
                vec![vec![1, 2, 3, 4], vec![1, 2, 9, 4], vec![5, 6, 7, 8]],
            ),
            Relation::new(schemas[1].clone(), vec![vec![1, 2, 3, 0], vec![5, 6, 0, 0]]),
        ];
        let expected = rels[0].semijoin(&rels[1]);
        semijoin_program(&mut rels, &[SemijoinStep::new(&schemas, 0, 1)]);
        assert_eq!(rels[0], expected);
        assert_eq!(rels[0].len(), 1);
    }

    #[test]
    fn empty_target_short_circuits() {
        let schemas = vec![attrs(&[0, 1]), attrs(&[1, 2])];
        let mut rels = vec![
            Relation::empty(schemas[0].clone()),
            Relation::new(schemas[1].clone(), vec![vec![1, 2]]),
        ];
        semijoin_program(&mut rels, &[SemijoinStep::new(&schemas, 0, 1)]);
        assert!(rels[0].is_empty());
    }
}
