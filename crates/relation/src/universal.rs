//! Universal relations, join dependencies, and the join-of-projections
//! closure operator.
//!
//! A **join dependency** (jd) `⋈D` holds in a universal relation `I`
//! (written `I ⊨ ⋈D`) iff `π_{U(D)}(I) = ⋈_{R∈D}(π_R I)` (§5.1; when
//! `U(D) ⊊ U` this is an *embedded* jd).
//!
//! The operator `m_D(I) = ⋈_{R∈D}(π_R I)` is a closure operator on
//! relations over `U(D)`: it is extensive (`π_{U(D)}I ⊆ m_D(I)`), monotone,
//! and **idempotent** — `π_R(m_D(I)) = π_R(I)` for every `R ∈ D`, so a
//! single application produces a relation satisfying `⋈D`. This is the
//! library's stand-in for "all universal databases": every UR database state
//! `{π_R I}` is also `{π_R m_D(I)}` for the jd-satisfying universal relation
//! `m_D(I)`, which makes the paper's weak-equivalence and lossless-join
//! questions decidable on canonical instances (frozen tableaux) instead of
//! merely sampled.

use gyo_schema::DbSchema;

use crate::database::DbState;
use crate::relation::Relation;

/// Computes `m_D(I) = ⋈_{R∈D}(π_R I)` — the join of projections.
///
/// # Panics
///
/// Panics if `U(D) ⊄ attrs(I)`.
pub fn join_of_projections(universal: &Relation, d: &DbSchema) -> Relation {
    DbState::from_universal(universal, d).join_all()
}

/// Whether `I ⊨ ⋈D`: the (embedded) join dependency test
/// `π_{U(D)}(I) = ⋈_{R∈D}(π_R I)`.
///
/// # Panics
///
/// Panics if `U(D) ⊄ attrs(I)`.
pub fn satisfies_jd(universal: &Relation, d: &DbSchema) -> bool {
    let lhs = universal.project(&d.attributes());
    lhs == join_of_projections(universal, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::{AttrSet, Catalog};

    fn mk(universal: &str, rows: &[&[u64]], cat: &mut Catalog) -> Relation {
        let u = AttrSet::parse(universal, cat).unwrap();
        Relation::new(u, rows.iter().map(|r| r.to_vec()).collect())
    }

    #[test]
    fn jd_holds_for_product_like_relation() {
        let mut cat = Catalog::alphabetic();
        // I = {(a,b,c)} singleton always satisfies every jd over abc.
        let i = mk("abc", &[&[1, 2, 3]], &mut cat);
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        assert!(satisfies_jd(&i, &d));
    }

    #[test]
    fn jd_fails_on_correlated_relation() {
        let mut cat = Catalog::alphabetic();
        // Two tuples agreeing on b but differing on a and c: joining the
        // projections invents the mixed tuples.
        let i = mk("abc", &[&[1, 5, 10], &[2, 5, 20]], &mut cat);
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        assert!(!satisfies_jd(&i, &d));
        let closed = join_of_projections(&i, &d);
        assert_eq!(closed.len(), 4);
        assert!(i.is_subset(&closed));
    }

    #[test]
    fn m_d_is_idempotent() {
        let mut cat = Catalog::alphabetic();
        let i = mk(
            "abcd",
            &[
                &[1, 5, 10, 7],
                &[2, 5, 20, 7],
                &[2, 6, 20, 8],
                &[3, 6, 30, 8],
            ],
            &mut cat,
        );
        for schema in ["ab, bc, cd", "ab, bcd", "abc, bcd", "ad, bc, abd"] {
            let d = DbSchema::parse(schema, &mut cat).unwrap();
            let once = join_of_projections(&i, &d);
            let twice = join_of_projections(&once, &d);
            assert_eq!(once, twice, "m_D must be idempotent for {schema}");
            assert!(
                satisfies_jd(&once, &d),
                "m_D(I) must satisfy ⋈D for {schema}"
            );
        }
    }

    #[test]
    fn embedded_jd_projects_first() {
        let mut cat = Catalog::alphabetic();
        // U = abcd but the jd only covers abc.
        let i = mk("abcd", &[&[1, 2, 3, 4], &[1, 2, 3, 5]], &mut cat);
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        assert!(satisfies_jd(&i, &d));
    }

    #[test]
    fn empty_universal_relation_satisfies_every_jd() {
        let mut cat = Catalog::alphabetic();
        let u = AttrSet::parse("abc", &mut cat).unwrap();
        let i = Relation::empty(u);
        let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
        assert!(satisfies_jd(&i, &d));
    }
}
