//! Columnar kernels over the flat row-major buffer.
//!
//! PR 3 made [`Relation`](crate::Relation) flat row-major precisely so that
//! column-at-a-time execution becomes possible; this module is that layer.
//! Everything here operates on raw `&[u64]` buffers (stride = arity) and
//! never allocates per row:
//!
//! * [`ColumnarView`] — a column-oriented window over a flat buffer, with
//!   the **gather projection** kernel ([`ColumnarView::gather_into`]): the
//!   column-index map is computed once and values are copied in
//!   column-strided blocks (or, when the projected columns form one
//!   contiguous window, as per-row `memcpy`s) instead of a per-row scatter
//!   loop.
//! * [`SelVec`] — a reusable **selection vector**: the surviving row
//!   indices (`u32`, ascending) plus a generation-stamped bitset for O(1)
//!   membership, resettable in O(1) by bumping the generation. The
//!   [`SelVec::retain_u64`]/[`SelVec::retain_u128`]/[`SelVec::retain_wide`]
//!   kernels drive semijoin probes: keys are tested in fixed-size chunks of
//!   [`CHUNK`] lanes with **branchless mask accumulation** (one `u64`
//!   survivor mask per chunk, compacted by iterating its set bits), which
//!   keeps the inner loop free of per-row branches and friendly to the
//!   autovectorizer — no nightly `std::simd` involved.
//! * [`StampTable`] — generation-stamped direct-map membership for packed
//!   `u64` keys from a small value range: insert is one store, the probe is
//!   one load + compare (the fastest possible key comparison). The batched
//!   executor uses it whenever the alive key range fits
//!   [`StampTable::MAX_RANGE`] and falls back to hashing otherwise.
//! * [`gather_rows`] — materializes the rows a [`SelVec`] selected into a
//!   fresh flat buffer (selection preserves row order, so the output is
//!   already normalized).
//! * [`sort_dedup_packed`] — normalization support: rows of arity ≥ 3 whose
//!   values fit `arity · bits ≤ 128` are packed into `u64`/`u128` scalars,
//!   sorted as scalars, deduplicated, and unpacked — columnar pack/unpack
//!   loops plus a scalar sort instead of an index-permutation sort with
//!   per-comparison slice walks. Falls back (returns the buffer unchanged)
//!   for genuinely wide values, where the permutation sort remains the
//!   row-at-a-time fallback.
//!
//! The kernels are semantically invisible: every one of them agrees with a
//! naive per-row reference implementation (see `tests/prop.rs`), and the
//! engine differential suite holds the rewired operators to the same
//! answers as the definitional engine.

/// Number of lanes per probe chunk: one `u64` survivor mask's worth.
pub const CHUNK: usize = 64;

/// Value budget per block in column-at-a-time gather loops: each per-column
/// pass re-sweeps the block, so the block must stay cache-resident. The
/// row count per block is derived from this budget and the row width
/// ([`gather_block_rows`]) — a fixed row count would balloon to megabytes
/// on wide rows (the naive engine's accumulator reaches arity > 100) and
/// pay the whole block out of L2/L3 once per column.
const GATHER_BLOCK_VALUES: usize = 4096;

/// Rows per gather block for rows of `width` values: the [`GATHER_BLOCK_VALUES`]
/// budget divided by the width, floored at 16 rows (narrow rows cap at the
/// budget itself).
#[inline]
fn gather_block_rows(width: usize) -> usize {
    (GATHER_BLOCK_VALUES / width.max(1)).max(16)
}

/// A column-oriented view over a flat row-major buffer (`len` rows of
/// `arity` values each; row `i` at `data[i·arity..(i+1)·arity]`).
///
/// The view borrows the buffer; it is how kernels and operators talk about
/// "the columns of this relation" without committing to a second storage
/// format — the flat row-major buffer *is* the storage, the view only
/// changes the iteration order.
#[derive(Clone, Copy, Debug)]
pub struct ColumnarView<'a> {
    data: &'a [u64],
    arity: usize,
    len: usize,
}

impl<'a> ColumnarView<'a> {
    /// Wraps a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != len * arity`.
    pub fn new(data: &'a [u64], arity: usize, len: usize) -> Self {
        assert_eq!(data.len(), len * arity, "buffer/shape mismatch");
        Self { data, arity, len }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stride (tuple width).
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Iterates column `p` top to bottom (one value per row).
    ///
    /// # Panics
    ///
    /// Panics if `p >= arity` (on first `next()` via slice indexing).
    #[inline]
    pub fn col(&self, p: usize) -> impl ExactSizeIterator<Item = u64> + 'a {
        let arity = self.arity;
        self.data.chunks_exact(arity).map(move |row| row[p])
    }

    /// **Gather projection**: appends, row-major, the columns `pos` of every
    /// row to `out`. `pos` is the precomputed column-index map (projection
    /// target positions in this view's column order); it may repeat or
    /// reorder columns.
    ///
    /// Strategy: if `pos` is one contiguous ascending window the kernel
    /// degenerates to a per-row `copy_from_slice` (a straight memcpy of the
    /// window); otherwise it gathers **column-at-a-time** over cache-sized
    /// row blocks — for each output column one tight constant-stride loop,
    /// with the block bounding the working set.
    pub fn gather_into(&self, pos: &[usize], out: &mut Vec<u64>) {
        let w = pos.len();
        if w == 0 || self.len == 0 {
            return;
        }
        let arity = self.arity;
        // Contiguous-window fast path: pos = [p, p+1, …, p+w-1]. One
        // pre-size, then per-row fixed-length copies with no capacity
        // checks in the loop.
        if pos.windows(2).all(|ab| ab[1] == ab[0] + 1) {
            let p = pos[0];
            if w == arity {
                out.extend_from_slice(self.data);
                return;
            }
            let start = out.len();
            out.resize(start + self.len * w, 0);
            for (d, s) in out[start..]
                .chunks_exact_mut(w)
                .zip(self.data.chunks_exact(arity))
            {
                d.copy_from_slice(&s[p..p + w]);
            }
            return;
        }
        // Column-at-a-time gather, blocked.
        let start = out.len();
        out.resize(start + self.len * w, 0);
        let dst_all = &mut out[start..];
        let block = gather_block_rows(arity.max(w));
        let mut row0 = 0usize;
        while row0 < self.len {
            let rows = block.min(self.len - row0);
            let src = &self.data[row0 * arity..(row0 + rows) * arity];
            let dst = &mut dst_all[row0 * w..(row0 + rows) * w];
            for (j, &p) in pos.iter().enumerate() {
                // One constant-stride pass per output column; chunks_exact
                // lets the compiler drop the per-element bounds checks.
                for (d, s) in dst.chunks_exact_mut(w).zip(src.chunks_exact(arity)) {
                    d[j] = s[p];
                }
            }
            row0 += rows;
        }
    }
}

/// A reusable selection vector: which rows of a relation survive, stored as
/// ascending `u32` indices plus a generation-stamped bitset for O(1)
/// membership tests ([`SelVec::is_selected`]).
///
/// A fresh/reset `SelVec` is **dense** — every row `0..len` is selected and
/// no index storage is touched. The `retain_*` kernels switch it to sparse
/// on the first filtering step. Resetting costs O(1) (bump the generation,
/// mark dense); the backing buffers are reused across program runs, which is
/// what makes whole-program execution allocation-free after warm-up.
#[derive(Debug, Default)]
pub struct SelVec {
    /// Selected row indices, ascending; valid in `idx[..n]` when sparse.
    idx: Vec<u32>,
    /// Selected count (dense: the row count itself).
    n: usize,
    /// Dense ⇒ selection is exactly `0..n`.
    dense: bool,
    /// Generation-stamped bitset: row `i` is selected iff dense and `i < n`,
    /// or `stamp[i] == gen`.
    stamp: Vec<u32>,
    gen: u32,
}

impl SelVec {
    /// A fresh selection over `len` rows (dense: everything selected).
    pub fn full(len: usize) -> Self {
        let mut s = Self::default();
        s.reset(len);
        s
    }

    /// Re-aims the selection at a relation of `len` rows, selecting all of
    /// them. O(1): no buffer is cleared, the generation stamp invalidates
    /// the previous contents.
    pub fn reset(&mut self, len: usize) {
        assert!(len <= u32::MAX as usize, "row count exceeds u32 indices");
        self.n = len;
        self.dense = true;
        // Generation bump; on wrap, genuinely clear the stamps once.
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Number of selected rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether nothing is selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether no filtering step has dropped a row yet.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// O(1) membership: is row `i` selected?
    #[inline]
    pub fn is_selected(&self, i: usize) -> bool {
        if self.dense {
            i < self.n
        } else {
            self.stamp.get(i).is_some_and(|&s| s == self.gen)
        }
    }

    /// Calls `f` with each selected row index, ascending.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        if self.dense {
            (0..self.n).for_each(&mut f);
        } else {
            self.idx[..self.n].iter().for_each(|&i| f(i as usize));
        }
    }

    /// Drops every row from the selection (including from
    /// [`SelVec::is_selected`]'s view — the stamp generation advances so
    /// previously retained rows stop reporting as members).
    pub fn clear(&mut self) {
        self.n = 0;
        self.dense = false;
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Semijoin probe kernel over packed `u64` key columns: keeps exactly
    /// the selected rows whose key passes `test`. `keys[i]` is row `i`'s
    /// key. Keys are tested in chunks of [`CHUNK`] lanes with branchless
    /// mask accumulation; surviving indices are compacted by iterating the
    /// chunk mask's set bits.
    ///
    /// # Panics
    ///
    /// Panics if some selected index is out of `keys`' range.
    pub fn retain_u64(&mut self, keys: &[u64], mut test: impl FnMut(u64) -> bool) {
        self.retain_by_index(|i| test(keys[i]));
    }

    /// [`SelVec::retain_u64`] for packed `u128` (width-2) key columns.
    pub fn retain_u128(&mut self, keys: &[u128], mut test: impl FnMut(u128) -> bool) {
        self.retain_by_index(|i| test(keys[i]));
    }

    /// [`SelVec::retain_u64`] for wide keys packed row-major into one side
    /// buffer (`keys[i·width..(i+1)·width]` is row `i`'s key). The `test`
    /// closure compares whole key slices (a chunked memcmp under `==`).
    pub fn retain_wide(
        &mut self,
        keys: &[u64],
        width: usize,
        mut test: impl FnMut(&[u64]) -> bool,
    ) {
        assert!(width > 0, "wide keys have width >= 3");
        self.retain_by_index(|i| test(&keys[i * width..(i + 1) * width]));
    }

    /// The shared chunked retain loop: `keep(i)` decides row `i`'s fate.
    fn retain_by_index(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let total = self.n;
        if self.dense {
            // Grow-only warm-up: after the first filter at this row count
            // the buffers are reused as-is. (Sparse selections never hold
            // indices beyond the dense length they started from.)
            self.ensure_capacity(total);
        }
        let gen = self.gen;
        let mut out = 0usize;
        if self.dense {
            // Dense source: lanes are the row indices themselves.
            let mut base = 0usize;
            while base < total {
                let lanes = CHUNK.min(total - base);
                let mut mask: u64 = 0;
                for lane in 0..lanes {
                    mask |= (keep(base + lane) as u64) << lane;
                }
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let row = (base + lane) as u32;
                    self.idx[out] = row;
                    self.stamp[row as usize] = gen;
                    out += 1;
                }
                base += lanes;
            }
        } else {
            // Sparse source: compact idx[..n] in place (out <= scan cursor,
            // so the write never overtakes the reads).
            let mut base = 0usize;
            while base < total {
                let lanes = CHUNK.min(total - base);
                let mut mask: u64 = 0;
                for lane in 0..lanes {
                    mask |= (keep(self.idx[base + lane] as usize) as u64) << lane;
                }
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    self.idx[out] = self.idx[base + lane];
                    out += 1;
                }
                base += lanes;
            }
        }
        if self.dense {
            // The stamps were written for survivors only; rows the dense
            // state implied but the stamp misses are now correctly absent.
            self.dense = false;
        } else {
            // Survivors keep their old stamps (same generation) — but rows
            // just dropped still carry it. Re-stamp under a fresh
            // generation so membership stays exact.
            self.gen = self.gen.wrapping_add(1);
            if self.gen == 0 {
                self.stamp.fill(0);
                self.gen = 1;
            }
            let gen = self.gen;
            for &i in &self.idx[..out] {
                self.stamp[i as usize] = gen;
            }
        }
        self.n = out;
    }

    /// Ensures the stamp bitset covers rows `0..len` (grow-only; called
    /// automatically before the first sparse filter against a relation of
    /// `len` rows).
    fn ensure_capacity(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
        }
        if self.idx.len() < len {
            self.idx.resize(len, 0);
        }
    }
}

/// Generation-stamped direct-map membership over packed `u64` keys from a
/// bounded value range: `contains` is one load + compare — the cheapest key
/// comparison there is, and branch-free inside the probe kernels.
///
/// [`StampTable::begin`] re-arms the table for a new key set in O(1) (bump
/// the generation); the slot buffer grows to the largest range ever seen
/// and is then reused forever — no allocation after warm-up.
#[derive(Debug, Default)]
pub struct StampTable {
    base: u64,
    stamps: Vec<u32>,
    gen: u32,
}

impl StampTable {
    /// Largest key range (max − min + 1) the table direct-maps; beyond it
    /// callers fall back to hashing. 2²² slots = 16 MiB of `u32` stamps at
    /// the very worst — normally far less, since the buffer only ever grows
    /// to the largest range actually seen.
    pub const MAX_RANGE: u64 = 1 << 22;

    /// Re-arms the table for keys in `[min, max]`. Returns `false` (table
    /// unusable for this key set) when the range exceeds
    /// [`StampTable::MAX_RANGE`].
    pub fn begin(&mut self, min: u64, max: u64) -> bool {
        debug_assert!(min <= max);
        // Compare spans before adding 1: `max - min + 1` overflows when the
        // keys straddle the whole u64 range (e.g. 0 and u64::MAX mixed).
        if max - min >= Self::MAX_RANGE {
            return false;
        }
        let range = max - min + 1;
        self.base = min;
        if (self.stamps.len() as u64) < range {
            self.stamps.resize(range as usize, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamps.fill(0);
            self.gen = 1;
        }
        true
    }

    /// Marks `k` present (must lie inside the `begin` range).
    #[inline]
    pub fn insert(&mut self, k: u64) {
        self.stamps[(k - self.base) as usize] = self.gen;
    }

    /// Whether `k` was inserted since the last `begin`. Keys outside the
    /// armed range are simply absent.
    #[inline]
    pub fn contains(&self, k: u64) -> bool {
        self.stamps
            .get(k.wrapping_sub(self.base) as usize)
            .is_some_and(|&s| s == self.gen)
    }
}

/// Compresses a `(out_col, src_pos)` column map into maximal runs where
/// both sides advance by 1 — each run is one contiguous `memcpy`.
fn column_runs(cols: &[(usize, usize)]) -> Vec<(usize, usize, usize)> {
    let mut runs: Vec<(usize, usize, usize)> = Vec::new();
    for &(j, p) in cols {
        match runs.last_mut() {
            Some((j0, p0, len)) if j == *j0 + *len && p == *p0 + *len => *len += 1,
            _ => runs.push((j, p, 1)),
        }
    }
    runs
}

/// Join-output assembly: materializes one output row per `(probe, build)`
/// row pair. Each `(out_col, src_pos)` entry of `probe_cols`/`build_cols`
/// names one output column and where it reads from on that side.
///
/// Two gather strategies, chosen by shape:
///
/// * **Run copies** when the column maps compress into few contiguous runs
///   (the common join layout — each side contributes long aligned spans):
///   one pass over the pairs, a `copy_from_slice` per run per row.
/// * **Column-at-a-time within blocks** otherwise: per output column one
///   tight gather loop, with cache-sized row blocks so the per-column
///   passes never re-sweep a block out of cache on huge join results.
#[allow(clippy::too_many_arguments)]
pub fn gather_pairs(
    probe_data: &[u64],
    probe_arity: usize,
    build_data: &[u64],
    build_arity: usize,
    probe_cols: &[(usize, usize)],
    build_cols: &[(usize, usize)],
    pairs: &[(u32, u32)],
    out_arity: usize,
    out: &mut Vec<u64>,
) {
    debug_assert_eq!(probe_cols.len() + build_cols.len(), out_arity);
    if out_arity == 0 {
        return;
    }
    let start = out.len();
    out.resize(start + pairs.len() * out_arity, 0);
    let dst_all = &mut out[start..];

    let probe_runs = column_runs(probe_cols);
    let build_runs = column_runs(build_cols);
    if (probe_runs.len() + build_runs.len()) * 4 <= out_arity {
        // Long contiguous spans: copy runs row-at-a-time.
        for (row, &(pi, bi)) in dst_all.chunks_exact_mut(out_arity).zip(pairs) {
            let prow = &probe_data[pi as usize * probe_arity..][..probe_arity];
            let brow = &build_data[bi as usize * build_arity..][..build_arity];
            for &(j, p, len) in &probe_runs {
                row[j..j + len].copy_from_slice(&prow[p..p + len]);
            }
            for &(j, p, len) in &build_runs {
                row[j..j + len].copy_from_slice(&brow[p..p + len]);
            }
        }
        return;
    }

    let block = gather_block_rows(out_arity);
    let mut p0 = 0usize;
    while p0 < pairs.len() {
        let n = block.min(pairs.len() - p0);
        let block_pairs = &pairs[p0..p0 + n];
        let dst = &mut dst_all[p0 * out_arity..(p0 + n) * out_arity];
        for &(j, p) in probe_cols {
            for (row, &(pi, _)) in dst.chunks_exact_mut(out_arity).zip(block_pairs) {
                row[j] = probe_data[pi as usize * probe_arity + p];
            }
        }
        for &(j, p) in build_cols {
            for (row, &(_, bi)) in dst.chunks_exact_mut(out_arity).zip(block_pairs) {
                row[j] = build_data[bi as usize * build_arity + p];
            }
        }
        p0 += n;
    }
}

/// Materializes the selected rows into `out` (row-major, same stride).
/// Selection order is ascending, so if `data` was normalized the gathered
/// buffer is normalized too.
pub fn gather_rows(data: &[u64], arity: usize, sel: &SelVec, out: &mut Vec<u64>) {
    if arity == 0 {
        return;
    }
    if sel.is_dense() {
        out.extend_from_slice(&data[..sel.len() * arity]);
        return;
    }
    out.reserve(sel.len() * arity);
    sel.for_each(|i| out.extend_from_slice(&data[i * arity..(i + 1) * arity]));
}

/// Packs rows into scalar keys and sorts/dedups them, when the values fit:
/// with `bits` = bit width of the largest value, rows pack into `u64`
/// scalars when `arity · bits ≤ 64` and into `u128` when `≤ 128` (each
/// column a fixed `bits`-wide field, first column highest — scalar order =
/// lexicographic row order). Returns the surviving row count and the
/// rebuilt buffer, or gives the buffer back unchanged (`Err`) when the
/// values are too wide to pack — the caller's index-permutation sort is the
/// row-at-a-time fallback for that case.
///
/// Pack, sort, dedup, and unpack are all columnar tight loops; the sort
/// compares machine scalars instead of walking row slices.
pub fn sort_dedup_packed(
    arity: usize,
    rows: usize,
    mut data: Vec<u64>,
) -> Result<(usize, Vec<u64>), Vec<u64>> {
    debug_assert!(arity >= 2, "arity <= 2 rows already sort as scalars");
    debug_assert_eq!(data.len(), rows * arity);
    let _ = rows;
    let max = data.iter().copied().max().unwrap_or(0);
    let bits = 64 - max.leading_zeros().min(63) as usize; // 1..=64; arity >= 2 keeps every shift below the scalar width

    // One pack/sort/dedup/unpack implementation, instantiated per scalar
    // width so the two width classes cannot drift apart.
    macro_rules! pack_sort_unpack {
        ($scalar:ty) => {{
            let shift = bits;
            let mut packed: Vec<$scalar> = data
                .chunks_exact(arity)
                .map(|row| {
                    row.iter()
                        .fold(0 as $scalar, |acc, &v| (acc << shift) | v as $scalar)
                })
                .collect();
            packed.sort_unstable();
            packed.dedup();
            let kept = packed.len();
            data.clear();
            let mask = ((1 as $scalar) << shift) - 1;
            for &p in &packed {
                let start = data.len();
                data.resize(start + arity, 0);
                let mut p = p;
                for j in (0..arity).rev() {
                    data[start + j] = (p & mask) as u64;
                    p >>= shift;
                }
            }
            Ok((kept, data))
        }};
    }

    if arity * bits <= 64 {
        pack_sort_unpack!(u64)
    } else if arity * bits <= 128 {
        pack_sort_unpack!(u128)
    } else {
        Err(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_contiguous_and_scattered() {
        // 3 rows of arity 4
        let data: Vec<u64> = vec![0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23];
        let v = ColumnarView::new(&data, 4, 3);
        let mut out = Vec::new();
        v.gather_into(&[1, 2], &mut out); // contiguous window
        assert_eq!(out, vec![1, 2, 11, 12, 21, 22]);
        out.clear();
        v.gather_into(&[3, 0], &mut out); // scattered + reordered
        assert_eq!(out, vec![3, 0, 13, 10, 23, 20]);
        out.clear();
        v.gather_into(&[0, 1, 2, 3], &mut out); // identity
        assert_eq!(out, data);
        assert_eq!(v.col(2).collect::<Vec<_>>(), vec![2, 12, 22]);
    }

    #[test]
    fn gather_blocked_matches_per_row() {
        // More rows than one gather block, scattered columns.
        let rows = 2 * GATHER_BLOCK_VALUES + 17;
        let arity = 5;
        let data: Vec<u64> = (0..rows * arity).map(|i| (i * 7 % 1000) as u64).collect();
        let v = ColumnarView::new(&data, arity, rows);
        let pos = [4usize, 0, 2];
        let mut out = Vec::new();
        v.gather_into(&pos, &mut out);
        let expect: Vec<u64> = data
            .chunks_exact(arity)
            .flat_map(|row| pos.iter().map(|&p| row[p]))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn selvec_dense_then_sparse_retain() {
        let keys: Vec<u64> = (0..200).map(|i| i % 10).collect();
        let mut sel = SelVec::full(200);
        assert!(sel.is_dense());
        sel.retain_u64(&keys, |k| k < 5);
        assert_eq!(sel.len(), 100);
        assert!(!sel.is_dense());
        assert!(sel.is_selected(0) && sel.is_selected(4) && !sel.is_selected(5));
        // Second (sparse) retain narrows further; stamps stay exact.
        sel.retain_u64(&keys, |k| k == 3);
        assert_eq!(sel.len(), 20);
        assert!(sel.is_selected(3) && sel.is_selected(13));
        assert!(!sel.is_selected(0), "dropped rows lose their stamp");
        let mut got = Vec::new();
        sel.for_each(|i| got.push(i));
        assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending");
        assert!(got.iter().all(|&i| keys[i] == 3));
    }

    #[test]
    fn selvec_reset_reuses_buffers() {
        let keys: Vec<u64> = (0..100).collect();
        let mut sel = SelVec::full(100);
        sel.retain_u64(&keys, |k| k % 2 == 0);
        assert_eq!(sel.len(), 50);
        assert!(sel.is_selected(0));
        sel.clear();
        assert!(
            !sel.is_selected(0),
            "clear invalidates freshly written stamps"
        );
        sel.reset(80);
        assert!(sel.is_dense());
        assert_eq!(sel.len(), 80);
        assert!(sel.is_selected(79) && !sel.is_selected(80));
        sel.clear();
        assert!(sel.is_empty());
        assert!(!sel.is_selected(0));
    }

    #[test]
    fn selvec_chunk_boundaries() {
        // Lengths straddling the 64-lane chunk boundary.
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            let keys: Vec<u64> = (0..len as u64).collect();
            let mut sel = SelVec::full(len);
            sel.retain_u64(&keys, |k| k % 3 != 0);
            let expect: Vec<usize> = (0..len).filter(|i| i % 3 != 0).collect();
            let mut got = Vec::new();
            sel.for_each(|i| got.push(i));
            assert_eq!(got, expect, "len {len}");
        }
    }

    #[test]
    fn stamp_table_membership_and_rearm() {
        let mut t = StampTable::default();
        assert!(t.begin(100, 200));
        t.insert(100);
        t.insert(150);
        assert!(t.contains(100) && t.contains(150));
        assert!(!t.contains(101) && !t.contains(99) && !t.contains(201));
        assert!(!t.contains(0) && !t.contains(u64::MAX));
        // Re-arm invalidates everything in O(1).
        assert!(t.begin(100, 120));
        assert!(!t.contains(100));
        // Oversized ranges are declined.
        assert!(!t.begin(0, StampTable::MAX_RANGE + 5));
    }

    #[test]
    fn gather_rows_dense_and_sparse() {
        let data: Vec<u64> = vec![1, 2, 3, 4, 5, 6];
        let mut sel = SelVec::full(3);
        let mut out = Vec::new();
        gather_rows(&data, 2, &sel, &mut out);
        assert_eq!(out, data);
        sel.retain_u64(&[9, 7, 9], |k| k == 9);
        out.clear();
        gather_rows(&data, 2, &sel, &mut out);
        assert_eq!(out, vec![1, 2, 5, 6]);
    }

    #[test]
    fn packed_sort_matches_permutation_semantics() {
        // arity 3, small values: packs into u64.
        let data = vec![2, 1, 1, 0, 5, 5, 2, 1, 1, 0, 5, 5, 1, 0, 0];
        let (kept, out) = sort_dedup_packed(3, 5, data).expect("fits u64");
        assert_eq!(kept, 3);
        assert_eq!(out, vec![0, 5, 5, 1, 0, 0, 2, 1, 1]);
        // Values forcing the u128 path (bits ~ 40, arity 3).
        let big = 1u64 << 39;
        let data = vec![big, 0, 1, 0, big, 2, 0, big, 2];
        let (kept, out) = sort_dedup_packed(3, 3, data).expect("fits u128");
        assert_eq!(kept, 2);
        assert_eq!(out, vec![0, big, 2, big, 0, 1]);
        // Genuinely too wide: handed back unchanged.
        let data = vec![u64::MAX, 1, 2, 0, 1, 2];
        assert!(sort_dedup_packed(3, 2, data.clone()).is_err());
    }

    #[test]
    fn packed_sort_zero_values() {
        let (kept, out) = sort_dedup_packed(4, 3, vec![0u64; 12]).expect("all zero");
        assert_eq!((kept, out), (1, vec![0, 0, 0, 0]));
    }
}
