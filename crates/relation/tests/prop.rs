//! Property tests for the relational algebra: the equational laws the
//! paper's query rewrites depend on.

use gyo_relation::{join_of_projections, satisfies_jd, DbState, Relation};
use gyo_schema::{AttrSet, DbSchema};
use proptest::prelude::*;

const W: usize = 4; // attribute universe 0..W

fn relation(attrs: Vec<u32>) -> impl Strategy<Value = Relation> {
    let set = AttrSet::from_raw(&attrs);
    let width = set.len();
    proptest::collection::vec(proptest::collection::vec(0u64..4, width), 0..12)
        .prop_map(move |tuples| Relation::new(set.clone(), tuples))
}

fn any_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(0u32..W as u32, 1..=W).prop_flat_map(relation)
}

fn universal() -> impl Strategy<Value = Relation> {
    relation((0..W as u32).collect())
}

fn schema() -> impl Strategy<Value = DbSchema> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..W as u32, 1..=W).prop_map(|v| AttrSet::from_raw(&v)),
        1..4,
    )
    .prop_map(DbSchema::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn join_is_commutative(r in any_relation(), s in any_relation()) {
        prop_assert_eq!(r.natural_join(&s), s.natural_join(&r));
    }

    #[test]
    fn join_is_associative(r in any_relation(), s in any_relation(), t in any_relation()) {
        prop_assert_eq!(
            r.natural_join(&s).natural_join(&t),
            r.natural_join(&s.natural_join(&t))
        );
    }

    #[test]
    fn join_is_idempotent(r in any_relation()) {
        prop_assert_eq!(r.natural_join(&r), r);
    }

    #[test]
    fn join_identity_and_annihilator(r in any_relation()) {
        prop_assert_eq!(r.natural_join(&Relation::identity()), r.clone());
        let nothing = Relation::empty(AttrSet::empty());
        prop_assert!(r.natural_join(&nothing).is_empty());
    }

    #[test]
    fn semijoin_is_projected_join(r in any_relation(), s in any_relation()) {
        prop_assert_eq!(r.semijoin(&s), r.natural_join(&s).project(r.attrs()));
    }

    #[test]
    fn semijoin_shrinks_and_is_idempotent(r in any_relation(), s in any_relation()) {
        let sj = r.semijoin(&s);
        prop_assert!(sj.is_subset(&r));
        prop_assert_eq!(sj.semijoin(&s), sj);
    }

    #[test]
    fn projection_composes(r in universal()) {
        let outer = AttrSet::from_raw(&[0, 1, 2]);
        let inner = AttrSet::from_raw(&[0, 2]);
        prop_assert_eq!(r.project(&outer).project(&inner), r.project(&inner));
    }

    #[test]
    fn projection_monotone_under_join(r in any_relation(), s in any_relation()) {
        // π_R(R ⋈ S) ⊆ R (the join filters, never invents left tuples)
        let j = r.natural_join(&s).project(r.attrs());
        prop_assert!(j.is_subset(&r));
    }

    #[test]
    fn join_of_projections_is_extensive_and_idempotent(i in universal(), d in schema()) {
        let closed = join_of_projections(&i, &d);
        // extensive on the covered attributes
        prop_assert!(i.project(&d.attributes()).is_subset(&closed));
        // idempotent
        prop_assert_eq!(join_of_projections(&closed, &d), closed.clone());
        // the closure satisfies the jd
        prop_assert!(satisfies_jd(&closed, &d));
    }

    #[test]
    fn ur_state_join_contains_universal(i in universal(), d in schema()) {
        let state = DbState::from_universal(&i, &d);
        let joined = state.join_all();
        prop_assert!(i.project(&d.attributes()).is_subset(&joined));
    }

    #[test]
    fn union_laws(a in relation(vec![0, 1]), b in relation(vec![0, 1]), c in relation(vec![0, 1])) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn join_distributes_over_semijoin_reduction(r in any_relation(), s in any_relation()) {
        // R ⋈ S = (R ⋉ S) ⋈ S — the identity every full reducer rests on.
        prop_assert_eq!(r.natural_join(&s), r.semijoin(&s).natural_join(&s));
    }
}
