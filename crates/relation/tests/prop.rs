//! Property tests for the relational algebra: the equational laws the
//! paper's query rewrites depend on, plus the flat-storage invariants
//! (round-trip through the `Vec<Vec<u64>>` shim, operator equivalence
//! against naive per-row reference implementations) and the columnar
//! kernel laws (gather projection, chunked key-compare semijoins for key
//! widths 1/2/wide, selection-vector program execution — each against a
//! per-row reference, on small and on pack-defeating huge values).

use std::collections::BTreeSet;

use gyo_relation::{
    join_of_projections, satisfies_jd, semijoin_program, semijoin_program_with, DbState,
    ExecScratch, Relation, SemijoinStep,
};
use gyo_schema::{AttrSet, DbSchema};
use proptest::prelude::*;

const W: usize = 4; // attribute universe 0..W

fn relation(attrs: Vec<u32>) -> impl Strategy<Value = Relation> {
    let set = AttrSet::from_raw(&attrs);
    let width = set.len();
    proptest::collection::vec(proptest::collection::vec(0u64..4, width), 0..12)
        .prop_map(move |tuples| Relation::new(set.clone(), tuples))
}

/// A value strategy that mixes small values with huge ones (near `u64::MAX`)
/// so normalization exercises both the packed-scalar sort and the
/// index-permutation fallback, and the stamp-table membership path declines
/// in favor of hashing.
fn any_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..4,
        1 => (u64::MAX - 3)..=u64::MAX,
    ]
}

/// A relation over an explicit attribute list with mixed-magnitude values —
/// wide arities included (the caller controls the width).
fn relation_over(attrs: Vec<u32>) -> impl Strategy<Value = Relation> {
    let set = AttrSet::from_raw(&attrs);
    let width = set.len();
    proptest::collection::vec(proptest::collection::vec(any_value(), width), 0..12)
        .prop_map(move |tuples| Relation::new(set.clone(), tuples))
}

fn any_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(0u32..W as u32, 1..=W).prop_flat_map(relation)
}

fn universal() -> impl Strategy<Value = Relation> {
    relation((0..W as u32).collect())
}

fn schema() -> impl Strategy<Value = DbSchema> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..W as u32, 1..=W).prop_map(|v| AttrSet::from_raw(&v)),
        1..4,
    )
    .prop_map(DbSchema::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn join_is_commutative(r in any_relation(), s in any_relation()) {
        prop_assert_eq!(r.natural_join(&s), s.natural_join(&r));
    }

    #[test]
    fn join_is_associative(r in any_relation(), s in any_relation(), t in any_relation()) {
        prop_assert_eq!(
            r.natural_join(&s).natural_join(&t),
            r.natural_join(&s.natural_join(&t))
        );
    }

    #[test]
    fn join_is_idempotent(r in any_relation()) {
        prop_assert_eq!(r.natural_join(&r), r);
    }

    #[test]
    fn join_identity_and_annihilator(r in any_relation()) {
        prop_assert_eq!(r.natural_join(&Relation::identity()), r.clone());
        let nothing = Relation::empty(AttrSet::empty());
        prop_assert!(r.natural_join(&nothing).is_empty());
    }

    #[test]
    fn semijoin_is_projected_join(r in any_relation(), s in any_relation()) {
        prop_assert_eq!(r.semijoin(&s), r.natural_join(&s).project(r.attrs()));
    }

    #[test]
    fn semijoin_shrinks_and_is_idempotent(r in any_relation(), s in any_relation()) {
        let sj = r.semijoin(&s);
        prop_assert!(sj.is_subset(&r));
        prop_assert_eq!(sj.semijoin(&s), sj);
    }

    #[test]
    fn projection_composes(r in universal()) {
        let outer = AttrSet::from_raw(&[0, 1, 2]);
        let inner = AttrSet::from_raw(&[0, 2]);
        prop_assert_eq!(r.project(&outer).project(&inner), r.project(&inner));
    }

    #[test]
    fn projection_monotone_under_join(r in any_relation(), s in any_relation()) {
        // π_R(R ⋈ S) ⊆ R (the join filters, never invents left tuples)
        let j = r.natural_join(&s).project(r.attrs());
        prop_assert!(j.is_subset(&r));
    }

    #[test]
    fn join_of_projections_is_extensive_and_idempotent(i in universal(), d in schema()) {
        let closed = join_of_projections(&i, &d);
        // extensive on the covered attributes
        prop_assert!(i.project(&d.attributes()).is_subset(&closed));
        // idempotent
        prop_assert_eq!(join_of_projections(&closed, &d), closed.clone());
        // the closure satisfies the jd
        prop_assert!(satisfies_jd(&closed, &d));
    }

    #[test]
    fn ur_state_join_contains_universal(i in universal(), d in schema()) {
        let state = DbState::from_universal(&i, &d);
        let joined = state.join_all();
        prop_assert!(i.project(&d.attributes()).is_subset(&joined));
    }

    #[test]
    fn union_laws(a in relation(vec![0, 1]), b in relation(vec![0, 1]), c in relation(vec![0, 1])) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn join_distributes_over_semijoin_reduction(r in any_relation(), s in any_relation()) {
        // R ⋈ S = (R ⋉ S) ⋈ S — the identity every full reducer rests on.
        prop_assert_eq!(r.natural_join(&s), r.semijoin(&s).natural_join(&s));
    }

    /// Flat-layout round trip: `Relation::new(attrs, vecs)` ↔ `rows()`
    /// preserves the sorted-dedup normalization invariant in both
    /// directions, and the flat constructor agrees with the nested one.
    #[test]
    fn flat_storage_round_trips(attrs in proptest::collection::vec(0u32..W as u32, 1..=W),
                                rows in proptest::collection::vec(proptest::collection::vec(0u64..4, W), 0..12)) {
        let set = AttrSet::from_raw(&attrs);
        let width = set.len();
        let vecs: Vec<Vec<u64>> = rows.iter().map(|r| r[..width].to_vec()).collect();
        let r = Relation::new(set.clone(), vecs.clone());

        // rows() yields exactly the sorted, deduplicated input.
        let expected: Vec<Vec<u64>> = vecs.iter().cloned().collect::<BTreeSet<_>>().into_iter().collect();
        let via_rows: Vec<Vec<u64>> = r.rows().map(<[u64]>::to_vec).collect();
        prop_assert_eq!(&via_rows, &expected);
        prop_assert_eq!(r.to_vecs(), expected);
        prop_assert_eq!(r.len(), via_rows.len());

        // rows are strictly increasing slices of the flat buffer, stride = arity.
        prop_assert_eq!(r.data().len(), r.len() * r.arity());
        for w in via_rows.windows(2) {
            prop_assert!(w[0] < w[1], "rows not strictly sorted");
        }

        // rebuild from the shim and from the flat buffer: both identical.
        prop_assert_eq!(&Relation::new(set.clone(), r.to_vecs()), &r);
        let flat: Vec<u64> = vecs.iter().flatten().copied().collect();
        prop_assert_eq!(&Relation::from_row_major(set, vecs.len(), flat), &r);
    }

    /// Storage equivalence: the flat-buffer operators compute exactly the
    /// sets a naive per-row reference implementation produces.
    #[test]
    fn operators_match_reference_semantics(r in any_relation(), s in any_relation(), onto in proptest::collection::vec(0u32..W as u32, 0..=W)) {
        // projection reference (clip onto to r's schema)
        let onto = AttrSet::from_raw(&onto).intersect(r.attrs());
        let pos: Vec<usize> = onto.iter()
            .map(|a| r.attrs().iter().position(|b| b == a).unwrap())
            .collect();
        let expect_proj: BTreeSet<Vec<u64>> = r.rows()
            .map(|t| pos.iter().map(|&p| t[p]).collect())
            .collect();
        let proj = r.project(&onto);
        prop_assert_eq!(proj.to_vecs(), expect_proj.into_iter().collect::<Vec<_>>());

        // natural-join reference: nested loops over the shim rows
        let shared = r.attrs().intersect(s.attrs());
        let rp: Vec<usize> = shared.iter().map(|a| r.attrs().iter().position(|b| b == a).unwrap()).collect();
        let sp: Vec<usize> = shared.iter().map(|a| s.attrs().iter().position(|b| b == a).unwrap()).collect();
        let out_attrs = r.attrs().union(s.attrs());
        let mut expect_join: BTreeSet<Vec<u64>> = BTreeSet::new();
        for tr in r.rows() {
            for ts in s.rows() {
                if rp.iter().zip(&sp).all(|(&p, &q)| tr[p] == ts[q]) {
                    let out: Vec<u64> = out_attrs.iter().map(|a| {
                        match r.attrs().iter().position(|b| b == a) {
                            Some(p) => tr[p],
                            None => ts[s.attrs().iter().position(|b| b == a).unwrap()],
                        }
                    }).collect();
                    expect_join.insert(out);
                }
            }
        }
        let j = r.natural_join(&s);
        prop_assert_eq!(j.attrs(), &out_attrs);
        prop_assert_eq!(j.to_vecs(), expect_join.into_iter().collect::<Vec<_>>());

        // semijoin reference
        let expect_semi: Vec<Vec<u64>> = r.rows()
            .filter(|tr| s.rows().any(|ts| rp.iter().zip(&sp).all(|(&p, &q)| tr[p] == ts[q])))
            .map(<[u64]>::to_vec)
            .collect();
        prop_assert_eq!(r.semijoin(&s).to_vecs(), expect_semi);

        // union reference (same-schema only)
        if r.attrs() == s.attrs() {
            let expect_union: BTreeSet<Vec<u64>> = r.rows().chain(s.rows()).map(<[u64]>::to_vec).collect();
            prop_assert_eq!(r.union(&s).to_vecs(), expect_union.into_iter().collect::<Vec<_>>());
        }
    }
}

/// Per-row reference semijoin: `r ⋉ s` by nested loops over the shim rows.
fn reference_semijoin(r: &Relation, s: &Relation) -> Vec<Vec<u64>> {
    let shared = r.attrs().intersect(s.attrs());
    let rp: Vec<usize> = shared
        .iter()
        .map(|a| r.attrs().iter().position(|b| b == a).unwrap())
        .collect();
    let sp: Vec<usize> = shared
        .iter()
        .map(|a| s.attrs().iter().position(|b| b == a).unwrap())
        .collect();
    r.rows()
        .filter(|tr| {
            s.rows()
                .any(|ts| rp.iter().zip(&sp).all(|(&p, &q)| tr[p] == ts[q]))
        })
        .map(<[u64]>::to_vec)
        .collect()
}

/// Schemas whose pairwise overlaps hit every key-width class: width-1
/// (`b`), width-2 (`bc`), wide/width-3 (`cde`-style), plus the empty key
/// (disjoint pair) and the degenerate `∅` schema for `{}`/`{()}` edges.
fn kernel_schemas() -> Vec<Vec<u32>> {
    vec![
        vec![0, 1],          // ab
        vec![1, 2],          // bc           (width-1 key vs ab)
        vec![1, 2, 3],       // bcd          (width-2 key vs bc)
        vec![1, 2, 3, 4, 5], // bcdef        (width-3 key vs bcd)
        vec![2, 3, 4, 5, 6], // cdefg        (width-4 key vs bcdef)
        vec![9],             // j            (empty key vs everything)
        vec![],              // ∅            ({} / {()} edge cases)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Gather projection agrees with the per-row reference on wide arities
    /// and mixed-magnitude values (contiguous and scattered column maps).
    #[test]
    fn gather_projection_matches_reference_on_wide_rows(
        r in relation_over(vec![0, 1, 2, 3, 4, 5, 6, 7]),
        onto in proptest::collection::vec(0u32..8, 0..=8),
    ) {
        let onto = AttrSet::from_raw(&onto);
        let pos: Vec<usize> = onto.iter()
            .map(|a| r.attrs().iter().position(|b| b == a).unwrap())
            .collect();
        let expect: BTreeSet<Vec<u64>> = r.rows()
            .map(|t| pos.iter().map(|&p| t[p]).collect())
            .collect();
        let proj = r.project(&onto);
        prop_assert_eq!(proj.to_vecs(), expect.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(proj.len() * proj.arity(), proj.data().len());
    }

    /// The chunked key-compare semijoin agrees with the per-row reference
    /// for every key width the schema pool produces (1, 2, wide, empty),
    /// on small and pack-defeating values.
    #[test]
    fn kernel_semijoin_matches_reference_for_all_key_widths(
        ra in proptest::sample::select(kernel_schemas()).prop_flat_map(relation_over),
        rb in proptest::sample::select(kernel_schemas()).prop_flat_map(relation_over),
    ) {
        prop_assert_eq!(ra.semijoin(&rb).to_vecs(), reference_semijoin(&ra, &rb));
        prop_assert_eq!(rb.semijoin(&ra).to_vecs(), reference_semijoin(&rb, &ra));
        // Definition check against the (independently kernel-tested) join.
        prop_assert_eq!(ra.semijoin(&rb), ra.natural_join(&rb).project(ra.attrs()));
    }

    /// Selection-vector program execution (`semijoin_program`, fresh and
    /// warm-scratch) agrees with the naive sequence of per-call semijoin
    /// operators on random programs over the width-mixed schema pool.
    #[test]
    fn selvec_program_matches_sequential_semijoins(
        rels0 in proptest::collection::vec(
            proptest::sample::select(kernel_schemas()).prop_flat_map(relation_over), 2..6),
        raw_steps in proptest::collection::vec((0usize..6, 0usize..6), 0..12),
        reuse in any::<bool>(),
    ) {
        let schemas: Vec<AttrSet> = rels0.iter().map(|r| r.attrs().clone()).collect();
        let steps: Vec<SemijoinStep> = raw_steps.iter()
            .map(|&(t, s)| SemijoinStep::new(&schemas, t % rels0.len(), s % rels0.len()))
            .collect();

        // Reference: one semijoin operator per step, in order.
        let mut expect = rels0.clone();
        for st in &steps {
            expect[st.target()] = expect[st.target()].semijoin(&expect[st.source()].clone());
        }

        let mut got = rels0.clone();
        if reuse {
            // Warm the scratch on a first run, then re-run from the
            // original state: reused buffers must not change answers.
            let mut scratch = ExecScratch::new();
            let mut warm = rels0.clone();
            semijoin_program_with(&mut warm, &steps, &mut scratch);
            semijoin_program_with(&mut got, &steps, &mut scratch);
            prop_assert_eq!(&warm, &got, "warm-up run and reuse run agree");
        } else {
            semijoin_program(&mut got, &steps);
        }
        for (k, (g, e)) in got.iter().zip(&expect).enumerate() {
            prop_assert_eq!(g, e, "slot {}", k);
        }
    }
}
