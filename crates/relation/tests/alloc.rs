//! Allocation accounting for the selection-vector executor: after a warm-up
//! run, executing a whole semijoin program must perform **zero heap
//! allocation per step** — the SelVecs, the stamp table, the hash-set
//! fallbacks, and the wide-key spine are all reused from the
//! [`ExecScratch`], and key columns are cached on the relations.
//!
//! The file installs a counting global allocator, so it contains exactly
//! one `#[test]` (parallel tests would pollute the counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gyo_relation::{semijoin_program_with, ExecScratch, Relation, SemijoinStep};
use gyo_schema::AttrSet;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A globally consistent (UR) state for `schemas`: every relation is a
/// projection of one universal relation, so a full reducer drops nothing
/// and the executor's end-of-run materialization is skipped — isolating
/// the per-step cost. `value(v)` post-processes the raw cell values (used
/// to push keys outside the stamp table's range).
fn ur_rels(schemas: &[AttrSet], rows: usize, value: impl Fn(u64) -> u64) -> Vec<Relation> {
    let all = schemas.iter().fold(AttrSet::empty(), |acc, s| acc.union(s));
    let width = all.len();
    let data: Vec<u64> = (0..rows)
        .flat_map(|r| (0..width).map(move |c| (r * 31 + c * 7) as u64 % 97))
        .map(&value)
        .collect();
    let u = Relation::from_row_major(all, rows, data);
    schemas.iter().map(|s| u.project(s)).collect()
}

/// Chain-shaped full-reducer steps (upward then downward pass) over
/// arbitrary slot schemas.
fn chain_reducer_steps(schemas: &[AttrSet]) -> Vec<SemijoinStep> {
    let n = schemas.len();
    let mut steps = Vec::new();
    for v in (1..n).rev() {
        steps.push(SemijoinStep::new(schemas, v - 1, v));
    }
    for v in 1..n {
        steps.push(SemijoinStep::new(schemas, v, v - 1));
    }
    steps
}

/// A wide-chain slot schema: relation `i` spans `arity` attributes with
/// `overlap`-attribute keys between neighbors (width-1/2/wide keys come
/// from `overlap` = 1/2/3).
fn wide_chain_schemas(n: usize, arity: u32, overlap: u32) -> Vec<AttrSet> {
    let step = arity - overlap;
    (0..n as u32)
        .map(|i| AttrSet::from_iter((i * step..i * step + arity).map(gyo_schema::AttrId)))
        .collect()
}

#[test]
fn warm_program_steps_allocate_nothing() {
    // One scenario per membership path: width-1 stamp table, width-1 hash
    // fallback (huge key range), width-2 packed set, wide (width-3) spine.
    let scenarios: Vec<(&str, Vec<AttrSet>, Box<dyn Fn(u64) -> u64>)> = vec![
        (
            "width-1 stamp",
            wide_chain_schemas(6, 2, 1),
            Box::new(|v| v),
        ),
        (
            "width-1 hash fallback",
            wide_chain_schemas(6, 2, 1),
            Box::new(|v| v.wrapping_mul(1 << 40)),
        ),
        (
            "width-2 packed",
            wide_chain_schemas(5, 4, 2),
            Box::new(|v| v),
        ),
        ("wide keys", wide_chain_schemas(5, 6, 3), Box::new(|v| v)),
    ];
    for (label, schemas, value) in scenarios {
        let steps = chain_reducer_steps(&schemas);
        let mut rels = ur_rels(&schemas, 64, value);
        let reference = rels.clone();
        let mut scratch = ExecScratch::new();

        // Warm-up: sizes every reusable buffer and the relations' cached
        // key columns. A UR state is already globally consistent, so
        // nothing is dropped and no slot is re-materialized.
        semijoin_program_with(&mut rels, &steps, &mut scratch);
        assert_eq!(rels, reference, "{label}: UR state is a fixpoint");

        let before = allocs();
        semijoin_program_with(&mut rels, &steps, &mut scratch);
        let after = allocs();
        assert_eq!(
            after - before,
            0,
            "{label}: warm program run must not allocate (steps: {})",
            steps.len()
        );
        assert_eq!(rels, reference, "{label}: still a fixpoint");

        // With real filtering the steps themselves stay allocation-free;
        // only the end-of-run materialization of *changed* slots allocates
        // (a handful of allocations per slot, independent of step count).
        let mut noisy = reference.clone();
        let arity0 = schemas[0].len();
        let mut data = noisy[0].data().to_vec();
        data.extend((0..arity0).map(|c| 1_000_000 + c as u64)); // dangling row
        noisy[0] = Relation::from_row_major(schemas[0].clone(), noisy[0].len() + 1, data);
        let mut run = noisy.clone();
        semijoin_program_with(&mut run, &steps, &mut scratch); // warm at this shape
        let mut run = noisy.clone();
        let before = allocs();
        semijoin_program_with(&mut run, &steps, &mut scratch);
        let after = allocs();
        assert_eq!(run[0].len(), reference[0].len(), "{label}: dangler dropped");
        assert!(
            after - before <= 4,
            "{label}: a filtering run allocates only to materialize the one \
             changed slot, got {} allocations",
            after - before
        );
    }
}
