//! Shared helpers for the benchmark suite and the experiment harness.
//!
//! The paper is a theory paper: its "evaluation" consists of eight figures,
//! three worked inline examples, and a body of effective theorems. The
//! binary [`experiments`](../bin/experiments.rs) regenerates all of them
//! and prints paper-claim vs. machine-checked outcome; the Criterion
//! benches measure the algorithmic content (GYO scaling, tableau
//! minimization cost, CC pruning payoff, semijoin programs vs. monolithic
//! joins, the exponential blow-up of exact treefication).

#![warn(missing_docs)]

use gyo_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for benches (fixed seed ⟹ stable workloads across
/// runs).
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xF1A5_C0DE)
}

/// A ring of `n` binary relations padded with `pendants` tree-shaped
/// appendages — the "cyclic core with acyclic fringe" workload used by the
/// treeification benches.
pub fn ring_with_fringe(n: usize, pendants: usize) -> DbSchema {
    let mut rels: Vec<AttrSet> = (0..n as u32)
        .map(|i| AttrSet::from_raw(&[i, (i + 1) % n as u32]))
        .collect();
    for p in 0..pendants as u32 {
        let anchor = p % n as u32;
        rels.push(AttrSet::from_raw(&[anchor, n as u32 + p]));
    }
    DbSchema::new(rels)
}

/// The §6 running-example schema family, scaled: a "core" of `k` relations
/// sharing target attributes plus an irrelevant tail of `tail` relations
/// (a path hanging off the core), generalizing
/// `D = (abg, bcg, acf, ad, de, ea)`.
///
/// Returns `(schema, target)`: the target touches only the core, so
/// `CC(D, X)` prunes the entire tail.
pub fn pruning_family(tail: usize) -> (DbSchema, AttrSet) {
    // attrs: 0=a 1=b 2=c 3=g 4=f, tail attrs start at 5
    let mut rels = vec![
        AttrSet::from_raw(&[0, 1, 3]), // abg
        AttrSet::from_raw(&[1, 2, 3]), // bcg
        AttrSet::from_raw(&[0, 2, 4]), // acf
    ];
    let mut prev = 0u32; // tail hangs off attribute a
    for t in 0..tail as u32 {
        let next = 5 + t;
        rels.push(AttrSet::from_iter([AttrId(prev), AttrId(next)]));
        prev = next;
    }
    (DbSchema::new(rels), AttrSet::from_raw(&[0, 1, 2]))
}

/// A tree variant of the §6 pruning family: a chain of `2 + tail` relations
/// queried at its head (`X = {A₀, A₂}`), so `CC(D, X)` keeps only the first
/// two relations and the whole tail is irrelevant. Unlike
/// [`pruning_family`], whose core is cyclic, every sub-schema here is a
/// tree schema — so the full-reducer engine can answer both the pruned and
/// the unpruned query, quantifying how CC pruning composes with plan
/// caching.
pub fn tree_pruning_family(tail: usize) -> (DbSchema, AttrSet) {
    (gyo_workloads::chain(2 + tail), AttrSet::from_raw(&[0, 2]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_with_fringe_is_cyclic_with_acyclic_fringe() {
        let d = ring_with_fringe(4, 3);
        assert_eq!(d.len(), 7);
        assert_eq!(classify(&d), SchemaKind::Cyclic);
        let red = gyo_reduce(&d, &AttrSet::empty());
        assert_eq!(red.survivors.len(), 4, "fringe reduces away");
    }

    #[test]
    fn pruning_family_matches_section6_shape() {
        let (d, x) = pruning_family(3);
        assert_eq!(d.len(), 6);
        let pruned = prune_irrelevant(&d, &x);
        assert_eq!(pruned.schema.len(), 3, "tail is irrelevant");
    }

    #[test]
    fn tree_pruning_family_prunes_to_the_head() {
        let (d, x) = tree_pruning_family(5);
        assert_eq!(d.len(), 7);
        assert_eq!(classify(&d), SchemaKind::Tree);
        let pruned = prune_irrelevant(&d, &x);
        assert_eq!(pruned.schema.len(), 2, "only the head spine matters");
        assert!(gyo_core::is_tree_schema(&pruned.schema));
    }
}
