//! The experiment harness: regenerates every figure, worked example, and
//! effective theorem of the paper, printing paper-claim vs. measured
//! outcome. `EXPERIMENTS.md` records a run of this binary.
//!
//! Run with `cargo run --release -p gyo-bench --bin experiments`.

use gyo_core::gamma::cycles::contract_cycle;
use gyo_core::gamma::{is_gamma_acyclic_via_subtrees, GammaCycle};
use gyo_core::prelude::*;
use gyo_core::query::{
    implies_lossless_semantic, solve_with_tree_projection, weakly_equivalent_semantic,
};
use gyo_core::reduce::cores::{classify_core, CoreKind};
use gyo_core::reduce::oracle;
use gyo_core::tableau::{cc_via_minimization, minimize};
use gyo_core::treefy::{
    bin_packing_to_treefication, solve_aclique_treefication, solve_bin_packing,
    solve_treefication_exact, treefication_witness_to_packing, BinPacking,
};
use gyo_core::treeproj::{find_tree_projection, validate};
use rand::rngs::StdRng;
use rand::SeedableRng;

type CheckResult = Result<String, String>;

struct Experiment {
    id: &'static str,
    title: &'static str,
    claim: &'static str,
    check: fn() -> CheckResult,
}

fn main() {
    let experiments: Vec<Experiment> = vec![
        Experiment {
            id: "F1",
            title: "Fig. 1 — tree and cyclic schemas",
            claim: "(ab,bc,cd) tree; (ab,bc,ac) cyclic; (abc,cde,ace,afe) tree",
            check: f1,
        },
        Experiment {
            id: "F2",
            title: "Fig. 2 — Arings/Acliques as building blocks",
            claim: "size-4 ring & clique recognized; deletion witnesses expose cores",
            check: f2,
        },
        Experiment {
            id: "F3",
            title: "Fig. 3 — containment mappings compose",
            claim: "h ∘ h1 is again a containment mapping",
            check: f3,
        },
        Experiment {
            id: "F4",
            title: "Fig. 4 — path shortening",
            claim: "chorded connecting paths shorten",
            check: f4,
        },
        Experiment {
            id: "F5",
            title: "Fig. 5 — γ-cycle contraction",
            claim: "nested adjacent intersections contract the cycle",
            check: f5,
        },
        Experiment {
            id: "F6",
            title: "Fig. 6 — deleting R'₁∩R'ₘ keeps the path connected",
            claim: "contracted cycles witness violation of Thm 5.3(ii)",
            check: f6,
        },
        Experiment {
            id: "F7",
            title: "Fig. 7 — cores survive pairwise deletion",
            claim: "Aring/Aclique: deleting R∩S never disconnects the residues",
            check: f7,
        },
        Experiment {
            id: "F8",
            title: "Fig. 8 — qual-tree extension",
            claim: "γ-acyclic ⟹ every connected subset is a subtree",
            check: f8,
        },
        Experiment {
            id: "X1",
            title: "§3.2 worked example — tree projection",
            claim: "D″=(ab,abch,cdgh,defg,ef) ∈ TP(D′,D); D, D′ cyclic",
            check: x1,
        },
        Experiment {
            id: "X2",
            title: "§5.1 worked example — lossless join failure",
            claim: "⋈(abc,ab,bc) ⊭ ⋈(ab,bc); (ab,bc) not a subtree",
            check: x2,
        },
        Experiment {
            id: "X3",
            title: "§6 worked example — irrelevant relations",
            claim: "CC(D,abc) = (abg,bcg,ac); ad, de, ea and column f pruned",
            check: x3,
        },
        Experiment {
            id: "T1",
            title: "Lemma 3.1 — cyclic cores",
            claim: "cyclic ⟺ some deletion set exposes an Aring/Aclique",
            check: t1,
        },
        Experiment {
            id: "T2",
            title: "Theorem 3.1 — subtree characterization",
            claim: "subtree ⟺ GR(D, U(D')) ⊆ D' (vs. brute-force qual trees)",
            check: t2,
        },
        Experiment {
            id: "T3",
            title: "Theorem 3.2 / Cor. 3.1–3.2 — GR and treeification",
            claim: "tree ⟺ GR(D)=∅̄; U(GR(D)) is the least treeifying relation",
            check: t3,
        },
        Experiment {
            id: "T4",
            title: "Theorem 3.3 — CC vs GR",
            claim: "CC ≤ GR always; CC = GR on trees and when U(GR)⊆X",
            check: t4,
        },
        Experiment {
            id: "T5",
            title: "Theorem 4.1 / Cor. 4.1 — join-only solvability",
            claim: "(D,X) ≡ (D',X) ⟺ CC(D,X) ≤ D' (semantic oracle agrees)",
            check: t5,
        },
        Experiment {
            id: "T6",
            title: "Theorem 4.2 — fixed treefication ≡ bin packing",
            claim: "reduction preserves feasibility in both directions",
            check: t6,
        },
        Experiment {
            id: "T7",
            title: "Theorem 5.1 / Cor. 5.2 — lossless joins",
            claim: "⋈D ⊨ ⋈D' ⟺ CC(D,U(D')) ⊆ D'; trees: ⟺ subtree",
            check: t7,
        },
        Experiment {
            id: "T8",
            title: "Theorem 5.2 / Cor. 5.3 — minimum equivalent sub-schemas",
            claim: "CC(D,X) is minimum-cardinality equivalent and lossless",
            check: t8,
        },
        Experiment {
            id: "T9",
            title: "Theorem 5.3 / Cor. 5.3 — γ-acyclicity",
            claim: "the three characterizations and Fagin's (*) agree",
            check: t9,
        },
        Experiment {
            id: "T10",
            title: "Theorems 6.1–6.4 — tree projections and programs",
            claim: "TP + 2|D| semijoins solves; no TP ⟹ counterexample exists",
            check: t10,
        },
        Experiment {
            id: "E1",
            title: "Extension: Fagin's acyclicity ladder (γ ⊂ β ⊂ α)",
            claim: "one separating schema per rung; hierarchy holds on random schemas",
            check: e1,
        },
        Experiment {
            id: "E2",
            title: "Extension: ultra join reduction (§5.1 / [11])",
            claim: "tree UR states are UJR; every cyclic core admits a non-UJR UR state",
            check: e2,
        },
    ];

    println!("GYO reproduction experiments — Goodman, Shmueli & Tay (1983/84)");
    println!("{:=<100}", "");
    let mut failures = 0;
    for e in &experiments {
        let outcome = (e.check)();
        let (status, detail) = match &outcome {
            Ok(d) => ("PASS", d.clone()),
            Err(d) => {
                failures += 1;
                ("FAIL", d.clone())
            }
        };
        println!("[{:>4}] {:<58} {}", e.id, e.title, status);
        println!("       claim   : {}", e.claim);
        println!("       measured: {}", detail);
        println!("{:-<100}", "");
    }
    println!("{} experiments, {} failures", experiments.len(), failures);
    if failures > 0 {
        std::process::exit(1);
    }
}

fn parse(s: &str, cat: &mut Catalog) -> DbSchema {
    DbSchema::parse(s, cat).unwrap()
}

fn f1() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let rows = [
        ("ab, bc, cd", SchemaKind::Tree),
        ("ab, bc, ac", SchemaKind::Cyclic),
        ("abc, cde, ace, afe", SchemaKind::Tree),
    ];
    let mut out = Vec::new();
    for (s, expected) in rows {
        let d = parse(s, &mut cat);
        let got = classify(&d);
        if got != expected {
            return Err(format!("{s}: expected {expected:?}, got {got:?}"));
        }
        out.push(format!("{s} ⇒ {got:?}"));
    }
    // Also regenerate the qual trees for the two tree schemas.
    let chain = parse("ab, bc, cd", &mut cat);
    let red = gyo_reduce(&chain, &AttrSet::empty());
    let tree = gyo_core::join_tree_from_trace(&chain, &red).ok_or("no qual tree for chain")?;
    out.push(format!("chain qual tree edges: {:?}", tree.edges()));
    Ok(out.join("; "))
}

fn f2() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let ring = parse("ab, bc, cd, da", &mut cat);
    let clique = parse("bcd, acd, abd, abc", &mut cat);
    if classify_core(&ring) != Some(CoreKind::Aring(4)) {
        return Err("4-ring not recognized".into());
    }
    if classify_core(&clique) != Some(CoreKind::Aclique(4)) {
        return Err("4-clique not recognized".into());
    }
    // Fig. 2c in spirit: one schema exposing both cores under different
    // deletion sets.
    let d = parse("abce, bef, dif, cda, dab, bcd, cg", &mut cat);
    let x_ring = AttrSet::parse("abgi", &mut cat).unwrap();
    let x_clique = AttrSet::parse("efgi", &mut cat).unwrap();
    let k1 = classify_core(&d.delete_attrs(&x_ring).reduce());
    let k2 = classify_core(&d.delete_attrs(&x_clique).reduce());
    if k1 != Some(CoreKind::Aring(4)) || k2 != Some(CoreKind::Aclique(4)) {
        return Err(format!("witness classification failed: {k1:?} {k2:?}"));
    }
    let found = find_cyclic_core(&d).ok_or("search found no witness")?;
    Ok(format!(
        "ring & clique recognized; X=abgi ⇒ Aring(4), X=efgi ⇒ Aclique(4); search found {:?} deleting {}",
        found.kind,
        found.deleted.to_notation(&cat)
    ))
}

fn f3() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("abc, ab, bc", &mut cat);
    let x = AttrSet::parse("b", &mut cat).unwrap();
    let t = Tableau::standard(&d, &x);
    let mid = t.subtableau(&[0, 1]);
    let small = t.subtableau(&[0]);
    let f = gyo_core::find_containment(&t, &mid).ok_or("no T→T'")?;
    let g = gyo_core::find_containment(&mid, &small).ok_or("no T'→T''")?;
    let composed: Vec<usize> = f.row_map.iter().map(|&j| g.row_map[j]).collect();
    // replay to confirm the composition is itself a containment mapping
    let mut sym: std::collections::HashMap<_, _> = std::collections::HashMap::new();
    for (i, &j) in composed.iter().enumerate() {
        for c in 0..t.attrs().len() {
            let from = t.rows()[i][c];
            let to = small.rows()[j][c];
            if from.is_distinguished() {
                if from != to {
                    return Err("composition broke a distinguished variable".into());
                }
            } else if let Some(prev) = sym.insert(from, to) {
                if prev != to {
                    return Err("composition is symbol-inconsistent".into());
                }
            }
        }
    }
    Ok(format!(
        "composed row map {composed:?} verified as containment mapping"
    ))
}

fn f4() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, bc, acd, de", &mut cat);
    let shortened = gyo_core::gamma::cycles::shorten_path(&d, &[0, 1, 2, 3]);
    if shortened == vec![0, 2, 3] {
        Ok("path 0-1-2-3 with chord (0,2) shortened to 0-2-3".into())
    } else {
        Err(format!("unexpected shortening: {shortened:?}"))
    }
}

fn f5() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("acd, ab, bc, cd", &mut cat);
    let cycle = GammaCycle {
        rels: vec![0, 1, 2, 3],
        attrs: vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)],
    };
    if !cycle.verify(&d) {
        return Err("seed 4-cycle does not verify".into());
    }
    let contracted = contract_cycle(&d, &cycle);
    if contracted.len() == 3 && contracted.verify(&d) {
        Ok("4-cycle contracted to verified 3-cycle (acd, a, ab, b, bc, c)".into())
    } else {
        Err(format!("contraction failed: {contracted:?}"))
    }
}

fn f6() -> CheckResult {
    // The contracted cycle of F5 witnesses the (ii)-violation: deleting
    // R'₁ ∩ R'ₘ keeps the residues connected.
    let mut cat = Catalog::alphabetic();
    let d = parse("acd, ab, bc, cd", &mut cat);
    let (i, j) = gyo_core::gamma::violating_pair(&d).ok_or("no violating pair")?;
    let x = d.rel(i).intersect(d.rel(j));
    let deleted = d.delete_attrs(&x);
    let comps = deleted.connected_components();
    let connected = comps.iter().any(|c| c.contains(&i) && c.contains(&j));
    if connected {
        Ok(format!(
            "pair ({i},{j}) with X={} stays connected after deletion",
            x.to_notation(&cat)
        ))
    } else {
        Err("expected residues to stay connected".into())
    }
}

fn f7() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let mut out = Vec::new();
    for s in ["ab, bc, cd, da", "bcd, acd, abd, abc"] {
        let d = parse(s, &mut cat);
        let (i, j) =
            gyo_core::gamma::violating_pair(&d).ok_or_else(|| format!("{s}: no violating pair"))?;
        out.push(format!("{s}: pair ({i},{j}) stays connected"));
    }
    Ok(out.join("; "))
}

fn f8() -> CheckResult {
    // For a γ-acyclic schema, extend subtrees one relation at a time: every
    // connected subset must be a subtree (the Fig. 8 induction).
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, abc, cd, ce", &mut cat);
    if !is_gamma_acyclic(&d) {
        return Err("example schema should be γ-acyclic".into());
    }
    let n = d.len();
    let mut checked = 0;
    for mask in 1u32..(1 << n) {
        let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if !d.project_rels(&nodes).is_connected() {
            continue;
        }
        if !is_subtree(&d, &nodes) {
            return Err(format!("connected subset {nodes:?} is not a subtree"));
        }
        checked += 1;
    }
    Ok(format!("{checked} connected subsets, all subtrees"))
}

fn x1() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, bc, cd, de, ef, fg, gh, ha", &mut cat);
    let d_pp = parse("ab, abch, cdgh, defg, ef", &mut cat);
    let d_p = parse("abef, abch, cdgh, defg, ef", &mut cat);
    if classify(&d) != SchemaKind::Cyclic || classify(&d_p) != SchemaKind::Cyclic {
        return Err("D and D′ must be cyclic".into());
    }
    validate(&d_pp, &d_p, &d).ok_or("paper's D″ failed to validate")?;
    let found = find_tree_projection(&d_p, &d, 2, 2_000_000).ok_or("search found no TP")?;
    Ok(format!(
        "paper's D″ validates; search found a TP with {} members",
        found.schema.len()
    ))
}

fn x2() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("abc, ab, bc", &mut cat);
    let lossless = implies_lossless(&d, &[1, 2]);
    let lossless_sem = implies_lossless_semantic(&d, &[1, 2]);
    let subtree = is_subtree(&d, &[1, 2]);
    if !lossless && !lossless_sem && !subtree {
        Ok("⋈D ⊭ ⋈D' by CC criterion, by semantic oracle, and (ab,bc) is not a subtree".into())
    } else {
        Err(format!(
            "expected all false: cc={lossless} sem={lossless_sem} subtree={subtree}"
        ))
    }
}

fn x3() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("abg, bcg, acf, ad, de, ea", &mut cat);
    let x = AttrSet::parse("abc", &mut cat).unwrap();
    let cc = canonical_connection(&d, &x);
    let expected = parse("abg, bcg, ac", &mut cat);
    if cc != expected {
        return Err(format!("CC = {}", cc.to_notation(&cat)));
    }
    // Executable: pruned and full agree on random UR states.
    let pruned = prune_irrelevant(&d, &x);
    let q = JoinQuery::new(d.clone(), x.clone());
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 40, 4);
        let state = DbState::from_universal(&i, &d);
        if q.eval(&state) != pruned.eval(&d, &state) {
            return Err("pruned query diverged on a UR state".into());
        }
    }
    Ok(format!(
        "CC = {} (f column dropped, ad/de/ea pruned); agrees on 5 random UR states",
        cc.to_notation(&cat)
    ))
}

fn t1() -> CheckResult {
    let mut rng = StdRng::seed_from_u64(1);
    let mut cyclic_found = 0;
    for _ in 0..20 {
        let d = gyo_workloads::random_cyclic_schema(&mut rng, 5, 7, 3, 10);
        let w = find_cyclic_core(&d).ok_or("cyclic schema without witness")?;
        let check = d.delete_attrs(&w.deleted).reduce();
        if classify_core(&check) != Some(w.kind) {
            return Err("witness does not re-verify".into());
        }
        cyclic_found += 1;
    }
    for _ in 0..20 {
        let d = gyo_workloads::random_tree_schema(&mut rng, 6, 10, 0.5);
        if find_cyclic_core(&d).is_some() {
            return Err("tree schema produced a witness".into());
        }
    }
    Ok(format!(
        "{cyclic_found}/20 random cyclic schemas yielded verified witnesses; 20/20 tree schemas yielded none"
    ))
}

fn t2() -> CheckResult {
    let mut rng = StdRng::seed_from_u64(2);
    let mut checked = 0;
    for _ in 0..15 {
        let d = gyo_workloads::random_tree_schema(&mut rng, 5, 8, 0.5);
        let n = d.len();
        for mask in 0u32..(1 << n) {
            let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            let fast = is_subtree(&d, &nodes);
            let slow = oracle::is_subtree_bruteforce(&d, &nodes);
            if fast != slow {
                return Err(format!("mismatch on {d:?} nodes {nodes:?}"));
            }
            checked += 1;
        }
    }
    Ok(format!(
        "{checked} (schema, subset) pairs agree with brute force"
    ))
}

fn t3() -> CheckResult {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..25 {
        let d = gyo_workloads::random_cyclic_schema(&mut rng, 5, 7, 3, 10);
        let w = treeifying_relation(&d);
        if !is_tree_schema(&d.with_rel(w.clone())) {
            return Err("U(GR(D)) failed to treeify".into());
        }
        // Any single relation missing an attribute of U(GR(D)) must fail.
        if !w.is_empty() {
            let mut smaller = w.clone();
            let first = smaller.iter().next().unwrap();
            smaller.remove(first);
            if is_tree_schema(&d.with_rel(smaller)) {
                return Err("a proper subset of U(GR(D)) treeified".into());
            }
        }
    }
    Ok("25/25 random cyclic schemas: U(GR(D)) treeifies, proper subsets do not".into())
}

fn t4() -> CheckResult {
    let mut rng = StdRng::seed_from_u64(4);
    let mut tree_eq = 0;
    let mut le_checked = 0;
    for round in 0..20 {
        let d = if round % 2 == 0 {
            gyo_workloads::random_tree_schema(&mut rng, 4, 7, 0.5)
        } else {
            gyo_workloads::random_cyclic_schema(&mut rng, 4, 6, 3, 10)
        };
        let u: Vec<AttrId> = d.attributes().iter().collect();
        let x = AttrSet::from_iter(u.iter().take(2).copied());
        let cc = cc_via_minimization(&d, &x);
        let g = gr(&d, &x);
        if !cc.le(&g) {
            return Err(format!("CC ≰ GR for {d:?}, X={x:?}"));
        }
        le_checked += 1;
        if is_tree_schema(&d) {
            if cc != canonical_connection(&d, &x) {
                return Err("fast path diverged from minimization on a tree".into());
            }
            tree_eq += 1;
        }
    }
    Ok(format!(
        "CC ≤ GR on {le_checked} random schemas; CC = GR on {tree_eq} tree schemas"
    ))
}

fn t5() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("abg, bcg, acf, ad, de, ea", &mut cat);
    let x = AttrSet::parse("abc", &mut cat).unwrap();
    let full = JoinQuery::new(d.clone(), x.clone());
    let n = d.len();
    let mut agreements = 0;
    for mask in 1u32..(1 << n) {
        let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        let d_sub = d.project_rels(&nodes);
        if !x.is_subset(&d_sub.attributes()) {
            continue;
        }
        let sub = JoinQuery::new(d_sub, x.clone());
        let by_cc = joins_only_solvable(&d, &x, &nodes);
        let by_sem = weakly_equivalent_semantic(&full, &sub);
        if by_cc != by_sem {
            return Err(format!("mismatch on subset {nodes:?}"));
        }
        agreements += 1;
    }
    Ok(format!(
        "{agreements} sub-schemas: CC criterion ≡ frozen-tableau semantics"
    ))
}

fn t6() -> CheckResult {
    let instances = [
        (vec![3, 3], 1, 6, true),
        (vec![3, 3], 1, 5, false),
        (vec![3, 3], 2, 3, true),
        (vec![3, 4, 3], 2, 7, true),
        (vec![4, 4, 5], 2, 7, false),
        (vec![3, 3, 3, 3], 2, 6, true),
    ];
    for (sizes, k, b, feasible) in instances {
        let inst = BinPacking::new(sizes.clone(), k, b);
        let direct = solve_bin_packing(&inst).is_some();
        if direct != feasible {
            return Err(format!("bin packing {sizes:?} K={k} B={b}: got {direct}"));
        }
        let (d, blocks) = bin_packing_to_treefication(&inst);
        let via_schema =
            solve_aclique_treefication(&d, k, b).map_err(|e| format!("structured solver: {e}"))?;
        if via_schema.is_some() != feasible {
            return Err(format!("treefication side disagrees on {sizes:?}"));
        }
        if let Some(added) = via_schema {
            let back = treefication_witness_to_packing(&blocks, &added)
                .ok_or("witness did not cover all blocks")?;
            if !inst.is_valid(&back) {
                return Err("mapped-back packing invalid".into());
            }
        }
        // Cross-check the generic exact solver on the small instances.
        if d.attributes().len() <= 7 {
            let generic = solve_treefication_exact(&d, k, b);
            if generic.is_some() != feasible {
                return Err(format!("generic exact solver disagrees on {sizes:?}"));
            }
        }
    }
    Ok("6/6 instances agree across bin packing, structured, and generic solvers".into())
}

fn t7() -> CheckResult {
    let mut rng = StdRng::seed_from_u64(7);
    let mut checked = 0;
    for round in 0..12 {
        let d = if round % 2 == 0 {
            gyo_workloads::random_tree_schema(&mut rng, 4, 7, 0.5)
        } else {
            gyo_workloads::random_cyclic_schema(&mut rng, 4, 6, 3, 10)
        };
        let n = d.len();
        for mask in 1u32..(1 << n) {
            let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            let by_cc = implies_lossless(&d, &nodes);
            let by_sem = implies_lossless_semantic(&d, &nodes);
            if by_cc != by_sem {
                return Err(format!("CC vs semantic mismatch on {d:?} {nodes:?}"));
            }
            if is_tree_schema(&d) && by_cc != is_subtree(&d, &nodes) {
                return Err(format!("Cor 5.2 violated on {d:?} {nodes:?}"));
            }
            checked += 1;
        }
    }
    Ok(format!(
        "{checked} (schema, sub-schema) pairs agree (CC ≡ semantics ≡ subtree on trees)"
    ))
}

fn t8() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    for (s, xs) in [
        ("abg, bcg, acf, ad, de, ea", "abc"),
        ("ab, bc, cd", "ad"),
        ("ab, bc, cd, da", "ac"),
    ] {
        let d = parse(s, &mut cat);
        let x = AttrSet::parse(xs, &mut cat).unwrap();
        let cc = gyo_core::query::min_equivalent_subschema(&d, &x);
        // Theorem 5.2: CC(D, U(D')) = D' for D' = CC(D, X).
        let again = canonical_connection(&d, &cc.attributes());
        if again != cc {
            return Err(format!("Thm 5.2 failed for ({s}, {xs})"));
        }
        // Minimality: the minimal tableau has |CC| rows.
        let t = Tableau::standard(&d, &x);
        if minimize(&t).tableau.row_count() != cc.len() {
            return Err(format!("CC size ≠ minimal tableau rows for ({s}, {xs})"));
        }
    }
    Ok("3/3 queries: CC(D, U(CC)) = CC and |CC| = minimal tableau size".into())
}

fn t9() -> CheckResult {
    let mut rng = StdRng::seed_from_u64(9);
    let mut checked = 0;
    for round in 0..30 {
        let d = if round % 2 == 0 {
            gyo_workloads::random_tree_schema(&mut rng, 4, 6, 0.5)
        } else {
            gyo_workloads::random_schema(&mut rng, 4, 6, 3)
        };
        let by_pairs = is_gamma_acyclic(&d);
        let by_cycle = find_weak_gamma_cycle(&d).is_none();
        let by_subtrees = is_gamma_acyclic_via_subtrees(&d);
        if by_pairs != by_cycle || by_pairs != by_subtrees {
            return Err(format!(
                "characterizations disagree on {d:?}: pairs={by_pairs} cycle={by_cycle} subtrees={by_subtrees}"
            ));
        }
        // Fagin (*): γ-acyclic ⟺ all connected sub-schemas lossless.
        let n = d.len();
        let mut all_lossless = true;
        for mask in 1u32..(1 << n) {
            let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if d.project_rels(&nodes).is_connected() && !implies_lossless(&d, &nodes) {
                all_lossless = false;
                break;
            }
        }
        if all_lossless != by_pairs {
            return Err(format!("Fagin (*) violated on {d:?}"));
        }
        checked += 1;
    }
    Ok(format!(
        "{checked} random schemas: 3 characterizations + Fagin (*) all agree"
    ))
}

fn t10() -> CheckResult {
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, bc, cd, da", &mut cat);
    let x = AttrSet::parse("ac", &mut cat).unwrap();
    let q = JoinQuery::new(d.clone(), x.clone());
    let cc = canonical_connection(&d, &x);
    let goal = cc.with_rel(x.clone());

    // Sufficiency: triangulating program + ≤ 2|D| semijoins solves.
    let mut p = Program::new(d.clone());
    p.join(0, 1);
    p.join(2, 3);
    let tp = find_tree_projection(&p.p_of_d(), &goal, 2, 1_000_000)
        .ok_or("triangulated program should admit a TP")?;
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..8 {
        let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 30, 3);
        let state = DbState::from_universal(&i, &d);
        if solve_with_tree_projection(&p, &tp, &state, &x) != q.eval(&state) {
            return Err("TP-based solver diverged from naive".into());
        }
    }
    let semijoins = 2 * (tp.schema.len() - 1);

    // Necessity (contrapositive): a program without a TP fails somewhere.
    let mut bad = Program::new(d.clone());
    let j = bad.join(0, 1);
    bad.project(j, x.clone());
    if find_tree_projection(&bad.p_of_d(), &goal, 2, 1_000_000).is_some() {
        return Err("partial program unexpectedly has a TP".into());
    }
    if bad.find_counterexample(&q, &mut rng, 60, 30, 3).is_none() {
        return Err("no counterexample found for the TP-less program".into());
    }
    Ok(format!(
        "sufficiency: solved with {semijoins} ≤ {} semijoins on 8 UR states; necessity: TP-less program refuted",
        2 * d.len()
    ))
}

fn e1() -> CheckResult {
    use gyo_core::gamma::{acyclicity_report, is_beta_acyclic, AcyclicityLevel};
    let mut cat = Catalog::alphabetic();
    let rungs = [
        ("ab, bc, cd", AcyclicityLevel::Gamma),
        ("abc, ab, bc", AcyclicityLevel::Beta),
        ("abc, ab, bc, ac", AcyclicityLevel::Alpha),
        ("ab, bc, cd, da", AcyclicityLevel::Cyclic),
    ];
    for (s, expected) in rungs {
        let d = parse(s, &mut cat);
        let got = acyclicity_report(&d).level;
        if got != expected {
            return Err(format!("{s}: expected {expected:?}, got {got:?}"));
        }
    }
    // hierarchy on random schemas
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..30 {
        let d = gyo_workloads::random_schema(&mut rng, 4, 6, 3);
        let alpha = is_tree_schema(&d);
        let beta = is_beta_acyclic(&d);
        let gamma = is_gamma_acyclic(&d);
        if (gamma && !beta) || (beta && !alpha) {
            return Err(format!("hierarchy violated on {d:?}"));
        }
    }
    Ok("4 separating rungs verified; γ ⟹ β ⟹ α on 30 random schemas".into())
}

fn e2() -> CheckResult {
    use gyo_core::query::is_ujr;
    let mut cat = Catalog::alphabetic();
    let mut rng = StdRng::seed_from_u64(102);
    // trees: UR states are UJR
    for s in ["ab, bc, cd", "abc, cde, ace", "ab, ac, ad"] {
        let d = parse(s, &mut cat);
        for _ in 0..4 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 20, 4);
            let state = DbState::from_universal(&i, &d);
            if !is_ujr(&d, &state) {
                return Err(format!("tree UR state not UJR for {s}"));
            }
        }
    }
    // cyclic cores: sampling finds a non-UJR UR state
    for s in ["ab, bc, ac", "ab, bc, cd, da"] {
        let d = parse(s, &mut cat);
        let mut found = false;
        for _ in 0..60 {
            let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 6, 2);
            let state = DbState::from_universal(&i, &d);
            if !is_ujr(&d, &state) {
                found = true;
                break;
            }
        }
        if !found {
            return Err(format!("no non-UJR UR state found for {s}"));
        }
    }
    Ok("3 tree families UJR on all samples; triangle & 4-ring yielded non-UJR UR states".into())
}
