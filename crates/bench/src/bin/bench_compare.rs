//! Compares bench baseline files captured via the criterion shim's
//! `GYO_BENCH_SAVE` hook (one JSON object per line:
//! `{"id": …, "median_ns": …, …}`).
//!
//! ```text
//! bench_compare BASELINE CURRENT [--filter SUBSTRING] [--fail-above FACTOR]
//!               [--summary]
//!     Per-id table of baseline vs. current medians with ratios; with
//!     --fail-above, exits nonzero if any shared id regressed by more than
//!     FACTOR× (e.g. 2.0). --filter restricts the table (and the gate) to
//!     ids containing SUBSTRING — CI uses it to hold specific bench
//!     families (e.g. classify/materialize) to their own thresholds.
//!     --summary appends one line per bench *family* (the `group/subgroup`
//!     id prefix) with the geometric mean of its current/baseline ratios —
//!     the one-screen view of where a change helped and where it cost.
//!
//! bench_compare --ratio FILE NUMERATOR_ID DENOMINATOR_ID [MIN]
//!     Prints median(NUMERATOR_ID) / median(DENOMINATOR_ID) from one file;
//!     with MIN, exits nonzero if the ratio falls below it. Used by CI to
//!     assert the cached full-reducer engine's ≥10× win over the naive
//!     engine stays real.
//! ```
//!
//! The parser is deliberately hand-rolled for exactly the shim's flat
//! one-object-per-line output — no JSON dependency exists offline.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--ratio") => ratio_mode(&args[1..]),
        Some(_) if args.len() >= 2 && !args[0].starts_with("--") => compare_mode(&args),
        _ => {
            eprintln!(
                "usage: bench_compare BASELINE CURRENT [--filter SUBSTRING] [--fail-above FACTOR]\n\
                        bench_compare --ratio FILE NUMERATOR_ID DENOMINATOR_ID [MIN]"
            );
            ExitCode::from(2)
        }
    }
}

fn compare_mode(args: &[String]) -> ExitCode {
    let mut baseline = load(&args[0]);
    let mut current = load(&args[1]);
    let mut fail_above: Option<f64> = None;
    let mut filter: Option<String> = None;
    let mut summary = false;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--fail-above" => {
                fail_above = Some(
                    rest.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--fail-above needs a numeric FACTOR")),
                )
            }
            "--filter" => {
                filter = Some(
                    rest.next()
                        .cloned()
                        .unwrap_or_else(|| die("--filter needs a SUBSTRING")),
                )
            }
            "--summary" => summary = true,
            other => die(&format!("unknown flag {other}")),
        }
    }
    if let Some(f) = &filter {
        baseline.retain(|id, _| id.contains(f.as_str()));
        current.retain(|id, _| id.contains(f.as_str()));
        if baseline.is_empty() && current.is_empty() {
            die::<()>(&format!("--filter {f:?} matches no bench ids"));
        }
    }

    let mut worst: f64 = 0.0;
    let mut shared = 0usize;
    println!(
        "{:<55} {:>12} {:>12} {:>8}",
        "id", "baseline", "current", "ratio"
    );
    for (id, base_ns) in &baseline {
        let Some(cur_ns) = current.get(id) else {
            println!("{id:<55} {:>12} {:>12} {:>8}", fmt_ns(*base_ns), "-", "-");
            continue;
        };
        shared += 1;
        let ratio = cur_ns / base_ns;
        worst = worst.max(ratio);
        let marker = if ratio > 1.5 {
            " <-- slower"
        } else if ratio < 0.67 {
            " <-- faster"
        } else {
            ""
        };
        println!(
            "{id:<55} {:>12} {:>12} {:>7.2}x{marker}",
            fmt_ns(*base_ns),
            fmt_ns(*cur_ns),
            ratio
        );
    }
    for id in current.keys().filter(|id| !baseline.contains_key(*id)) {
        println!(
            "{id:<55} {:>12} {:>12} {:>8}",
            "-",
            fmt_ns(current[id]),
            "new"
        );
    }
    println!("\n{shared} shared ids; worst current/baseline ratio: {worst:.2}x");
    if summary {
        print_summary(&baseline, &current);
    }
    if let Some(limit) = fail_above {
        // A gate over zero shared ids would pass vacuously — e.g. after a
        // bench id rename leaves the baseline and current sides disjoint —
        // so an empty intersection is itself a failure.
        if shared == 0 {
            eprintln!("FAIL: --fail-above has no shared ids to compare");
            return ExitCode::FAILURE;
        }
        if worst > limit {
            eprintln!("FAIL: regression above {limit:.2}x");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Per-family geomean summary: ids group by their `group/subgroup` prefix
/// (everything before the third-to-last `/`-separated segment, i.e. the
/// criterion group name), and each family line reports the geometric mean
/// of the shared ids' current/baseline ratios. The geomean — not the
/// arithmetic mean — because ratios compose multiplicatively: a 2× win and
/// a 2× loss must cancel to 1.00x, not average to 1.25x.
fn print_summary(baseline: &BTreeMap<String, f64>, current: &BTreeMap<String, f64>) {
    let family_of = |id: &str| -> String {
        // ids look like `group/subgroup/function/param`; the criterion
        // group name is everything up to the last two segments.
        let parts: Vec<&str> = id.split('/').collect();
        if parts.len() > 2 {
            parts[..parts.len() - 2].join("/")
        } else {
            parts[0].to_string()
        }
    };
    let mut families: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for (id, base_ns) in baseline {
        if let Some(cur_ns) = current.get(id) {
            let e = families.entry(family_of(id)).or_insert((0.0, 0));
            e.0 += (cur_ns / base_ns).ln();
            e.1 += 1;
        }
    }
    if families.is_empty() {
        println!("\nno shared ids to summarize");
        return;
    }
    println!("\nper-family geomean (current/baseline):");
    println!("{:<40} {:>5} {:>9}", "family", "ids", "geomean");
    for (family, (log_sum, n)) in &families {
        let geomean = (log_sum / *n as f64).exp();
        let marker = if geomean > 1.1 {
            " <-- slower"
        } else if geomean < 0.9 {
            " <-- faster"
        } else {
            ""
        };
        println!("{family:<40} {n:>5} {geomean:>8.2}x{marker}");
    }
}

fn ratio_mode(args: &[String]) -> ExitCode {
    if args.len() < 3 {
        die::<()>("--ratio needs FILE NUMERATOR_ID DENOMINATOR_ID [MIN]");
    }
    let results = load(&args[0]);
    let lookup = |id: &str| -> f64 {
        *results
            .get(id)
            .unwrap_or_else(|| die(&format!("id {id:?} not found in {}", args[0])))
    };
    let (num, den) = (lookup(&args[1]), lookup(&args[2]));
    let ratio = num / den;
    println!(
        "{} / {} = {:.2}x  ({} / {})",
        args[1],
        args[2],
        ratio,
        fmt_ns(num),
        fmt_ns(den)
    );
    if let Some(min) = args.get(3) {
        let min: f64 = min.parse().unwrap_or_else(|_| die("MIN must be a number"));
        if ratio < min {
            eprintln!("FAIL: ratio {ratio:.2}x is below the required {min:.2}x");
            return ExitCode::FAILURE;
        }
        println!("OK: ratio {ratio:.2}x >= {min:.2}x");
    }
    ExitCode::SUCCESS
}

/// Loads `{"id": "...", "median_ns": N, ...}` lines into id → median. Later
/// lines win, so re-running a bench into the same file self-corrects.
fn load(path: &str) -> BTreeMap<String, f64> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = field_str(line, "id")
            .unwrap_or_else(|| die(&format!("{path}:{}: no \"id\" field", lineno + 1)));
        let median = field_num(line, "median_ns")
            .unwrap_or_else(|| die(&format!("{path}:{}: no \"median_ns\" field", lineno + 1)));
        out.insert(id, median);
    }
    if out.is_empty() {
        die::<()>(&format!("{path}: no bench results"));
    }
    out
}

/// Extracts `"key":"value"` from a flat JSON object line (values never
/// contain escapes: bench ids are `[A-Za-z0-9_/]+`).
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"key":<number>` from a flat JSON object line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn die<T>(msg: &str) -> T {
    eprintln!("bench_compare: {msg}");
    std::process::exit(2);
}
