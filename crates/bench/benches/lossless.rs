//! T7 — lossless-join checking: the CC criterion vs. the semantic
//! (frozen-tableau) oracle, on tree and cyclic schemas.
//!
//! Expected shape: on tree schemas the CC route is a GYO reduction
//! (near-linear); the semantic oracle pays for join materialization. On
//! cyclic schemas the CC route pays for tableau minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_core::query::{implies_lossless, implies_lossless_semantic};
use gyo_workloads::{aring_n, chain};
use std::hint::black_box;
use std::time::Duration;

fn bench_tree_schemas(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossless/tree");
    for n in [4usize, 8, 16, 32] {
        let d = chain(n);
        let sub: Vec<usize> = (0..n / 2).collect(); // a prefix subtree
        group.bench_with_input(
            BenchmarkId::new("cc_criterion", n),
            &(d.clone(), sub.clone()),
            |b, (d, sub)| b.iter(|| black_box(implies_lossless(d, sub))),
        );
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("semantic", n), &(d, sub), |b, (d, sub)| {
                b.iter(|| black_box(implies_lossless_semantic(d, sub)))
            });
        }
    }
    group.finish();
}

fn bench_cyclic_schemas(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossless/cyclic");
    for n in [4usize, 6, 8] {
        let d = aring_n(n);
        let sub: Vec<usize> = (0..n - 1).collect(); // ring minus one edge
        group.bench_with_input(
            BenchmarkId::new("cc_criterion", n),
            &(d.clone(), sub.clone()),
            |b, (d, sub)| b.iter(|| black_box(implies_lossless(d, sub))),
        );
        group.bench_with_input(BenchmarkId::new("semantic", n), &(d, sub), |b, (d, sub)| {
            b.iter(|| black_box(implies_lossless_semantic(d, sub)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_tree_schemas, bench_cyclic_schemas
}
criterion_main!(benches);
