//! X3/T5/B3 — the §6 payoff: CC-based irrelevant-relation pruning.
//!
//! Expected shape: the full join program pays for the irrelevant tail
//! (growing with tail length and data size); the CC-pruned program's cost
//! is flat in the tail length. "The UR property is helpful to the extent
//! that CC(D, X) is smaller than D." The `engine_tail` group replays the
//! sweep on a tree family through the cached full-reducer engine: even a
//! cached plan pays `2·(n−1)` semijoins for the unpruned chain, while the
//! pruned plan's cost is flat — pruning and plan caching compose.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_bench::{bench_rng, pruning_family, tree_pruning_family};
use gyo_core::prelude::*;
use gyo_core::{Engine, FullReducerEngine};
use gyo_workloads::random_universal;
use std::hint::black_box;
use std::time::Duration;

fn bench_pruning_payoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/tail_sweep");
    for tail in [2usize, 8, 32] {
        let (d, x) = pruning_family(tail);
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), 400, 50_000);
        let state = DbState::from_universal(&i, &d);
        let q = JoinQuery::new(d.clone(), x.clone());
        let pruned = prune_irrelevant(&d, &x);
        assert_eq!(q.eval(&state), pruned.eval(&d, &state), "sanity");

        group.bench_with_input(
            BenchmarkId::new("full_join", tail),
            &(&q, &state),
            |b, (q, state)| b.iter(|| black_box(q.eval(state).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("cc_pruned", tail),
            &(&pruned, &d, &state),
            |b, (p, d, state)| b.iter(|| black_box(p.eval(d, state).len())),
        );
    }
    group.finish();
}

fn bench_engine_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/engine_tail");
    let engine = FullReducerEngine::new();
    for tail in [2usize, 8, 32] {
        let (d, x) = tree_pruning_family(tail);
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), 400, 50_000);
        let state = DbState::from_universal(&i, &d);
        let pruned = prune_irrelevant(&d, &x);
        // Materialize the pruned state once (what PrunedQuery::eval does
        // internally), so the bench isolates answering cost.
        let pruned_state = DbState::new(
            &pruned.schema,
            pruned
                .schema
                .iter()
                .zip(&pruned.hosts)
                .map(|(s, &h)| state.rel(h).project(s))
                .collect(),
        );
        let expected = state.eval_join_query(&x);
        assert_eq!(engine.answer(&d, &state, &x).unwrap(), expected, "sanity");
        assert_eq!(
            engine.answer(&pruned.schema, &pruned_state, &x).unwrap(),
            expected,
            "pruned sanity"
        );

        group.bench_with_input(BenchmarkId::new("engine_full", tail), &state, |b, state| {
            b.iter(|| black_box(engine.answer(&d, state, &x).unwrap().len()))
        });
        group.bench_with_input(
            BenchmarkId::new("engine_pruned", tail),
            &pruned_state,
            |b, pruned_state| {
                b.iter(|| {
                    black_box(
                        engine
                            .answer(&pruned.schema, pruned_state, &x)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_data_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/data_sweep");
    let (d, x) = pruning_family(8);
    let q = JoinQuery::new(d.clone(), x.clone());
    let pruned = prune_irrelevant(&d, &x);
    for rows in [100usize, 400, 1600] {
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), rows, 100 * rows as u64);
        let state = DbState::from_universal(&i, &d);
        group.bench_with_input(BenchmarkId::new("full_join", rows), &state, |b, state| {
            b.iter(|| black_box(q.eval(state).len()))
        });
        group.bench_with_input(BenchmarkId::new("cc_pruned", rows), &state, |b, state| {
            b.iter(|| black_box(pruned.eval(&d, state).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_pruning_payoff, bench_engine_tail, bench_data_sweep
}
criterion_main!(benches);
