//! X1 — tree-projection existence search.
//!
//! Expected shape: trivial when `reduce(D′)` is already a tree; the
//! cover-driven search cost grows with ring size and with how many
//! connector members are allowed (existence is NP-hard in general).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_core::treeproj::find_tree_projection;
use gyo_core::{AttrSet, Catalog, DbSchema};
use gyo_workloads::aring_n;
use std::hint::black_box;
use std::time::Duration;

/// D = n-ring; D′ = consecutive triangles (a fan triangulation), which
/// admits a TP.
fn triangulated_ring(n: usize) -> (DbSchema, DbSchema) {
    let d = aring_n(n);
    let tris: Vec<AttrSet> = (1..n as u32 - 1)
        .map(|i| AttrSet::from_raw(&[0, i, i + 1]))
        .collect();
    (d, DbSchema::new(tris))
}

fn bench_triangulated_rings(c: &mut Criterion) {
    let mut group = c.benchmark_group("treeproj/triangulated_ring");
    for n in [4usize, 6, 8] {
        let (d, d_p) = triangulated_ring(n);
        assert!(
            find_tree_projection(&d_p, &d, 2, 5_000_000).is_some(),
            "fan triangulation admits a TP"
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &(d, d_p), |b, (d, d_p)| {
            b.iter(|| black_box(find_tree_projection(d_p, d, 2, 5_000_000).is_some()))
        });
    }
    group.finish();
}

fn bench_paper_example(c: &mut Criterion) {
    let mut cat = Catalog::alphabetic();
    let d = DbSchema::parse("ab, bc, cd, de, ef, fg, gh, ha", &mut cat).unwrap();
    let d_p = DbSchema::parse("abef, abch, cdgh, defg, ef", &mut cat).unwrap();
    let mut group = c.benchmark_group("treeproj/section_3_2");
    group.bench_function("search", |b| {
        b.iter(|| black_box(find_tree_projection(&d, &d, 0, 10_000).is_some()));
        // the negative case (D against itself) is the costly direction
    });
    group.bench_function("paper_instance", |b| {
        b.iter(|| black_box(find_tree_projection(&d_p, &d, 2, 5_000_000).is_some()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_triangulated_rings, bench_paper_example
}
criterion_main!(benches);
