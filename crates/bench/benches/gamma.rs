//! F4–F6/T9 — γ-acyclicity testing and weak-γ-cycle extraction.
//!
//! Expected shape: the pairwise test (Theorem 5.3(ii)) is a polynomial
//! `O(n²)` sweep; cycle extraction adds one BFS. The exponential subtree
//! oracle is benchmarked at toy sizes only, to show *why* characterization
//! (ii) matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_core::gamma::{find_weak_gamma_cycle, is_gamma_acyclic, is_gamma_acyclic_via_subtrees};
use gyo_workloads::{chain, grid, star};
use std::hint::black_box;
use std::time::Duration;

fn bench_pairwise_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma/pairwise");
    for n in [10usize, 40, 160] {
        group.bench_with_input(BenchmarkId::new("chain", n), &chain(n), |b, d| {
            b.iter(|| black_box(is_gamma_acyclic(d)))
        });
        group.bench_with_input(BenchmarkId::new("star", n), &star(n), |b, d| {
            b.iter(|| black_box(is_gamma_acyclic(d)))
        });
    }
    group.finish();
}

fn bench_cycle_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma/extract");
    for side in [2usize, 4, 8] {
        let d = grid(side, side);
        group.bench_with_input(BenchmarkId::new("grid", side), &d, |b, d| {
            b.iter(|| black_box(find_weak_gamma_cycle(d).map(|c| c.len())))
        });
    }
    group.finish();
}

fn bench_subtree_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma/subtree_oracle");
    for n in [4usize, 7, 10] {
        let d = chain(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &d, |b, d| {
            b.iter(|| black_box(is_gamma_acyclic_via_subtrees(d)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_pairwise_test, bench_cycle_extraction, bench_subtree_oracle
}
criterion_main!(benches);
