//! T4/B2 — canonical connections: the Theorem 3.3 fast path vs. tableau
//! minimization.
//!
//! Expected shape: on tree schemas `CC = GR` turns an exponential
//! minimization into a near-linear reduction; on cyclic schemas the
//! minimization cost grows quickly with row count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_bench::bench_rng;
use gyo_core::tableau::{canonical_connection, cc_via_minimization};
use gyo_core::AttrSet;
use gyo_workloads::{aring_n, chain, random_tree_schema};
use std::hint::black_box;
use std::time::Duration;

fn target_of(d: &gyo_core::DbSchema) -> AttrSet {
    // first two attributes of the universe
    AttrSet::from_iter(d.attributes().iter().take(2))
}

fn bench_tree_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc/tree");
    for n in [4usize, 8, 16, 64] {
        let d = chain(n);
        let x = target_of(&d);
        group.bench_with_input(
            BenchmarkId::new("fast_path", n),
            &(d.clone(), x.clone()),
            |b, (d, x)| b.iter(|| black_box(canonical_connection(d, x).len())),
        );
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("minimization", n), &(d, x), |b, (d, x)| {
                b.iter(|| black_box(cc_via_minimization(d, x).len()))
            });
        }
    }
    group.finish();
}

fn bench_cyclic_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc/cyclic");
    for n in [4usize, 6, 8, 10] {
        let d = aring_n(n);
        let x = target_of(&d);
        group.bench_with_input(BenchmarkId::new("aring", n), &(d, x), |b, (d, x)| {
            b.iter(|| black_box(canonical_connection(d, x).len()))
        });
    }
    group.finish();
}

fn bench_random_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc/random_tree");
    let mut rng = bench_rng();
    for n in [6usize, 10, 14] {
        let d = random_tree_schema(&mut rng, n, 2 * n, 0.4);
        let x = target_of(&d);
        group.bench_with_input(
            BenchmarkId::new("fast_path", n),
            &(d.clone(), x.clone()),
            |b, (d, x)| b.iter(|| black_box(canonical_connection(d, x).len())),
        );
        group.bench_with_input(BenchmarkId::new("minimization", n), &(d, x), |b, (d, x)| {
            b.iter(|| black_box(cc_via_minimization(d, x).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_tree_fast_path, bench_cyclic_minimization, bench_random_trees
}
criterion_main!(benches);
