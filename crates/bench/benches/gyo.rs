//! B1/T3 — GYO reduction scaling and the Corollary 3.2 treeifying relation.
//!
//! Expected shape: near-linear growth for the incremental engine on tree
//! families; the cyclic residue computation (`U(GR(D))`) costs the same as
//! a full reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_bench::{bench_rng, ring_with_fringe};
use gyo_core::reduce::treeifying_relation;
use gyo_core::{gyo_reduce, AttrSet};
use gyo_workloads::{chain, random_tree_schema};
use std::hint::black_box;
use std::time::Duration;

fn bench_reduction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gyo/scaling");
    for n in [100usize, 400, 1600, 6400] {
        let d = chain(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &d, |b, d| {
            b.iter(|| black_box(gyo_reduce(d, &AttrSet::empty()).trace.len()))
        });
        let mut rng = bench_rng();
        let rt = random_tree_schema(&mut rng, n, n, 0.3);
        group.bench_with_input(BenchmarkId::new("random_tree", n), &rt, |b, d| {
            b.iter(|| black_box(gyo_reduce(d, &AttrSet::empty()).trace.len()))
        });
    }
    group.finish();
}

fn bench_sacred_sets(c: &mut Criterion) {
    // Reductions with sacred attributes stop early: the larger X, the less
    // work — the fast path behind CC(D, X) = GR(D, X) on trees.
    let mut group = c.benchmark_group("gyo/sacred");
    let d = chain(1000);
    for sacred_count in [0usize, 10, 100, 1000] {
        let x = AttrSet::from_iter((0..sacred_count as u32).map(gyo_core::AttrId));
        group.bench_with_input(BenchmarkId::from_parameter(sacred_count), &x, |b, x| {
            b.iter(|| black_box(gyo_reduce(&d, x).result.len()))
        });
    }
    group.finish();
}

fn bench_treeifying_relation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gyo/treeifying_relation");
    for pendants in [0usize, 100, 1000] {
        let d = ring_with_fringe(8, pendants);
        group.bench_with_input(BenchmarkId::from_parameter(pendants), &d, |b, d| {
            b.iter(|| black_box(treeifying_relation(d).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_reduction_scaling, bench_sacred_sets, bench_treeifying_relation
}
criterion_main!(benches);
