//! T6 — Theorem 4.2's empirical signature: exact fixed treefication blows
//! up exponentially; the Aclique-structured instances reduce to (tiny) bin
//! packing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_core::treefy::{
    bin_packing_to_treefication, solve_aclique_treefication, solve_bin_packing,
    solve_treefication_exact, BinPacking,
};
use gyo_workloads::aring_n;
use std::hint::black_box;
use std::time::Duration;

fn bench_exact_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("treefy/exact_blowup");
    for n in [4usize, 5, 6, 7] {
        let d = aring_n(n);
        // Feasible: two half-covers exist and the biggest-candidates-first
        // search finds them quickly.
        group.bench_with_input(BenchmarkId::new("ring_k2_feasible", n), &d, |b, d| {
            b.iter(|| black_box(solve_treefication_exact(d, 2, (d.len() - 1) as u64).is_some()))
        });
        // Infeasible: K = 1 with B = n − 1 (Theorem 3.2(iii) forbids it),
        // so the search must exhaust the whole 2^n candidate pool — the
        // exponential signature of Theorem 4.2.
        group.bench_with_input(BenchmarkId::new("ring_k1_infeasible", n), &d, |b, d| {
            b.iter(|| black_box(solve_treefication_exact(d, 1, (d.len() - 1) as u64).is_none()))
        });
        // Infeasible with K = 2 but B too small: quadratic in the pool.
        if n <= 6 {
            group.bench_with_input(BenchmarkId::new("ring_k2_infeasible", n), &d, |b, d| {
                b.iter(|| black_box(solve_treefication_exact(d, 2, 2).is_none()))
            });
        }
    }
    group.finish();
}

fn bench_structured_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("treefy/structured");
    for items in [3usize, 6, 9] {
        let sizes: Vec<u64> = (0..items).map(|i| 3 + (i as u64 % 3)).collect();
        let total: u64 = sizes.iter().sum();
        let inst = BinPacking::new(sizes, items.div_ceil(2), total.div_ceil(2) + 2);
        let (d, _) = bin_packing_to_treefication(&inst);
        group.bench_with_input(
            BenchmarkId::new("aclique_instances", items),
            &(d, inst.bins, inst.capacity),
            |b, (d, k, cap)| {
                b.iter(|| black_box(solve_aclique_treefication(d, *k, *cap).unwrap().is_some()))
            },
        );
    }
    group.finish();
}

fn bench_bin_packing_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("treefy/binpack");
    for items in [8usize, 12, 16] {
        let sizes: Vec<u64> = (0..items).map(|i| 3 + (i as u64 * 7 % 5)).collect();
        let total: u64 = sizes.iter().sum();
        let inst = BinPacking::new(sizes, items / 2, total.div_ceil((items / 2) as u64) + 3);
        group.bench_with_input(BenchmarkId::new("exact", items), &inst, |b, inst| {
            b.iter(|| black_box(solve_bin_packing(inst).is_some()))
        });
        group.bench_with_input(BenchmarkId::new("ffd", items), &inst, |b, inst| {
            b.iter(|| black_box(gyo_core::treefy::first_fit_decreasing(inst).is_some()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_exact_blowup, bench_structured_solver, bench_bin_packing_solvers
}
criterion_main!(benches);
