//! T10/B4 — semijoin programs vs. monolithic joins on tree schemas.
//!
//! Expected shape (the §4 "tree case"): the full-reducer-then-join strategy
//! wins when joins are selective (semijoins shrink states before any join
//! blows up); the monolithic join catches up when everything matches
//! (nothing to filter). The crossover moves with the value-domain size.
//! The `cached_engine` series runs the same Yannakakis pipeline through
//! [`FullReducerEngine`], whose compiled plan amortizes the per-call GYO
//! reduction and position derivations that `yannakakis` pays each time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_bench::bench_rng;
use gyo_core::prelude::*;
use gyo_core::relation::{semijoin_program_with, ExecScratch, SemijoinStep};
use gyo_core::{Engine, FullReducerEngine};
use gyo_workloads::{chain, family_state, random_universal, tpch_like, wide_chain};
use std::hint::black_box;
use std::time::Duration;

fn target(d: &DbSchema) -> AttrSet {
    let u: Vec<AttrId> = d.attributes().iter().collect();
    AttrSet::from_iter([u[0], u[u.len() - 1]])
}

fn bench_selectivity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("programs/selectivity");
    let d = chain(8);
    let x = target(&d);
    let engine = FullReducerEngine::new();
    // Small domains = dense joins (low selectivity); large domains =
    // selective joins.
    for domain in [600u64, 1200, 2400, 9600] {
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), 600, domain);
        let state = DbState::from_universal(&i, &d);
        assert_eq!(
            solve_tree_query(&d, &state, &x).unwrap(),
            state.eval_join_query(&x),
            "sanity"
        );
        assert_eq!(
            engine.answer(&d, &state, &x).unwrap(),
            state.eval_join_query(&x),
            "engine sanity"
        );
        group.bench_with_input(BenchmarkId::new("join_only", domain), &state, |b, state| {
            b.iter(|| black_box(state.eval_join_query(&x).len()))
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis", domain),
            &state,
            |b, state| b.iter(|| black_box(solve_tree_query(&d, state, &x).unwrap().len())),
        );
        group.bench_with_input(
            BenchmarkId::new("cached_engine", domain),
            &state,
            |b, state| b.iter(|| black_box(engine.answer(&d, state, &x).unwrap().len())),
        );
    }
    group.finish();
}

fn bench_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("programs/size");
    let engine = FullReducerEngine::new();
    for n in [4usize, 8, 16] {
        let d = chain(n);
        let x = target(&d);
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), 300, 3000);
        let state = DbState::from_universal(&i, &d);
        group.bench_with_input(BenchmarkId::new("join_only", n), &state, |b, state| {
            b.iter(|| black_box(state.eval_join_query(&x).len()))
        });
        group.bench_with_input(BenchmarkId::new("yannakakis", n), &state, |b, state| {
            b.iter(|| black_box(solve_tree_query(&d, state, &x).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("cached_engine", n), &state, |b, state| {
            b.iter(|| black_box(engine.answer(&d, state, &x).unwrap().len()))
        });
    }
    group.finish();
}

/// The dangling-tuple catastrophe, parameterized by the per-attribute value
/// count `m`: four dense m x m relations closed by a selective dead end.
/// Monolithic join cost grows like m^5; the full reducer stays ~m^2.
fn bench_dead_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("programs/dead_end");
    let engine = FullReducerEngine::new();
    for m in [4u64, 8, 12] {
        let d = chain(5);
        let x = target(&d);
        let dense: Vec<Vec<u64>> = (0..m)
            .flat_map(|a| (0..m).map(move |b| vec![a, b]))
            .collect();
        let mut rels: Vec<gyo_core::Relation> = (0..4)
            .map(|k| gyo_core::Relation::new(d.rel(k).clone(), dense.clone()))
            .collect();
        rels.push(gyo_core::Relation::new(
            d.rel(4).clone(),
            (0..m).map(|y| vec![0, y]).collect(),
        ));
        let state = DbState::new(&d, rels);
        group.bench_with_input(BenchmarkId::new("join_only", m), &state, |b, state| {
            b.iter(|| black_box(state.eval_join_query(&x).len()))
        });
        group.bench_with_input(BenchmarkId::new("yannakakis", m), &state, |b, state| {
            b.iter(|| black_box(solve_tree_query(&d, state, &x).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("cached_engine", m), &state, |b, state| {
            b.iter(|| black_box(engine.answer(&d, state, &x).unwrap().len()))
        });
    }
    group.finish();
}

/// Raw join/projection materialization on flat operands — no reducer in
/// the loop, just the `Relation` operators that write output tuples. The
/// domain equals the row count, so `R(a,b) ⋈ S(b,c)` keeps fanout ≈ 1 and
/// the cost is dominated by per-row materialization, not output blow-up.
fn bench_flat_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("programs/flat_join");
    for rows in [512usize, 2048] {
        let mut rng = bench_rng();
        let domain = rows as u64;
        let ab = random_universal(&mut rng, &AttrSet::from_raw(&[0, 1]), rows, domain);
        let bc = random_universal(&mut rng, &AttrSet::from_raw(&[1, 2]), rows, domain);
        let abcd = random_universal(&mut rng, &AttrSet::from_raw(&[0, 1, 2, 3]), rows, domain);
        let cdef = random_universal(&mut rng, &AttrSet::from_raw(&[2, 3, 4, 5]), rows, domain);
        let wide = random_universal(
            &mut rng,
            &AttrSet::from_raw(&[0, 1, 2, 3, 4, 5]),
            rows,
            domain,
        );
        let half = AttrSet::from_raw(&[0, 2, 4]);
        group.bench_with_input(BenchmarkId::new("join_narrow", rows), &(), |b, ()| {
            b.iter(|| black_box(ab.natural_join(&bc).len()))
        });
        group.bench_with_input(BenchmarkId::new("join_wide", rows), &(), |b, ()| {
            b.iter(|| black_box(abcd.natural_join(&cdef).len()))
        });
        group.bench_with_input(BenchmarkId::new("project_half", rows), &(), |b, ()| {
            b.iter(|| black_box(wide.project(&half).len()))
        });
    }
    group.finish();
}

/// The columnar kernel family: selection-vector program execution with a
/// reusable scratch (`program_chain`), full reduction over the wide-arity
/// workloads whose semijoin keys stress the wide-key membership path
/// (`reduce_wide`, `reduce_tpch`), the gather-projection kernel on
/// scattered columns (`gather_scatter`), and one-shot wide-key semijoins
/// (`semijoin_wide`).
fn bench_columnar(c: &mut Criterion) {
    let mut group = c.benchmark_group("programs/columnar");

    // Raw selection-vector execution of a precompiled chain full reducer:
    // no plan lookup, no state cloning — just the kernels.
    for n in [16usize, 64] {
        let d = chain(n);
        let mut rng = bench_rng();
        let state = family_state(&mut rng, &d, 256, 1 << 14, 32);
        let schemas = d.rels();
        let mut steps = Vec::new();
        for v in (1..n).rev() {
            steps.push(SemijoinStep::new(schemas, v - 1, v)); // upward
        }
        for v in 1..n {
            steps.push(SemijoinStep::new(schemas, v, v - 1)); // downward
        }
        let mut scratch = ExecScratch::new();
        group.bench_with_input(BenchmarkId::new("program_chain", n), &state, |b, state| {
            b.iter(|| {
                let mut rels = state.rels().to_vec();
                semijoin_program_with(&mut rels, &steps, &mut scratch);
                black_box(rels[0].len())
            })
        });
    }

    // Wide-arity full reduction: arity-6 chains with width-3 semijoin keys
    // (the packed side-buffer key columns + chunked-memcmp membership), and
    // the TPC-H-like snowflake.
    let cached = FullReducerEngine::new();
    for n in [8usize, 32] {
        let d = wide_chain(n, 6, 3);
        let mut rng = bench_rng();
        let state = family_state(&mut rng, &d, 256, 64, 32);
        assert!(cached.reduce(&d, &state).is_ok(), "wide chain is a tree");
        group.bench_with_input(BenchmarkId::new("reduce_wide", n), &state, |b, state| {
            b.iter(|| black_box(cached.reduce(&d, state).unwrap().rel(0).len()))
        });
    }
    {
        let d = tpch_like();
        let mut rng = bench_rng();
        let state = family_state(&mut rng, &d, 1024, 256, 128);
        assert!(cached.reduce(&d, &state).is_ok(), "tpch-like is a tree");
        group.bench_with_input(
            BenchmarkId::new("reduce_tpch", 1024usize),
            &state,
            |b, state| b.iter(|| black_box(cached.reduce(&d, state).unwrap().rel(0).len())),
        );
    }

    // Gather projection over scattered columns, and wide-key semijoins.
    for rows in [512usize, 2048] {
        let mut rng = bench_rng();
        let domain = rows as u64;
        let wide8 = random_universal(
            &mut rng,
            &AttrSet::from_raw(&[0, 1, 2, 3, 4, 5, 6, 7]),
            rows,
            domain,
        );
        let scattered = AttrSet::from_raw(&[0, 2, 5, 7]);
        group.bench_with_input(
            BenchmarkId::new("gather_scatter", rows),
            &wide8,
            |b, wide8| b.iter(|| black_box(wide8.project(&scattered).len())),
        );
        // Width-3 key: attrs {1,2,3} shared between two arity-5 relations.
        let r = random_universal(&mut rng, &AttrSet::from_raw(&[0, 1, 2, 3, 4]), rows, 8);
        let s = random_universal(&mut rng, &AttrSet::from_raw(&[1, 2, 3, 8, 9]), rows, 8);
        group.bench_with_input(BenchmarkId::new("semijoin_wide", rows), &(), |b, ()| {
            b.iter(|| black_box(r.semijoin(&s).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_selectivity_sweep, bench_size_sweep, bench_dead_end, bench_flat_join, bench_columnar
}
criterion_main!(benches);
