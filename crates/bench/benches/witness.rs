//! F2/T1 — Lemma 3.1 witness search cost.
//!
//! Expected shape: instant when the schema already *is* a core (X = ∅
//! found first); exponential in the residue's attribute count when
//! deletions must be discovered — the search is over subsets of `U(GR(D))`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_core::reduce::find_cyclic_core;
use gyo_core::{Catalog, DbSchema};
use gyo_workloads::{aclique_n, aring_n};
use std::hint::black_box;
use std::time::Duration;

fn bench_core_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness/cores");
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("aring", n), &aring_n(n), |b, d| {
            b.iter(|| black_box(find_cyclic_core(d).is_some()))
        });
        group.bench_with_input(BenchmarkId::new("aclique", n), &aclique_n(n), |b, d| {
            b.iter(|| black_box(find_cyclic_core(d).is_some()))
        });
    }
    group.finish();
}

fn bench_smeared_instances(c: &mut Criterion) {
    // Schemas where the core is hidden behind deletions (Fig. 2c style):
    // residues of growing attribute count.
    let mut group = c.benchmark_group("witness/smeared");
    let mut cat = Catalog::alphabetic();
    let cases = [
        ("fig2c", "abce, bef, dif, cda, dab, bcd, cg"),
        ("pentagon", "abc, bcd, cde, dea, eab"),
        ("hexagon", "abc, bcd, cde, def, efa, fab"),
    ];
    for (name, s) in cases {
        let d = DbSchema::parse(s, &mut cat).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &d, |b, d| {
            b.iter(|| black_box(find_cyclic_core(d).is_some()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_core_instances, bench_smeared_instances
}
criterion_main!(benches);
