//! F1/B1 — tree-vs-cyclic classification across schema families.
//!
//! The paper's implicit claim: GYO reduction decides tree-ness cheaply.
//! Series: classification time vs. schema size for chains, stars, rings,
//! cliques, grids, and random tree schemas, comparing the incremental GYO
//! engine, the naive fixpoint engine, and the max-weight-spanning-tree
//! method — plus the full-reduction engine comparison (naive join-all vs.
//! per-call Yannakakis vs. the cached full-reducer engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_bench::bench_rng;
use gyo_core::reduce::{gyo_reduce_naive, is_tree_schema};
use gyo_core::schema::qual::maximum_weight_join_tree;
use gyo_core::{
    reduce_via_treeification, solve_via_treeification, AttrSet, DbState, Engine, FullReducerEngine,
    IncrementalEngine, NaiveEngine, TreeifyEngine,
};
use gyo_workloads::{
    aclique_n, aring_n, chain, family_state, grid, random_tree_schema, random_universal, star,
    wide_chain,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify/gyo");
    for n in [10usize, 100, 1000] {
        let mut rng = bench_rng();
        let cases = [
            ("chain", chain(n)),
            ("star", star(n)),
            ("aring", aring_n(n.max(3))),
            ("aclique", aclique_n(n.clamp(3, 60))),
            ("random_tree", random_tree_schema(&mut rng, n, 2 * n, 0.4)),
        ];
        for (name, d) in cases {
            group.bench_with_input(BenchmarkId::new(name, n), &d, |b, d| {
                b.iter(|| black_box(is_tree_schema(d)))
            });
        }
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify/engines");
    for n in [8usize, 32, 128] {
        let d = chain(n);
        group.bench_with_input(BenchmarkId::new("incremental", n), &d, |b, d| {
            b.iter(|| black_box(gyo_core::gyo_reduce(d, &AttrSet::empty()).is_total()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &d, |b, d| {
            b.iter(|| black_box(gyo_reduce_naive(d, &AttrSet::empty()).is_total()))
        });
        group.bench_with_input(BenchmarkId::new("mst", n), &d, |b, d| {
            b.iter(|| black_box(maximum_weight_join_tree(d).is_some()))
        });
    }
    group.finish();
}

/// Full-reduction engines on noisy chain states: the naive engine pays a
/// monolithic `⋈D` per call, the incremental engine re-derives the join
/// tree per call, and the cached engine reuses the compiled semijoin plan.
/// The acceptance target of this suite: `reduce_cached` beats
/// `reduce_naive` by ≥10× at n = 128.
fn bench_reduction_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify/engines");
    let cached = FullReducerEngine::new();
    for n in [8usize, 32, 128] {
        let d = chain(n);
        let mut rng = bench_rng();
        // Domain tuned so the naive `⋈D` grows mildly but measurably along
        // the chain (≈ e^(2.2·n/128) ≈ 9× at n = 128) — the paper's point:
        // join intermediates grow with n, semijoin passes don't. Dangling
        // noise rows give the full reducer real filtering work.
        let state = family_state(&mut rng, &d, 256, 1 << 14, 32);
        let reference = NaiveEngine.reduce(&d, &state).expect("naive reduces");
        assert_eq!(
            cached.reduce(&d, &state).expect("chain is a tree schema"),
            reference,
            "sanity"
        );
        group.bench_with_input(BenchmarkId::new("reduce_naive", n), &state, |b, state| {
            b.iter(|| black_box(NaiveEngine.reduce(&d, state).unwrap().rel(0).len()))
        });
        group.bench_with_input(
            BenchmarkId::new("reduce_incremental", n),
            &state,
            |b, state| {
                b.iter(|| black_box(IncrementalEngine.reduce(&d, state).unwrap().rel(0).len()))
            },
        );
        group.bench_with_input(BenchmarkId::new("reduce_cached", n), &state, |b, state| {
            b.iter(|| black_box(cached.reduce(&d, state).unwrap().rel(0).len()))
        });
    }
    // Wide-key ids: arity-6 chains overlapping in 3 attributes, so every
    // semijoin key is width 3 — the packed side-buffer / chunked-memcmp
    // path of the kernels, where chains above only drive width-1 keys.
    for n in [8usize, 32] {
        let d = wide_chain(n, 6, 3);
        let mut rng = bench_rng();
        let state = family_state(&mut rng, &d, 256, 64, 32);
        assert_eq!(
            cached.reduce(&d, &state).expect("wide chain is a tree"),
            IncrementalEngine.reduce(&d, &state).unwrap(),
            "sanity"
        );
        group.bench_with_input(
            BenchmarkId::new("reduce_incremental_wide", n),
            &state,
            |b, state| {
                b.iter(|| black_box(IncrementalEngine.reduce(&d, state).unwrap().rel(0).len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reduce_cached_wide", n),
            &state,
            |b, state| b.iter(|| black_box(cached.reduce(&d, state).unwrap().rel(0).len())),
        );
    }
    group.finish();
}

/// Treeification engines on the cyclic families (rings and grids): the
/// per-call path (`solve_via_treeification` / `reduce_via_treeification` —
/// GYO reduction, extended join tree, and every semijoin re-derived and
/// re-materialized per call) against [`TreeifyEngine`], whose cached
/// [`TreeifyPlan`] pays the schema-dependent work once and runs the
/// selection-vector executor per call. Both paths share the one
/// data-dependent cost — materializing `state(W)` — so the ratio isolates
/// what the plan cache buys. The acceptance target of this family: the
/// cached plan beats per-call treeification by ≥2× on the ring at n = 128.
fn bench_treeify_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify/engines");
    let engine = TreeifyEngine::new();
    for n in [8usize, 32, 128] {
        let d = aring_n(n);
        let mut rng = bench_rng();
        // Mostly-UR data (64 shared rows + 16 dangling per relation) keeps
        // the ring's W-join nonempty — the core join does real work — while
        // the dangling rows give both full reducers real filtering to do.
        let state = family_state(&mut rng, &d, 64, 1 << 14, 16);
        // Target on the residue: W spans the whole ring, so the answer
        // projects the reduced W directly.
        let x = AttrSet::from_raw(&[0, (n / 2) as u32]);
        assert_eq!(
            engine.answer(&d, &state, &x).expect("treeify is total"),
            solve_via_treeification(&d, &state, &x),
            "sanity"
        );
        group.bench_with_input(
            BenchmarkId::new("treeify_answer_cached", n),
            &state,
            |b, state| b.iter(|| black_box(engine.answer(&d, state, &x).unwrap().len())),
        );
        group.bench_with_input(
            BenchmarkId::new("treeify_answer_percall", n),
            &state,
            |b, state| b.iter(|| black_box(solve_via_treeification(&d, state, &x).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("treeify_reduce_cached", n),
            &state,
            |b, state| b.iter(|| black_box(engine.reduce(&d, state).unwrap().rel(0).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("treeify_reduce_percall", n),
            &state,
            |b, state| b.iter(|| black_box(reduce_via_treeification(&d, state).rel(0).len())),
        );
    }
    // Grids: every unit square is a 4-ring, so the whole grid survives GYO
    // and W spans all vertices — the hardest residue shape per relation.
    for side in [3usize, 6] {
        let d = grid(side, side);
        let mut rng = bench_rng();
        let state = family_state(&mut rng, &d, 64, 1 << 12, 16);
        let x = AttrSet::from_raw(&[0, (side * side - 1) as u32]);
        assert_eq!(
            engine.answer(&d, &state, &x).expect("treeify is total"),
            solve_via_treeification(&d, &state, &x),
            "sanity"
        );
        group.bench_with_input(
            BenchmarkId::new("treeify_grid_cached", side),
            &state,
            |b, state| b.iter(|| black_box(engine.answer(&d, state, &x).unwrap().len())),
        );
        group.bench_with_input(
            BenchmarkId::new("treeify_grid_percall", side),
            &state,
            |b, state| b.iter(|| black_box(solve_via_treeification(&d, state, &x).len())),
        );
    }
    group.finish();
}

/// Materialization-dominated paths: projecting a universal relation into a
/// UR state (`from_universal`), and answering `(D, X)` with the cached
/// engine (reduce + join up the tree, materializing the answer). Unlike the
/// `reduce_*` series — whose masked executor never touches tuple storage —
/// these are bounded by per-row touch cost of the `Relation` layout, so
/// they are the acceptance family for storage-layout changes.
fn bench_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify/materialize");
    let cached = FullReducerEngine::new();
    for n in [8usize, 32, 128] {
        let d = chain(n);
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), 512, 1 << 14);
        let state = family_state(&mut rng, &d, 256, 1 << 14, 32);
        let u: Vec<_> = d.attributes().iter().collect();
        let x = AttrSet::from_iter([u[0], u[u.len() - 1]]);
        assert_eq!(
            cached
                .answer(&d, &state, &x)
                .expect("chain is a tree schema"),
            NaiveEngine.answer(&d, &state, &x).unwrap(),
            "sanity"
        );
        group.bench_with_input(BenchmarkId::new("from_universal", n), &i, |b, i| {
            b.iter(|| black_box(DbState::from_universal(i, &d).rel(0).len()))
        });
        group.bench_with_input(BenchmarkId::new("answer_cached", n), &state, |b, state| {
            b.iter(|| black_box(cached.answer(&d, state, &x).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify/grid");
    for side in [3usize, 6, 12] {
        let d = grid(side, side);
        group.bench_with_input(BenchmarkId::from_parameter(side), &d, |b, d| {
            b.iter(|| black_box(is_tree_schema(d)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_families, bench_engines, bench_reduction_engines, bench_treeify_engines, bench_materialize, bench_grids
}
criterion_main!(benches);
