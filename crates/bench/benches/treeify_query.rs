//! B5 — §4's cyclic-schema strategy: monolithic join vs. "add U(GR(D)),
//! then semijoin" treeification.
//!
//! Expected shape: the treeification strategy pays one core join (over the
//! GYO survivors only) and then runs linear semijoin passes, so it wins
//! when the acyclic fringe is large; the monolithic join pays for the
//! fringe inside one big join pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_bench::{bench_rng, ring_with_fringe};
use gyo_core::prelude::*;
use gyo_workloads::random_universal;
use std::hint::black_box;
use std::time::Duration;

fn bench_fringe_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("treeify/fringe");
    for pendants in [0usize, 8, 32] {
        let d = ring_with_fringe(4, pendants);
        let x = AttrSet::from_raw(&[0, 2]);
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), 300, 3_000);
        let state = DbState::from_universal(&i, &d);
        assert_eq!(
            solve_via_treeification(&d, &state, &x),
            state.eval_join_query(&x),
            "sanity"
        );
        group.bench_with_input(
            BenchmarkId::new("monolithic", pendants),
            &state,
            |b, state| b.iter(|| black_box(state.eval_join_query(&x).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("treeified", pendants),
            &state,
            |b, state| b.iter(|| black_box(solve_via_treeification(&d, state, &x).len())),
        );
    }
    group.finish();
}

fn bench_data_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("treeify/data");
    let d = ring_with_fringe(4, 16);
    let x = AttrSet::from_raw(&[0, 2]);
    for rows in [100usize, 400, 1600] {
        let mut rng = bench_rng();
        let i = random_universal(&mut rng, &d.attributes(), rows, 10 * rows as u64);
        let state = DbState::from_universal(&i, &d);
        group.bench_with_input(BenchmarkId::new("monolithic", rows), &state, |b, state| {
            b.iter(|| black_box(state.eval_join_query(&x).len()))
        });
        group.bench_with_input(BenchmarkId::new("treeified", rows), &state, |b, state| {
            b.iter(|| black_box(solve_via_treeification(&d, state, &x).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_fringe_sweep, bench_data_sweep
}
criterion_main!(benches);
