//! F3/B2 — tableau machinery: containment-mapping search and greedy
//! minimization.
//!
//! Expected shape: folding a long irrelevant tail (the §6 pattern) costs a
//! quadratic number of containment searches; each search is fast because
//! the distinguished-variable prefilter prunes candidates hard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gyo_bench::pruning_family;
use gyo_core::tableau::{find_containment, minimize};
use gyo_core::{AttrSet, Tableau};
use gyo_workloads::chain;
use std::hint::black_box;
use std::time::Duration;

fn bench_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau/containment");
    for n in [4usize, 8, 16] {
        let d = chain(n);
        let u: Vec<_> = d.attributes().iter().collect();
        let x = AttrSet::from_iter([u[0], u[u.len() - 1]]);
        let t = Tableau::standard(&d, &x);
        group.bench_with_input(BenchmarkId::new("identity", n), &t, |b, t| {
            b.iter(|| black_box(find_containment(t, t).is_some()))
        });
    }
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau/minimize");
    for tail in [2usize, 6, 12] {
        let (d, x) = pruning_family(tail);
        let t = Tableau::standard(&d, &x);
        group.bench_with_input(BenchmarkId::new("pruning_family", tail), &t, |b, t| {
            b.iter(|| black_box(minimize(t).tableau.row_count()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_containment, bench_minimization
}
criterion_main!(benches);
