//! Property tests for the set algebra and schema combinators — the laws
//! every proof in the paper silently uses.

use gyo_schema::{AttrId, AttrSet, DbSchema, QualGraph};
use proptest::prelude::*;

fn attr_set() -> impl Strategy<Value = AttrSet> {
    proptest::collection::vec(0u32..12, 0..8).prop_map(|v| AttrSet::from_raw(&v))
}

fn schema() -> impl Strategy<Value = DbSchema> {
    proptest::collection::vec(attr_set(), 0..6).prop_map(DbSchema::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_is_commutative_associative_idempotent(a in attr_set(), b in attr_set(), c in attr_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn intersection_laws(a in attr_set(), b in attr_set(), c in attr_set()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        prop_assert_eq!(a.intersect(&a), a.clone());
        // absorption
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a);
    }

    #[test]
    fn difference_laws(a in attr_set(), b in attr_set()) {
        let diff = a.difference(&b);
        prop_assert!(diff.is_subset(&a));
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(diff.union(&a.intersect(&b)), a);
    }

    #[test]
    fn subset_is_a_partial_order(a in attr_set(), b in attr_set(), c in attr_set()) {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
    }

    #[test]
    fn membership_matches_iteration(a in attr_set()) {
        for id in a.iter() {
            prop_assert!(a.contains(id));
        }
        prop_assert!(!a.contains(AttrId(999)));
        prop_assert_eq!(a.iter().count(), a.len());
    }

    #[test]
    fn disjoint_iff_empty_intersection(a in attr_set(), b in attr_set()) {
        prop_assert_eq!(a.is_disjoint(&b), a.intersect(&b).is_empty());
    }

    #[test]
    fn reduce_is_idempotent_and_le_equivalent(d in schema()) {
        let r = d.reduce();
        prop_assert!(r.is_reduced());
        prop_assert_eq!(r.reduce(), r.clone());
        // D and reduce(D) weakly include each other
        prop_assert!(r.le(&d));
        prop_assert!(d.le(&r));
        prop_assert_eq!(r.attributes(), d.attributes());
    }

    #[test]
    fn le_is_reflexive_transitive(d in schema(), e in schema()) {
        prop_assert!(d.le(&d));
        if d.le(&e) {
            // weak inclusion is preserved by reduction of the right side
            prop_assert!(d.le(&e.reduce()) || !e.reduce().is_reduced());
        }
    }

    #[test]
    fn sub_multiset_implies_le(d in schema()) {
        let n = d.len();
        if n == 0 { return Ok(()); }
        // any projection of indices is a sub-multiset and hence ≤ d
        let half: Vec<usize> = (0..n).step_by(2).collect();
        let sub = d.project_rels(&half);
        prop_assert!(sub.sub_multiset(&d));
        prop_assert!(sub.le(&d));
    }

    #[test]
    fn connected_components_partition_the_nodes(d in schema()) {
        let comps = d.connected_components();
        let mut seen = vec![false; d.len()];
        for comp in &comps {
            for &i in comp {
                prop_assert!(!seen[i], "node {} in two components", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
        // nodes in different components never share attributes
        for (a, ca) in comps.iter().enumerate() {
            for cb in comps.iter().skip(a + 1) {
                for &i in ca {
                    for &j in cb {
                        prop_assert!(d.rel(i).is_disjoint(d.rel(j)));
                    }
                }
            }
        }
    }

    #[test]
    fn multiset_equality_is_order_invariant(d in schema()) {
        let mut rels: Vec<AttrSet> = d.iter().cloned().collect();
        rels.reverse();
        let e = DbSchema::new(rels);
        prop_assert_eq!(&d, &e);
    }

    #[test]
    fn complete_graph_is_always_a_qual_graph(d in schema()) {
        let n = d.len();
        if n == 0 { return Ok(()); }
        let edges: Vec<(usize, usize)> =
            (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))).collect();
        let g = QualGraph::new(n, edges);
        prop_assert!(g.is_valid_for(&d));
    }

    #[test]
    fn notation_round_trips(d in schema()) {
        // render with a catalog naming a0..a11, reparse, compare
        let mut cat = gyo_schema::Catalog::new();
        for i in 0..12 {
            cat.intern(&format!("a{i}"));
        }
        let text = d.to_notation(&cat);
        let mut cat2 = cat.clone();
        let back = DbSchema::parse(&text, &mut cat2).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn delete_attrs_then_attributes_is_difference(d in schema(), x in attr_set()) {
        let deleted = d.delete_attrs(&x);
        prop_assert_eq!(deleted.attributes(), d.attributes().difference(&x));
        prop_assert_eq!(deleted.len(), d.len());
    }
}
