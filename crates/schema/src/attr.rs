//! Interned attribute identifiers and the attribute catalog.

use std::fmt;

use crate::fxhash::FxHashMap;

/// A compact identifier for an attribute (a column name).
///
/// Ids are indices into a [`Catalog`]. Using a `u32` keeps [`AttrSet`]s
/// (sorted id slices) small and cache-friendly; schemas in this library never
/// approach 2^32 attributes.
///
/// [`AttrSet`]: crate::AttrSet
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// An interner mapping attribute names to dense [`AttrId`]s.
///
/// The paper writes attributes as single letters (`a`, `b`, `c`, …) and
/// relation schemas by concatenation (`abc`); the catalog accepts arbitrary
/// string names so applications are not limited to 26 attributes.
///
/// # Examples
///
/// ```
/// use gyo_schema::Catalog;
///
/// let mut cat = Catalog::new();
/// let a = cat.intern("a");
/// let b = cat.intern("b");
/// assert_ne!(a, b);
/// assert_eq!(cat.intern("a"), a); // idempotent
/// assert_eq!(cat.name(a), "a");
/// assert_eq!(cat.len(), 2);
/// ```
#[derive(Clone, Default)]
pub struct Catalog {
    names: Vec<String>,
    by_name: FxHashMap<String, AttrId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog pre-populated with the 26 single-letter attributes
    /// `a`–`z`, the convention used throughout the paper's figures.
    ///
    /// `a` receives id 0, `b` id 1, and so on.
    pub fn alphabetic() -> Self {
        let mut cat = Self::new();
        for c in b'a'..=b'z' {
            cat.intern(std::str::from_utf8(&[c]).expect("ascii"));
        }
        cat
    }

    /// Interns `name`, returning its id; repeated calls with the same name
    /// return the same id.
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = AttrId(u32::try_from(self.names.len()).expect("catalog overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a previously interned name.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this catalog.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned ids in id order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = AttrId> + '_ {
        (0..self.names.len() as u32).map(AttrId)
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut cat = Catalog::new();
        let x = cat.intern("salary");
        let y = cat.intern("salary");
        assert_eq!(x, y);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut cat = Catalog::new();
        let ids: Vec<_> = ["p", "q", "r"].iter().map(|n| cat.intern(n)).collect();
        assert_eq!(ids, vec![AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(cat.ids().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn alphabetic_catalog_matches_paper_convention() {
        let cat = Catalog::alphabetic();
        assert_eq!(cat.len(), 26);
        assert_eq!(cat.lookup("a"), Some(AttrId(0)));
        assert_eq!(cat.lookup("z"), Some(AttrId(25)));
        assert_eq!(cat.name(AttrId(2)), "c");
    }

    #[test]
    fn lookup_of_unknown_name_is_none() {
        let cat = Catalog::new();
        assert_eq!(cat.lookup("nope"), None);
        assert!(cat.is_empty());
    }
}
