//! Hypergraph isomorphism of database schemas.
//!
//! §3.1 defines Arings and Acliques up to isomorphism: "any schema
//! isomorphic to an Aring or an Aclique is an Aring or Aclique simply by
//! appropriately ordering the attributes". Two schemas are **isomorphic**
//! when some attribute bijection maps one's relation multiset onto the
//! other's. The recognizers in `gyo-reduce` use structural invariants
//! instead of search; this module provides the general decision procedure
//! so tests can confirm the two notions coincide.

use crate::attr::AttrId;
use crate::attrset::AttrSet;
use crate::fxhash::FxHashMap;
use crate::schema::DbSchema;

/// Searches for an attribute bijection `U(a) → U(b)` under which `a` and
/// `b` are equal as multisets of relation schemas. Returns the mapping on
/// success.
///
/// Backtracking over attribute images with degree-sequence prefiltering —
/// exponential in the worst case (graph isomorphism is not known to be
/// polynomial), fine for the schema sizes this library targets.
pub fn find_isomorphism(a: &DbSchema, b: &DbSchema) -> Option<FxHashMap<AttrId, AttrId>> {
    if a.len() != b.len() {
        return None;
    }
    let ua: Vec<AttrId> = a.attributes().iter().collect();
    let ub: Vec<AttrId> = b.attributes().iter().collect();
    if ua.len() != ub.len() {
        return None;
    }
    // Degree = multiset of sizes of relations containing the attribute.
    let signature = |d: &DbSchema, x: AttrId| -> Vec<usize> {
        let mut sizes: Vec<usize> = d
            .iter()
            .filter(|r| r.contains(x))
            .map(|r| r.len())
            .collect();
        sizes.sort_unstable();
        sizes
    };
    let sig_a: Vec<Vec<usize>> = ua.iter().map(|&x| signature(a, x)).collect();
    let sig_b: Vec<Vec<usize>> = ub.iter().map(|&x| signature(b, x)).collect();

    // quick reject: multiset of signatures must match
    let mut sa = sig_a.clone();
    let mut sb = sig_b.clone();
    sa.sort();
    sb.sort();
    if sa != sb {
        return None;
    }

    let mut image: Vec<Option<usize>> = vec![None; ua.len()]; // index into ub
    let mut used = vec![false; ub.len()];
    #[allow(clippy::too_many_arguments)]
    fn rec(
        pos: usize,
        ua: &[AttrId],
        ub: &[AttrId],
        sig_a: &[Vec<usize>],
        sig_b: &[Vec<usize>],
        a: &DbSchema,
        b: &DbSchema,
        image: &mut Vec<Option<usize>>,
        used: &mut Vec<bool>,
    ) -> bool {
        if pos == ua.len() {
            // full mapping: verify multiset equality of mapped relations
            let map: FxHashMap<AttrId, AttrId> = ua
                .iter()
                .enumerate()
                .map(|(i, &x)| (x, ub[image[i].expect("complete")]))
                .collect();
            let mapped = DbSchema::new(
                a.iter()
                    .map(|r| AttrSet::from_iter(r.iter().map(|x| map[&x])))
                    .collect(),
            );
            return mapped == *b;
        }
        for j in 0..ub.len() {
            if used[j] || sig_a[pos] != sig_b[j] {
                continue;
            }
            used[j] = true;
            image[pos] = Some(j);
            if rec(pos + 1, ua, ub, sig_a, sig_b, a, b, image, used) {
                return true;
            }
            image[pos] = None;
            used[j] = false;
        }
        false
    }
    if rec(0, &ua, &ub, &sig_a, &sig_b, a, b, &mut image, &mut used) {
        Some(
            ua.iter()
                .enumerate()
                .map(|(i, &x)| (x, ub[image[i].expect("complete")]))
                .collect(),
        )
    } else {
        None
    }
}

/// Whether the schemas are isomorphic (some attribute renaming maps one
/// onto the other).
pub fn are_isomorphic(a: &DbSchema, b: &DbSchema) -> bool {
    find_isomorphism(a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn db(s: &str, cat: &mut Catalog) -> DbSchema {
        DbSchema::parse(s, cat).unwrap()
    }

    #[test]
    fn renamed_ring_is_isomorphic() {
        let mut cat = Catalog::alphabetic();
        let ring1 = db("ab, bc, cd, da", &mut cat);
        let ring2 = db("xy, yz, zw, wx", &mut cat);
        let iso = find_isomorphism(&ring1, &ring2).expect("rings isomorphic");
        // the mapping really maps relation-by-relation
        let mapped = DbSchema::new(
            ring1
                .iter()
                .map(|r| AttrSet::from_iter(r.iter().map(|x| iso[&x])))
                .collect(),
        );
        assert_eq!(mapped, ring2);
    }

    #[test]
    fn ring_and_chain_are_not_isomorphic() {
        let mut cat = Catalog::alphabetic();
        let ring = db("ab, bc, cd, da", &mut cat);
        let chain = db("ab, bc, cd, de", &mut cat);
        assert!(!are_isomorphic(&ring, &chain));
    }

    #[test]
    fn size_mismatches_reject_fast() {
        let mut cat = Catalog::alphabetic();
        let a = db("ab, bc", &mut cat);
        let b = db("ab, bc, cd", &mut cat);
        assert!(!are_isomorphic(&a, &b));
        let c = db("abc, bc", &mut cat);
        assert!(!are_isomorphic(&a, &c), "attribute counts differ");
    }

    #[test]
    fn self_isomorphism_and_empty_schemas() {
        let mut cat = Catalog::alphabetic();
        let d = db("abc, cde, ace", &mut cat);
        assert!(are_isomorphic(&d, &d));
        assert!(are_isomorphic(&DbSchema::empty(), &DbSchema::empty()));
    }

    #[test]
    fn clique_vs_ring_of_same_size() {
        let mut cat = Catalog::alphabetic();
        // Aclique(4) has 3-ary relations; Aring(4) has binary ones.
        let clique = db("bcd, acd, abd, abc", &mut cat);
        let ring = db("ab, bc, cd, da", &mut cat);
        assert!(!are_isomorphic(&clique, &ring));
    }

    #[test]
    fn multiplicities_matter() {
        let mut cat = Catalog::alphabetic();
        let a = db("ab, ab, bc", &mut cat);
        let b = db("ab, bc, bc", &mut cat);
        // a has a duplicated edge at one end, b at the other — still
        // isomorphic by swapping a and c.
        assert!(are_isomorphic(&a, &b));
        let c = db("ab, ab, ab", &mut cat);
        assert!(!are_isomorphic(&a, &c));
    }
}
