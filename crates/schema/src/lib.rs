//! Core vocabulary for the GYO library: attributes, attribute sets, relation
//! schemas, database schemas (hypergraphs), qual graphs and join trees.
//!
//! This crate implements Section 2 ("Terminology") and Section 3.1 ("Tree and
//! Cyclic Schemas") of Goodman, Shmueli & Tay, *GYO Reductions, Canonical
//! Connections, Tree and Cyclic Schemas, and Tree Projections* (PODS 1983 /
//! JCSS 29:338–358, 1984):
//!
//! * a **relation schema** is a set of attributes ([`AttrSet`]);
//! * a **database schema** is a *multiset* of relation schemas ([`DbSchema`]);
//! * a **qual graph** for `D` is an undirected graph over the relation
//!   schemas of `D` such that for every attribute `A`, the nodes whose
//!   schemas contain `A` induce a connected subgraph ([`qual::QualGraph`]);
//! * `D` is a **tree schema** if some qual graph for it is a tree, else it is
//!   a **cyclic schema** (the decision procedure lives in `gyo-reduce`; this
//!   crate supplies the spanning-tree machinery in [`qual`]).
//!
//! Attribute names are interned in a [`Catalog`]; all set algebra operates on
//! compact integer ids so that the reduction and tableau engines stay
//! allocation-light.

#![warn(missing_docs)]

pub mod attr;
pub mod attrset;
pub mod fxhash;
pub mod iso;
pub mod parse;
pub mod qual;
pub mod schema;

pub use attr::{AttrId, Catalog};
pub use attrset::AttrSet;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use iso::{are_isomorphic, find_isomorphism};
pub use parse::{parse_db, parse_set, ParseError};
pub use qual::{JoinTree, QualGraph, RootedTree};
pub use schema::DbSchema;
