//! Sorted, duplicate-free attribute sets — the paper's *relation schemas*.

use std::fmt;

use crate::attr::{AttrId, Catalog};

/// A set of attributes, stored as a sorted, duplicate-free `Vec<AttrId>`.
///
/// `AttrSet` is the library's representation of a *relation schema* (§2 of
/// the paper) and of the sacred set `X` in GYO reductions and query targets.
/// All binary operations run in `O(|self| + |other|)` by merging the sorted
/// id slices.
///
/// # Examples
///
/// ```
/// use gyo_schema::{AttrSet, Catalog};
///
/// let mut cat = Catalog::alphabetic();
/// let abc = AttrSet::parse("abc", &mut cat).unwrap();
/// let bcd = AttrSet::parse("bcd", &mut cat).unwrap();
/// assert_eq!(abc.intersect(&bcd).to_notation(&cat), "bc");
/// assert_eq!(abc.union(&bcd).to_notation(&cat), "abcd");
/// assert!(abc.intersect(&bcd).is_subset(&abc));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet {
    ids: Vec<AttrId>,
}

impl AttrSet {
    /// The empty attribute set (the schema `∅`, which GYO reductions of tree
    /// schemas converge to).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a set from any iterator of ids; duplicates are removed.
    /// (Shadows the `FromIterator` method on purpose — same behaviour,
    /// callable without importing the trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        let mut ids: Vec<AttrId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Builds a set from a slice of raw `u32` ids (test convenience).
    pub fn from_raw(raw: &[u32]) -> Self {
        Self::from_iter(raw.iter().copied().map(AttrId))
    }

    /// Parses the paper's compact notation: each character is one attribute
    /// interned in `cat` (e.g. `"abc"` is `{a, b, c}`). Whitespace is
    /// ignored. See [`crate::parse`] for the richer multi-character syntax.
    pub fn parse(s: &str, cat: &mut Catalog) -> Result<Self, crate::ParseError> {
        crate::parse::parse_set(s, cat)
    }

    /// Number of attributes (the paper's `|R|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test, `O(log n)`.
    #[inline]
    pub fn contains(&self, a: AttrId) -> bool {
        self.ids.binary_search(&a).is_ok()
    }

    /// Iterates over the ids in ascending order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = AttrId> + Clone + '_ {
        self.ids.iter().copied()
    }

    /// The underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[AttrId] {
        &self.ids
    }

    /// Inserts `a`, keeping the order invariant. Returns `true` if inserted.
    pub fn insert(&mut self, a: AttrId) -> bool {
        match self.ids.binary_search(&a) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, a);
                true
            }
        }
    }

    /// Removes `a` if present. Returns `true` if removed.
    pub fn remove(&mut self, a: AttrId) -> bool {
        match self.ids.binary_search(&a) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Set union `self ∪ other`.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.len() + other.len());
        merge(&self.ids, &other.ids, &mut out, MergeKind::Union);
        Self { ids: out }
    }

    /// Set intersection `self ∩ other`.
    pub fn intersect(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        merge(&self.ids, &other.ids, &mut out, MergeKind::Intersect);
        Self { ids: out }
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.len());
        merge(&self.ids, &other.ids, &mut out, MergeKind::Difference);
        Self { ids: out }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut oi = other.ids.iter();
        'outer: for &a in &self.ids {
            for &b in oi.by_ref() {
                match b.cmp(&a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether `self ⊂ other` (proper subset).
    pub fn is_proper_subset(&self, other: &Self) -> bool {
        self.len() < other.len() && self.is_subset(other)
    }

    /// Whether the two sets share no attribute.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Whether the two sets share at least one attribute (the paper's
    /// adjacency notion for *connected* sub-schemas, §5.2).
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        !self.is_disjoint(other)
    }

    /// Renders the set in the paper's concatenated notation (`"abc"`), or
    /// `"∅"` when empty. Multi-character attribute names are joined with `.`
    /// to stay unambiguous.
    pub fn to_notation(&self, cat: &Catalog) -> String {
        if self.is_empty() {
            return "∅".to_owned();
        }
        let names: Vec<&str> = self.ids.iter().map(|&a| cat.name(a)).collect();
        if names.iter().all(|n| n.chars().count() == 1) {
            names.concat()
        } else {
            names.join(".")
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MergeKind {
    Union,
    Intersect,
    Difference,
}

fn merge(a: &[AttrId], b: &[AttrId], out: &mut Vec<AttrId>, kind: MergeKind) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                if kind != MergeKind::Intersect {
                    out.push(a[i]);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if kind == MergeKind::Union {
                    out.push(b[j]);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if kind != MergeKind::Difference {
                    out.push(a[i]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    if kind != MergeKind::Intersect {
        out.extend_from_slice(&a[i..]);
    }
    if kind == MergeKind::Union {
        out.extend_from_slice(&b[j..]);
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        Self::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = AttrId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, AttrId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{:?}", a)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(raw: &[u32]) -> AttrSet {
        AttrSet::from_raw(raw)
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s = set(&[3, 1, 2, 3, 1]);
        assert_eq!(s.as_slice(), &[AttrId(1), AttrId(2), AttrId(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_intersect_difference() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4]));
        assert_eq!(a.intersect(&b), set(&[2, 3]));
        assert_eq!(a.difference(&b), set(&[1]));
        assert_eq!(b.difference(&a), set(&[4]));
    }

    #[test]
    fn empty_set_identities() {
        let e = AttrSet::empty();
        let a = set(&[5, 9]);
        assert_eq!(e.union(&a), a);
        assert_eq!(e.intersect(&a), e);
        assert_eq!(a.difference(&e), a);
        assert!(e.is_subset(&a));
        assert!(e.is_subset(&e));
        assert!(!e.is_proper_subset(&e));
        assert!(e.is_disjoint(&a));
    }

    #[test]
    fn subset_relations() {
        let a = set(&[1, 3]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.is_subset(&b));
        assert!(!b.is_proper_subset(&b));
        assert!(!set(&[1, 4]).is_subset(&b));
    }

    #[test]
    fn disjointness() {
        assert!(set(&[1, 3]).is_disjoint(&set(&[2, 4])));
        assert!(!set(&[1, 3]).is_disjoint(&set(&[3])));
        assert!(set(&[1, 3]).intersects(&set(&[3, 9])));
    }

    #[test]
    fn insert_remove_keep_order() {
        let mut s = set(&[2, 8]);
        assert!(s.insert(AttrId(5)));
        assert!(!s.insert(AttrId(5)));
        assert_eq!(s.as_slice(), &[AttrId(2), AttrId(5), AttrId(8)]);
        assert!(s.remove(AttrId(2)));
        assert!(!s.remove(AttrId(2)));
        assert_eq!(s.as_slice(), &[AttrId(5), AttrId(8)]);
    }

    #[test]
    fn notation_rendering() {
        let mut cat = Catalog::alphabetic();
        let s = AttrSet::parse("cab", &mut cat).unwrap();
        assert_eq!(s.to_notation(&cat), "abc"); // sorted by id
        assert_eq!(AttrSet::empty().to_notation(&cat), "∅");

        let mut named = Catalog::new();
        let long = AttrSet::from_iter([named.intern("price"), named.intern("qty")]);
        assert_eq!(long.to_notation(&named), "price.qty");
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = set(&[0, 10, 20, 30]);
        assert!(s.contains(AttrId(20)));
        assert!(!s.contains(AttrId(21)));
    }
}
