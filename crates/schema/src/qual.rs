//! Qual graphs and join (qual) trees — §3.1 of the paper.
//!
//! A *qual graph* for a database schema `D` is an undirected graph whose
//! nodes correspond one-one with the relation schemas of `D` such that, for
//! every attribute `A ∈ U(D)`, the subgraph induced by the nodes whose
//! schemas contain `A` is connected. `D` is a **tree schema** iff some qual
//! graph for it is a tree (a *qual tree*, also called a join tree).
//!
//! This module provides:
//!
//! * [`QualGraph`] — an arbitrary candidate graph plus the validity check;
//! * [`JoinTree`] — a validated qual tree with path/subtree queries and the
//!   *attribute connectivity* property checker;
//! * [`maximum_weight_join_tree`] — the classical spanning-tree construction
//!   (maximize `Σ|Rᵢ ∩ Rⱼ|`); the result is a qual tree iff `D` is a tree
//!   schema, giving a second, independent decision procedure for
//!   tree-schema-ness that the test suite cross-checks against GYO.

use crate::attr::AttrId;
use crate::fxhash::FxHashMap;
use crate::schema::DbSchema;

/// An undirected graph over the relation-schema indices `0..n` of some
/// database schema; a *candidate* qual graph until
/// [`is_valid_for`](QualGraph::is_valid_for) says otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QualGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl QualGraph {
    /// Builds a graph on `n` nodes from an edge list. Edges are normalized
    /// to `(min, max)` and deduplicated; self-loops are rejected.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or an edge is a self-loop.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut es: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a < n && b < n, "edge endpoint out of range");
                assert_ne!(a, b, "self-loop in qual graph");
                (a.min(b), a.max(b))
            })
            .collect();
        es.sort_unstable();
        es.dedup();
        Self { n, edges: es }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The normalized edge list.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Whether this graph is a qual graph for `d`: for each attribute, the
    /// nodes whose schemas contain it induce a connected subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != self.node_count()`.
    pub fn is_valid_for(&self, d: &DbSchema) -> bool {
        assert_eq!(d.len(), self.n, "schema/graph size mismatch");
        let adj = self.adjacency();
        let mut holders: FxHashMap<AttrId, Vec<usize>> = FxHashMap::default();
        for (i, r) in d.iter().enumerate() {
            for a in r.iter() {
                holders.entry(a).or_default().push(i);
            }
        }
        let mut mark = vec![usize::MAX; self.n];
        let mut stack = Vec::new();
        for (round, (_, nodes)) in holders.iter().enumerate() {
            if nodes.len() <= 1 {
                continue;
            }
            // BFS inside the induced subgraph.
            for &v in nodes {
                mark[v] = round;
            }
            stack.clear();
            stack.push(nodes[0]);
            let mut seen = 1usize;
            mark[nodes[0]] = usize::MAX; // visited sentinel for this round
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if mark[w] == round {
                        mark[w] = usize::MAX;
                        seen += 1;
                        stack.push(w);
                    }
                }
            }
            if seen != nodes.len() {
                return false;
            }
        }
        true
    }

    /// Whether the graph is a tree: connected with exactly `n − 1` edges
    /// (the empty graph and the single node count as trees).
    pub fn is_tree(&self) -> bool {
        if self.n <= 1 {
            return self.edges.is_empty();
        }
        if self.edges.len() != self.n - 1 {
            return false;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }
}

/// A validated qual tree (join tree) for a database schema.
///
/// Constructed via [`JoinTree::try_new`] (checks tree-ness and qual
/// validity) or by [`maximum_weight_join_tree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinTree {
    graph: QualGraph,
    adj: Vec<Vec<usize>>,
}

impl JoinTree {
    /// Validates that `graph` is a tree and a qual graph for `d`.
    pub fn try_new(graph: QualGraph, d: &DbSchema) -> Option<Self> {
        if graph.is_tree() && graph.is_valid_for(d) {
            let adj = graph.adjacency();
            Some(Self { graph, adj })
        } else {
            None
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &QualGraph {
        &self.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.n
    }

    /// Edge list.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        self.graph.edges()
    }

    /// Neighbors of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// The unique path from `r` to `s` (inclusive). Returns `[r]` if
    /// `r == s`.
    pub fn path(&self, r: usize, s: usize) -> Vec<usize> {
        let mut prev = vec![usize::MAX; self.graph.n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(r);
        prev[r] = r;
        while let Some(v) = queue.pop_front() {
            if v == s {
                break;
            }
            for &w in &self.adj[v] {
                if prev[w] == usize::MAX {
                    prev[w] = v;
                    queue.push_back(w);
                }
            }
        }
        assert_ne!(prev[s], usize::MAX, "join tree is connected");
        let mut path = vec![s];
        let mut v = s;
        while v != r {
            v = prev[v];
            path.push(v);
        }
        path.reverse();
        path
    }

    /// Whether the node set `nodes` induces a connected subgraph of the
    /// tree — the paper's notion of `D'` being a **subtree** of `D`
    /// (Theorem 3.1). The empty set and singletons are connected.
    pub fn induces_connected(&self, nodes: &[usize]) -> bool {
        if nodes.len() <= 1 {
            return true;
        }
        let inset: Vec<bool> = {
            let mut v = vec![false; self.graph.n];
            for &x in nodes {
                v[x] = true;
            }
            v
        };
        let mut seen = vec![false; self.graph.n];
        let mut stack = vec![nodes[0]];
        seen[nodes[0]] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &w in &self.adj[v] {
                if inset[w] && !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count
            == nodes
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
    }

    /// Checks the paper's *attribute connectivity* fact (§3.1): for nodes
    /// `r`, `s` and any node `p` on the tree path between them, `R ∩ S ⊆ P`.
    /// Returns `true` for every valid qual tree; exposed so tests can verify
    /// the fact on arbitrary constructed trees.
    pub fn attribute_connectivity_holds(&self, d: &DbSchema) -> bool {
        let n = self.graph.n;
        for r in 0..n {
            for s in (r + 1)..n {
                let shared = d.rel(r).intersect(d.rel(s));
                if shared.is_empty() {
                    continue;
                }
                for &p in &self.path(r, s) {
                    if !shared.is_subset(d.rel(p)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Renders the join tree in Graphviz DOT syntax, labeling nodes with
    /// their relation schemas — handy for inspecting decompositions.
    ///
    /// ```
    /// use gyo_schema::{Catalog, DbSchema, JoinTree, QualGraph};
    ///
    /// let mut cat = Catalog::alphabetic();
    /// let d = DbSchema::parse("ab, bc", &mut cat).unwrap();
    /// let t = JoinTree::try_new(QualGraph::new(2, [(0, 1)]), &d).unwrap();
    /// let dot = t.to_dot(&d, &cat);
    /// assert!(dot.contains("\"ab\" -- \"bc\""));
    /// ```
    pub fn to_dot(&self, d: &crate::DbSchema, cat: &crate::Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::from("graph join_tree {\n");
        let label = |v: usize| d.rel(v).to_notation(cat);
        if self.graph.n == 1 {
            writeln!(out, "  \"{}\";", label(0)).expect("write to string");
        }
        for &(u, v) in self.graph.edges() {
            writeln!(out, "  \"{}\" -- \"{}\";", label(u), label(v)).expect("write to string");
        }
        out.push('}');
        out
    }

    /// A rooted view: `parent[v]` for every node, with `parent[root] ==
    /// root`. Children are visited before parents in the returned
    /// post-order (useful for semijoin programs).
    pub fn rooted_at(&self, root: usize) -> RootedTree {
        let n = self.graph.n;
        let mut parent = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut stack = vec![root];
        parent[root] = root;
        while let Some(v) = stack.pop() {
            order.push(v);
            for &w in &self.adj[v] {
                if parent[w] == usize::MAX {
                    parent[w] = v;
                    stack.push(w);
                }
            }
        }
        order.reverse(); // children before parents
        RootedTree {
            root,
            parent,
            post_order: order,
        }
    }
}

/// A join tree rooted at a chosen node; see [`JoinTree::rooted_at`].
#[derive(Clone, Debug)]
pub struct RootedTree {
    /// The root node index.
    pub root: usize,
    /// `parent[v]` is `v`'s parent; `parent[root] == root`.
    pub parent: Vec<usize>,
    /// All nodes, children strictly before their parents (root last).
    pub post_order: Vec<usize>,
}

/// The classical spanning-tree decision procedure for tree schemas:
/// compute a **maximum-weight spanning tree** of the complete graph over
/// `D`'s relation schemas with edge weight `|Rᵢ ∩ Rⱼ|` (components of the
/// intersection graph are linked by weight-0 edges, which is harmless since
/// those schemas share no attribute). The result is a qual tree iff `D` is a
/// tree schema.
///
/// Returns the tree when it validates; `None` when `D` is cyclic.
pub fn maximum_weight_join_tree(d: &DbSchema) -> Option<JoinTree> {
    let n = d.len();
    if n == 0 {
        return JoinTree::try_new(QualGraph::new(0, []), d);
    }
    // Prim's algorithm on the dense intersection-weight graph.
    let mut in_tree = vec![false; n];
    let mut best_w = vec![-1i64; n];
    let mut best_to = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for v in 1..n {
        best_w[v] = d.rel(0).intersect(d.rel(v)).len() as i64;
        best_to[v] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        for v in 0..n {
            if !in_tree[v] && (pick == usize::MAX || best_w[v] > best_w[pick]) {
                pick = v;
            }
        }
        in_tree[pick] = true;
        edges.push((best_to[pick], pick));
        for v in 0..n {
            if !in_tree[v] {
                let w = d.rel(pick).intersect(d.rel(v)).len() as i64;
                if w > best_w[v] {
                    best_w[v] = w;
                    best_to[v] = pick;
                }
            }
        }
    }
    JoinTree::try_new(QualGraph::new(n, edges), d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn db(s: &str) -> (DbSchema, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(s, &mut cat).unwrap();
        (d, cat)
    }

    #[test]
    fn fig1_chain_is_a_qual_tree() {
        // Fig. 1 row 1: (ab, bc, cd) with qual graph ab - bc - cd.
        let (d, _) = db("ab, bc, cd");
        let g = QualGraph::new(3, [(0, 1), (1, 2)]);
        assert!(g.is_valid_for(&d));
        assert!(g.is_tree());
        assert!(JoinTree::try_new(g, &d).is_some());
    }

    #[test]
    fn fig1_wrong_chain_is_not_a_qual_graph() {
        // ab - cd - bc breaks connectivity of attribute b and c... check b:
        // b appears in nodes 0 and 1; they are not adjacent in 0-2, 2-1? 0-2-1
        // is a path; b's nodes {0,1} induce no edge => invalid.
        let (d, _) = db("ab, bc, cd");
        let g = QualGraph::new(3, [(0, 2), (2, 1)]);
        assert!(!g.is_valid_for(&d));
    }

    #[test]
    fn fig1_triangle_schema_has_no_qual_tree_but_star_schema_does() {
        // (ab, bc, ac): its only qual graph is the triangle (cyclic).
        let (d, _) = db("ab, bc, ac");
        let triangle = QualGraph::new(3, [(0, 1), (1, 2), (0, 2)]);
        assert!(triangle.is_valid_for(&d));
        assert!(!triangle.is_tree());
        assert!(maximum_weight_join_tree(&d).is_none());

        // Fig. 1 row 3: (abc, cde, ace, afe) is a tree schema via
        // abc - ace - afe with cde hanging off ace.
        let (d2, _) = db("abc, cde, ace, afe");
        let t = maximum_weight_join_tree(&d2).expect("tree schema");
        assert!(t.attribute_connectivity_holds(&d2));
    }

    #[test]
    fn disconnected_schema_is_still_a_tree_schema() {
        let (d, _) = db("ab, cd");
        let t = maximum_weight_join_tree(&d).expect("two islands joined by weight-0 edge");
        assert_eq!(t.node_count(), 2);
        assert!(t.attribute_connectivity_holds(&d));
    }

    #[test]
    fn aring_of_size_4_has_no_join_tree() {
        let (d, _) = db("ab, bc, cd, da");
        assert!(maximum_weight_join_tree(&d).is_none());
    }

    #[test]
    fn path_and_connected_subgraphs() {
        let (d, _) = db("ab, bc, cd, de");
        let t = maximum_weight_join_tree(&d).unwrap();
        // The MST of a chain is the chain itself.
        let p = t.path(0, 3);
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        assert_eq!(p.len(), 4);
        assert!(t.induces_connected(&[1, 2]));
        assert!(t.induces_connected(&[2]));
        assert!(t.induces_connected(&[]));
        assert!(!t.induces_connected(&[0, 2]));
    }

    #[test]
    fn rooted_post_order_children_first() {
        let (d, _) = db("ab, bc, cd");
        let t = maximum_weight_join_tree(&d).unwrap();
        let rt = t.rooted_at(0);
        assert_eq!(rt.parent[rt.root], rt.root);
        assert_eq!(*rt.post_order.last().unwrap(), rt.root);
        // every child appears before its parent
        let pos: Vec<usize> = {
            let mut v = vec![0; 3];
            for (i, &x) in rt.post_order.iter().enumerate() {
                v[x] = i;
            }
            v
        };
        for v in 0..3 {
            if v != rt.root {
                assert!(pos[v] < pos[rt.parent[v]]);
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs_are_trees() {
        let (d0, _) = db("");
        assert!(maximum_weight_join_tree(&d0).is_some());
        let (d1, _) = db("abc");
        let t = maximum_weight_join_tree(&d1).unwrap();
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn duplicate_relation_schemas_are_distinct_nodes() {
        let (d, _) = db("ab, ab, bc");
        let t = maximum_weight_join_tree(&d).expect("duplicates are fine in tree schemas");
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        QualGraph::new(2, [(0, 0)]);
    }

    #[test]
    fn dot_export_single_node_and_chain() {
        let (d1, cat) = db("abc");
        let t1 = maximum_weight_join_tree(&d1).unwrap();
        let dot1 = t1.to_dot(&d1, &cat);
        assert!(dot1.contains("\"abc\""), "{dot1}");

        let (d, cat) = db("ab, bc, cd");
        let t = maximum_weight_join_tree(&d).unwrap();
        let dot = t.to_dot(&d, &cat);
        assert!(dot.starts_with("graph join_tree {"));
        assert_eq!(dot.matches(" -- ").count(), 2);
    }

    #[test]
    fn attribute_connectivity_fails_on_bogus_tree() {
        // (ab, cd, ab∩?) — build a "tree" that is NOT a qual tree and check
        // the property checker notices via is_valid_for instead.
        let (d, _) = db("ab, cd, bd");
        // Chain ab - cd - bd: attribute b appears in nodes 0 and 2,
        // non-adjacent, with node 1 lacking b => invalid qual graph.
        let g = QualGraph::new(3, [(0, 1), (1, 2)]);
        assert!(!g.is_valid_for(&d));
        assert!(JoinTree::try_new(g, &d).is_none());
    }
}
