//! A minimal FxHash-style hasher.
//!
//! The default `SipHash` hasher is DoS-resistant but slow for the short
//! integer keys that dominate this library (attribute ids, row indices,
//! packed tuple values). This is the classic Firefox/rustc multiply-rotate
//! hash, implemented locally so the workspace needs no extra dependency.
//! Hash-flooding resistance is irrelevant here: all keys originate from
//! trusted, locally generated schemas and data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for short keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1u32, 2]), hash_of(&[2u32, 1]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));

        let mut s: FxHashSet<Vec<u64>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2, 3]));
        assert!(!s.insert(vec![1, 2, 3]));
    }

    #[test]
    fn partial_chunks_differ_by_length() {
        // A 3-byte and a 4-byte string with a shared prefix must not collide
        // structurally (the length is mixed into the tail word).
        assert_ne!(hash_of(&&b"abc"[..]), hash_of(&&b"abc\0"[..]));
    }
}
