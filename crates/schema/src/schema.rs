//! Database schemas: multisets of relation schemas (hypergraphs).

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::attr::{AttrId, Catalog};
use crate::attrset::AttrSet;
use crate::fxhash::FxHashMap;

/// A database schema `D = (R₁, …, Rₙ)` — a finite *multiset* of relation
/// schemas (§2 of the paper). Viewed as a hypergraph: attributes are
/// vertices, relation schemas are hyperedges.
///
/// The multiset order is preserved (two equal relation schemas are distinct
/// qual-graph nodes), but [`PartialEq`]/[`Hash`] implement **multiset
/// equality**: `(ab, bc)` equals `(bc, ab)`.
///
/// # Examples
///
/// ```
/// use gyo_schema::{Catalog, DbSchema};
///
/// let mut cat = Catalog::alphabetic();
/// let d = DbSchema::parse("abc, ab, bc", &mut cat).unwrap();
/// assert_eq!(d.attributes().to_notation(&cat), "abc");
/// assert!(!d.is_reduced()); // ab ⊆ abc
/// assert_eq!(d.reduce().to_notation(&cat), "(abc)");
/// ```
#[derive(Clone, Default)]
pub struct DbSchema {
    rels: Vec<AttrSet>,
}

impl DbSchema {
    /// Creates a schema from relation schemas, preserving multiset order.
    pub fn new(rels: Vec<AttrSet>) -> Self {
        Self { rels }
    }

    /// The empty database schema.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the paper's notation; see [`crate::parse::parse_db`].
    pub fn parse(s: &str, cat: &mut Catalog) -> Result<Self, crate::ParseError> {
        crate::parse::parse_db(s, cat)
    }

    /// Number of relation schemas, counting multiplicity (the paper's `|D|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the schema has no relation schemas.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// The `i`-th relation schema.
    #[inline]
    pub fn rel(&self, i: usize) -> &AttrSet {
        &self.rels[i]
    }

    /// All relation schemas, in multiset order.
    #[inline]
    pub fn rels(&self) -> &[AttrSet] {
        &self.rels
    }

    /// Iterates over the relation schemas.
    pub fn iter(&self) -> std::slice::Iter<'_, AttrSet> {
        self.rels.iter()
    }

    /// Appends a relation schema (mutating `D` into `D ∪ (R)`).
    pub fn push(&mut self, r: AttrSet) {
        self.rels.push(r);
    }

    /// Returns `D ∪ (R)` without mutating `self`.
    pub fn with_rel(&self, r: AttrSet) -> Self {
        let mut rels = Vec::with_capacity(self.rels.len() + 1);
        rels.extend_from_slice(&self.rels);
        rels.push(r);
        Self { rels }
    }

    /// Multiset union `D ∪ D'`.
    pub fn concat(&self, other: &Self) -> Self {
        let mut rels = Vec::with_capacity(self.len() + other.len());
        rels.extend_from_slice(&self.rels);
        rels.extend_from_slice(&other.rels);
        Self { rels }
    }

    /// `U(D)` — the union of all attributes (§2).
    pub fn attributes(&self) -> AttrSet {
        let mut ids: Vec<AttrId> = Vec::new();
        for r in &self.rels {
            ids.extend(r.iter());
        }
        AttrSet::from_iter(ids)
    }

    /// Whether some relation schema equals `r` (set equality).
    pub fn contains_rel(&self, r: &AttrSet) -> bool {
        self.rels.iter().any(|s| s == r)
    }

    /// `D` is **reduced** if no relation schema is a subset of another
    /// *distinct occurrence* (§2). Duplicates therefore make a schema
    /// non-reduced.
    pub fn is_reduced(&self) -> bool {
        for (i, r) in self.rels.iter().enumerate() {
            for (j, s) in self.rels.iter().enumerate() {
                if i != j && r.is_subset(s) && (r != s || i > j) {
                    // For equal sets only one direction counts, otherwise a
                    // singleton duplicate pair would be "mutually subsumed"
                    // and both reported; any duplicate means non-reduced.
                    return false;
                }
            }
        }
        true
    }

    /// The **reduction** of `D` (§2): eliminates every relation schema that
    /// is a subset of another (keeping one copy of duplicates). The result
    /// is reduced and `reduce(D) ≤ D ≤ reduce(D)`.
    #[allow(clippy::needless_range_loop)]
    pub fn reduce(&self) -> Self {
        let mut keep = vec![true; self.rels.len()];
        for i in 0..self.rels.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.rels.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let (ri, rj) = (&self.rels[i], &self.rels[j]);
                if rj.is_subset(ri) && (rj != ri || j > i) {
                    keep[j] = false;
                }
            }
        }
        Self {
            rels: self
                .rels
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(r, _)| r.clone())
                .collect(),
        }
    }

    /// Weak inclusion `self ≤ other` (§2): every `R ∈ self` is contained in
    /// some `R' ∈ other`.
    pub fn le(&self, other: &Self) -> bool {
        self.rels
            .iter()
            .all(|r| other.rels.iter().any(|s| r.is_subset(s)))
    }

    /// Multiset inclusion `self ⊆ other`: every relation schema of `self`
    /// occurs in `other` with at least the same multiplicity.
    pub fn sub_multiset(&self, other: &Self) -> bool {
        let mut counts: FxHashMap<&AttrSet, isize> = FxHashMap::default();
        for r in &other.rels {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in &self.rels {
            let c = counts.entry(r).or_insert(0);
            *c -= 1;
            if *c < 0 {
                return false;
            }
        }
        true
    }

    /// Uniformly deletes the attributes of `x` from every relation schema
    /// (the operation of Lemma 3.1: `D' = (R − X | R ∈ D)`). Empty results
    /// are *kept* — eliminating subsets/duplicates is a separate,
    /// deliberate step ([`reduce`](Self::reduce)).
    pub fn delete_attrs(&self, x: &AttrSet) -> Self {
        Self {
            rels: self.rels.iter().map(|r| r.difference(x)).collect(),
        }
    }

    /// Restricts to the relation schemas at `indices` (multiset order kept).
    pub fn project_rels(&self, indices: &[usize]) -> Self {
        Self {
            rels: indices.iter().map(|&i| self.rels[i].clone()).collect(),
        }
    }

    /// Partitions the relation-schema indices into connected components of
    /// the *intersection graph* (two schemas are adjacent iff they share an
    /// attribute — the paper's connectivity notion, §5.2). Empty relation
    /// schemas form singleton components. Components are reported in order
    /// of their smallest index.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.rels.len();
        // Attribute -> nodes incidence; linking consecutive occurrences
        // is enough for connectivity and keeps the edge count linear.
        let mut owner: FxHashMap<AttrId, usize> = FxHashMap::default();
        let mut dsu = Dsu::new(n);
        for (i, r) in self.rels.iter().enumerate() {
            for a in r.iter() {
                match owner.get(&a) {
                    Some(&j) => {
                        dsu.union(i, j);
                    }
                    None => {
                        owner.insert(a, i);
                    }
                }
            }
        }
        let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for i in 0..n {
            groups.entry(dsu.find(i)).or_default().push(i);
        }
        let mut comps: Vec<Vec<usize>> = groups.into_values().collect();
        comps.sort_by_key(|c| c[0]);
        comps
    }

    /// Whether `D` is connected (§5.2): every pair of relation schemas is
    /// linked by a path of pairwise-intersecting schemas. The empty schema
    /// and singleton schemas are connected.
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// A canonical (sorted) copy used for multiset comparison and hashing.
    fn sorted_rels(&self) -> Vec<&AttrSet> {
        let mut v: Vec<&AttrSet> = self.rels.iter().collect();
        v.sort();
        v
    }

    /// Renders the schema in the paper's notation, e.g. `"(ab, bc, cd)"`.
    pub fn to_notation(&self, cat: &Catalog) -> String {
        let mut out = String::from("(");
        for (i, r) in self.rels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.to_notation(cat));
        }
        out.push(')');
        out
    }
}

impl PartialEq for DbSchema {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.sorted_rels() == other.sorted_rels()
    }
}

impl Eq for DbSchema {}

impl Hash for DbSchema {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for r in self.sorted_rels() {
            r.hash(state);
        }
    }
}

impl FromIterator<AttrSet> for DbSchema {
    fn from_iter<I: IntoIterator<Item = AttrSet>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl fmt::Debug for DbSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, r) in self.rels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}", r)?;
        }
        write!(f, ")")
    }
}

/// Disjoint-set union with path halving and union by size.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(s: &str) -> (DbSchema, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(s, &mut cat).unwrap();
        (d, cat)
    }

    #[test]
    fn attributes_is_union() {
        let (d, cat) = db("ab, bc, cd");
        assert_eq!(d.attributes().to_notation(&cat), "abcd");
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let (d1, _) = db("ab, bc");
        let (d2, _) = db("bc, ab");
        assert_eq!(d1, d2);
        let (d3, _) = db("ab, ab");
        assert_ne!(d1, d3);
        assert_ne!(db("ab").0, d3); // multiplicities matter
    }

    #[test]
    fn reduced_and_reduce() {
        let (d, cat) = db("abc, ab, bc, abc");
        assert!(!d.is_reduced());
        let r = d.reduce();
        assert_eq!(r.to_notation(&cat), "(abc)");
        assert!(r.is_reduced());

        let (tidy, _) = db("ab, bc, cd");
        assert!(tidy.is_reduced());
        assert_eq!(tidy.reduce(), tidy);
    }

    #[test]
    fn reduce_keeps_one_copy_of_duplicates() {
        let (d, _) = db("ab, ab, ab");
        assert_eq!(d.reduce().len(), 1);
    }

    #[test]
    fn weak_inclusion() {
        let (d, _) = db("ab, bc");
        let (bigger, _) = db("abc, bcd");
        assert!(d.le(&bigger));
        assert!(!bigger.le(&d));
        assert!(DbSchema::empty().le(&d));
        assert!(d.le(&d));
    }

    #[test]
    fn multiset_inclusion() {
        let (d, _) = db("ab, ab, bc");
        let (sub, _) = db("ab, bc");
        let (sub2, _) = db("ab, ab");
        let (not_sub, _) = db("ab, ab, ab");
        assert!(sub.sub_multiset(&d));
        assert!(sub2.sub_multiset(&d));
        assert!(!not_sub.sub_multiset(&d));
        assert!(DbSchema::empty().sub_multiset(&d));
    }

    #[test]
    fn delete_attrs_keeps_empty_rels() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab, b", &mut cat).unwrap();
        let x = AttrSet::parse("ab", &mut cat).unwrap();
        let deleted = d.delete_attrs(&x);
        assert_eq!(deleted.len(), 2);
        assert!(deleted.rel(0).is_empty());
        assert!(deleted.rel(1).is_empty());
    }

    #[test]
    fn connected_components_via_shared_attributes() {
        let (d, _) = db("ab, bc, de, ef, gh");
        let comps = d.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert!(!d.is_connected());
        assert!(db("ab, bc, ca").0.is_connected());
        assert!(DbSchema::empty().is_connected());
    }

    #[test]
    fn empty_relation_schemas_are_isolated() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::new(vec![
            AttrSet::parse("ab", &mut cat).unwrap(),
            AttrSet::empty(),
            AttrSet::parse("bc", &mut cat).unwrap(),
        ]);
        let comps = d.connected_components();
        assert_eq!(comps, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn with_rel_and_concat() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab", &mut cat).unwrap();
        let r = AttrSet::parse("cd", &mut cat).unwrap();
        let d2 = d.with_rel(r.clone());
        assert_eq!(d2.len(), 2);
        assert!(d2.contains_rel(&r));
        let d3 = d.concat(&d2);
        assert_eq!(d3.len(), 3);
    }

    #[test]
    fn project_rels_preserves_order() {
        let (d, cat) = db("ab, bc, cd");
        let p = d.project_rels(&[2, 0]);
        assert_eq!(p.to_notation(&cat), "(cd, ab)");
    }
}
