//! Parsing of the paper's compact schema notation.
//!
//! The paper (Fig. 1) writes attributes as single letters and relation
//! schemas by concatenation: the schema `(ab, bc, cd)` has three relation
//! schemas `{a,b}`, `{b,c}`, `{c,d}`. Two grammars are supported:
//!
//! * **compact** — every character of a relation token is one attribute:
//!   `"ab, bc, cd"` (separators: `,` between relations, whitespace ignored);
//! * **dotted** — attributes inside a relation token are separated by `.`,
//!   allowing multi-character names: `"emp.dept, dept.mgr"`.
//!
//! A token containing a `.` uses the dotted grammar; otherwise compact.

use std::fmt;

use crate::attr::Catalog;
use crate::attrset::AttrSet;
use crate::schema::DbSchema;

/// Error produced by the schema parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input (or one relation token) was empty where content is required.
    EmptyToken {
        /// Position of the offending relation token (0-based), if relevant.
        position: usize,
    },
    /// An attribute name was empty (e.g. `"a..b"` in dotted notation).
    EmptyAttribute {
        /// The relation token containing the bad attribute.
        token: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::EmptyToken { position } => {
                write!(f, "empty relation token at position {position}")
            }
            ParseError::EmptyAttribute { token } => {
                write!(f, "empty attribute name in token {token:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses one attribute set.
///
/// `"∅"` and `""` (after trimming) denote the empty set, matching the
/// rendering of [`AttrSet::to_notation`].
pub fn parse_set(s: &str, cat: &mut Catalog) -> Result<AttrSet, ParseError> {
    let t = s.trim();
    if t.is_empty() || t == "∅" {
        return Ok(AttrSet::empty());
    }
    if t.contains('.') {
        let mut ids = Vec::new();
        for name in t.split('.') {
            let name = name.trim();
            if name.is_empty() {
                return Err(ParseError::EmptyAttribute {
                    token: t.to_owned(),
                });
            }
            ids.push(cat.intern(name));
        }
        Ok(AttrSet::from_iter(ids))
    } else if t.chars().count() > 1 && cat.lookup(t).is_some() {
        // A multi-character token that is already a known attribute name
        // denotes that single attribute — this makes `to_notation` output
        // round-trip for catalogs with multi-character names (e.g. "a0").
        Ok(AttrSet::from_iter([cat.lookup(t).expect("just checked")]))
    } else {
        let mut buf = [0u8; 4];
        Ok(AttrSet::from_iter(
            t.chars().filter(|c| !c.is_whitespace()).map(|c| {
                let name: &str = c.encode_utf8(&mut buf);
                cat.intern(name)
            }),
        ))
    }
}

/// Parses a database schema: relation tokens separated by `,` (or `;`).
///
/// ```
/// use gyo_schema::{parse_db, Catalog};
///
/// let mut cat = Catalog::alphabetic();
/// let d = parse_db("ab, bc, cd", &mut cat).unwrap();
/// assert_eq!(d.len(), 3);
/// assert_eq!(d.to_notation(&cat), "(ab, bc, cd)");
/// ```
pub fn parse_db(s: &str, cat: &mut Catalog) -> Result<DbSchema, ParseError> {
    let inner = s.trim().trim_start_matches('(').trim_end_matches(')');
    let mut rels = Vec::new();
    for (position, token) in inner.split([',', ';']).enumerate() {
        let token = token.trim();
        if token.is_empty() {
            // Allow a wholly empty input to mean the empty schema, but
            // reject stray empty tokens like "ab,,cd".
            if inner.trim().is_empty() {
                break;
            }
            return Err(ParseError::EmptyToken { position });
        }
        rels.push(parse_set(token, cat)?);
    }
    Ok(DbSchema::new(rels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_set() {
        let mut cat = Catalog::alphabetic();
        let s = parse_set("bca", &mut cat).unwrap();
        assert_eq!(s.to_notation(&cat), "abc");
    }

    #[test]
    fn dotted_set_with_long_names() {
        let mut cat = Catalog::new();
        let s = parse_set("emp.dept.salary", &mut cat).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.contains(cat.lookup("dept").unwrap()));
    }

    #[test]
    fn empty_set_notations() {
        let mut cat = Catalog::new();
        assert!(parse_set("", &mut cat).unwrap().is_empty());
        assert!(parse_set("∅", &mut cat).unwrap().is_empty());
        assert!(parse_set("  ", &mut cat).unwrap().is_empty());
    }

    #[test]
    fn db_with_parens_and_semicolons() {
        let mut cat = Catalog::alphabetic();
        let d1 = parse_db("(ab, bc, ca)", &mut cat).unwrap();
        let d2 = parse_db("ab; bc; ca", &mut cat).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 3);
    }

    #[test]
    fn db_rejects_stray_empty_token() {
        let mut cat = Catalog::alphabetic();
        let err = parse_db("ab,,cd", &mut cat).unwrap_err();
        assert_eq!(err, ParseError::EmptyToken { position: 1 });
    }

    #[test]
    fn dotted_rejects_empty_attribute() {
        let mut cat = Catalog::new();
        assert!(matches!(
            parse_set("a..b", &mut cat),
            Err(ParseError::EmptyAttribute { .. })
        ));
    }

    #[test]
    fn empty_db() {
        let mut cat = Catalog::new();
        let d = parse_db("", &mut cat).unwrap();
        assert!(d.is_empty());
        let d = parse_db("()", &mut cat).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn known_multichar_name_parses_as_single_attribute() {
        let mut cat = Catalog::new();
        let a0 = cat.intern("a0");
        let s = parse_set("a0", &mut cat).unwrap();
        assert_eq!(s.as_slice(), &[a0]);
        // unknown multi-char tokens still parse per character
        let mut alpha = Catalog::alphabetic();
        let ab = parse_set("ab", &mut alpha).unwrap();
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn whitespace_inside_compact_token_is_ignored() {
        let mut cat = Catalog::alphabetic();
        let s = parse_set("a b", &mut cat).unwrap();
        assert_eq!(s.to_notation(&cat), "ab");
    }
}
