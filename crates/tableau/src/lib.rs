//! Tableaux, containment mappings, minimization, and canonical connections
//! (§3.4 of the paper).
//!
//! The *standard tableau* `Tab(D, X)` for the join query `(D, X)` has one
//! row per relation schema: entry `(i, A)` is the distinguished variable `a`
//! when `A ∈ Rᵢ ∩ X`, the per-attribute shared nondistinguished variable
//! `a'` when `A ∈ Rᵢ − X`, and a fresh unique nondistinguished variable
//! otherwise. Tableau machinery turns the paper's semantic notions into
//! finite searches:
//!
//! * **containment mappings** ([`mapping`]) decide weak containment of
//!   queries over universal databases (Chandra–Merlin over one base
//!   relation);
//! * **minimization** ([`minimize()`]) — greedy redundant-row removal, which
//!   is guaranteed to reach the unique (up to isomorphism, Lemma 3.4)
//!   minimal tableau;
//! * the **canonical schema** `CS(D, X)` and the **canonical connection**
//!   `CC(D, X) = CS(minimal Tab(D, X))` ([`cc`]), with the Theorem 3.3 fast
//!   paths (`CC = GR` for tree schemas and when `U(GR(D,X)) ⊆ X`);
//! * **frozen instances** ([`tableau::Tableau::freeze`]) — the canonical
//!   database obtained by reading symbols as values, which powers the exact
//!   semantic oracles in `gyo-query`.

#![warn(missing_docs)]

pub mod cc;
pub mod eval;
pub mod mapping;
pub mod minimize;
pub mod symbol;
pub mod tableau;

pub use cc::{canonical_connection, canonical_schema, cc_via_minimization};
pub use eval::evaluate;
pub use mapping::{equivalent, find_containment, isomorphic, ContainmentMapping};
pub use minimize::{minimize, Minimized};
pub use symbol::Symbol;
pub use tableau::Tableau;
