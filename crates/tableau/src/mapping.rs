//! Containment mappings between tableaux (§3.4).
//!
//! A containment mapping from `T` to `T'` is a row-to-row mapping induced by
//! a symbol-to-symbol mapping that fixes distinguished variables \[2\]. This
//! module implements the backtracking search, tableau equivalence (`T ≡ T'`:
//! containment mappings both ways), and isomorphism (`T ≃ T'`: a bijective
//! row correspondence that is a containment mapping in both directions).
//!
//! Deciding containment is NP-complete in general; the search uses
//! most-constrained-row ordering and per-row candidate prefiltering, which
//! keeps the paper-sized and benchmark-sized instances fast.

use gyo_schema::FxHashMap;

use crate::symbol::Symbol;
use crate::tableau::Tableau;

/// A successful containment mapping from `T` to `T'`.
#[derive(Clone, Debug)]
pub struct ContainmentMapping {
    /// `row_map[i]` is the row of `T'` that row `i` of `T` maps to.
    pub row_map: Vec<usize>,
    /// The inducing symbol mapping, restricted to symbols of `T` that occur
    /// in at least one constrained position (unique symbols mapped freely
    /// are included for completeness).
    pub symbol_map: FxHashMap<Symbol, Symbol>,
}

/// Searches for a containment mapping from `t` to `t2`.
///
/// # Panics
///
/// Panics if the tableaux have different column sets or targets — the
/// paper's containment mappings are only defined between tableaux with the
/// same distinguished variables.
pub fn find_containment(t: &Tableau, t2: &Tableau) -> Option<ContainmentMapping> {
    assert_eq!(t.attrs(), t2.attrs(), "tableaux must share columns");
    assert_eq!(t.target(), t2.target(), "tableaux must share the target");
    let n = t.row_count();
    let width = t.attrs().len();

    // Precompute candidate target rows per source row: distinguished cells
    // must match exactly.
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(n);
    for row in t.rows() {
        let mut cands = Vec::new();
        'rows: for (j, row2) in t2.rows().iter().enumerate() {
            for c in 0..width {
                if row[c].is_distinguished() && row2[c] != row[c] {
                    continue 'rows;
                }
            }
            cands.push(j);
        }
        if cands.is_empty() {
            return None;
        }
        candidates.push(cands);
    }

    let mut row_map = vec![usize::MAX; n];
    let mut symbol_map: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    if assign(t, t2, &candidates, &mut row_map, &mut symbol_map) {
        Some(ContainmentMapping {
            row_map,
            symbol_map,
        })
    } else {
        None
    }
}

/// Whether mapping row `i` of `t` to row `j` of `t2` is consistent with the
/// current symbol bindings; does not mutate the map.
fn row_compatible(
    t: &Tableau,
    t2: &Tableau,
    i: usize,
    j: usize,
    symbol_map: &FxHashMap<Symbol, Symbol>,
) -> bool {
    let width = t.attrs().len();
    for c in 0..width {
        let from = t.rows()[i][c];
        if from.is_distinguished() {
            continue; // candidate prefilter already guaranteed equality
        }
        if let Some(&bound) = symbol_map.get(&from) {
            if bound != t2.rows()[j][c] {
                return false;
            }
        }
    }
    true
}

/// Backtracking with dynamic most-constrained-row selection: at every step
/// pick the unassigned row with the fewest targets compatible with the
/// current symbol bindings (fail immediately on zero). This keeps
/// chain-structured tableaux — long paths of shared variables, the common
/// shape for join queries — close to linear instead of exponential.
fn assign(
    t: &Tableau,
    t2: &Tableau,
    candidates: &[Vec<usize>],
    row_map: &mut Vec<usize>,
    symbol_map: &mut FxHashMap<Symbol, Symbol>,
) -> bool {
    let n = t.row_count();
    // Select the unassigned row with the fewest compatible candidates.
    let mut best: Option<(usize, Vec<usize>)> = None;
    for i in 0..n {
        if row_map[i] != usize::MAX {
            continue;
        }
        let feasible: Vec<usize> = candidates[i]
            .iter()
            .copied()
            .filter(|&j| row_compatible(t, t2, i, j, symbol_map))
            .collect();
        let count = feasible.len();
        if count == 0 {
            return false; // dead end: some row has no compatible target
        }
        if best.as_ref().is_none_or(|(_, f)| count < f.len()) {
            let forced = count == 1;
            best = Some((i, feasible));
            if forced {
                break; // cannot do better than a forced assignment
            }
        }
    }
    let Some((i, feasible)) = best else {
        return true; // every row assigned
    };
    let width = t.attrs().len();
    for j in feasible {
        // Bind the row's symbols; record additions for backtracking.
        let mut added: Vec<Symbol> = Vec::new();
        for c in 0..width {
            let from = t.rows()[i][c];
            if from.is_distinguished() {
                continue;
            }
            if symbol_map.get(&from).is_none() {
                symbol_map.insert(from, t2.rows()[j][c]);
                added.push(from);
            }
        }
        row_map[i] = j;
        if assign(t, t2, candidates, row_map, symbol_map) {
            return true;
        }
        row_map[i] = usize::MAX;
        for s in added {
            symbol_map.remove(&s);
        }
    }
    false
}

/// Tableau equivalence `T ≡ T'`: containment mappings in both directions.
pub fn equivalent(t: &Tableau, t2: &Tableau) -> bool {
    find_containment(t, t2).is_some() && find_containment(t2, t).is_some()
}

/// Tableau isomorphism `T ≃ T'`: a one-one row correspondence that is a
/// containment mapping in both directions (Lemma 3.4's conclusion for
/// minimal tableaux).
pub fn isomorphic(t: &Tableau, t2: &Tableau) -> bool {
    if t.row_count() != t2.row_count() {
        return false;
    }
    match (find_containment(t, t2), find_containment(t2, t)) {
        (Some(f), Some(g)) => {
            // For equal row counts it suffices that some containment mapping
            // is a bijection; compose the found ones to check. If f's row
            // map is injective it is the required correspondence together
            // with g existing; otherwise search for an injective variant.
            is_injective(&f.row_map) || {
                let _ = g;
                injective_containment_exists(t, t2)
            }
        }
        _ => false,
    }
}

fn is_injective(map: &[usize]) -> bool {
    let mut seen = vec![false; map.len()];
    for &j in map {
        if j >= seen.len() || seen[j] {
            return false;
        }
        seen[j] = true;
    }
    true
}

/// Exhaustive search for an *injective* containment mapping (only needed in
/// the rare case the greedy search returned a non-injective one between
/// equal-sized tableaux).
fn injective_containment_exists(t: &Tableau, t2: &Tableau) -> bool {
    fn rec(
        t: &Tableau,
        t2: &Tableau,
        i: usize,
        used: &mut Vec<bool>,
        symbol_map: &mut FxHashMap<Symbol, Symbol>,
    ) -> bool {
        if i == t.row_count() {
            return true;
        }
        let width = t.attrs().len();
        'cands: for j in 0..t2.row_count() {
            if used[j] {
                continue;
            }
            let mut added: Vec<Symbol> = Vec::new();
            for c in 0..width {
                let from = t.rows()[i][c];
                let to = t2.rows()[j][c];
                if from.is_distinguished() {
                    if from != to {
                        for s in added.drain(..) {
                            symbol_map.remove(&s);
                        }
                        continue 'cands;
                    }
                } else {
                    match symbol_map.get(&from) {
                        Some(&bound) if bound == to => {}
                        Some(_) => {
                            for s in added.drain(..) {
                                symbol_map.remove(&s);
                            }
                            continue 'cands;
                        }
                        None => {
                            symbol_map.insert(from, to);
                            added.push(from);
                        }
                    }
                }
            }
            used[j] = true;
            if rec(t, t2, i + 1, used, symbol_map) {
                return true;
            }
            used[j] = false;
            for s in added {
                symbol_map.remove(&s);
            }
        }
        false
    }
    rec(
        t,
        t2,
        0,
        &mut vec![false; t2.row_count()],
        &mut FxHashMap::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::{AttrSet, Catalog, DbSchema};

    fn tab(schema: &str, x: &str) -> Tableau {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(schema, &mut cat).unwrap();
        let xs = AttrSet::parse(x, &mut cat).unwrap();
        Tableau::standard(&d, &xs)
    }

    #[test]
    fn identity_containment() {
        let t = tab("ab, bc", "ac");
        let m = find_containment(&t, &t).expect("identity works");
        assert_eq!(m.row_map.len(), 2);
        assert!(equivalent(&t, &t));
        assert!(isomorphic(&t, &t));
    }

    #[test]
    fn smaller_schema_maps_into_larger_superset_rows() {
        // Tab((ab), a) maps into Tab((ab, bc), a): row ab -> row ab.
        let small = tab("ab", "a");
        let cat = &mut Catalog::alphabetic();
        let big_d = DbSchema::parse("ab, bc", cat).unwrap();
        // Rebuild "small" over the same universe so columns match.
        let x = AttrSet::parse("a", cat).unwrap();
        let big = Tableau::standard(&big_d, &x);
        // columns differ (abc vs ab) so direct mapping panics; assert that.
        let result = std::panic::catch_unwind(|| find_containment(&small, &big));
        assert!(result.is_err(), "different columns must be rejected");
    }

    #[test]
    fn duplicate_rows_map_onto_one() {
        let t = tab("ab, ab", "ab");
        let single = t.subtableau(&[0]);
        let m = find_containment(&t, &single).expect("dup rows fold");
        assert_eq!(m.row_map, vec![0, 0]);
        assert!(equivalent(&t, &single));
        assert!(!isomorphic(&t, &single), "row counts differ");
    }

    #[test]
    fn distinguished_variables_block_bad_mappings() {
        // Tab((ab, bc), abc) cannot map a-row onto c-row.
        let t = tab("ab, bc", "abc");
        let only_second = t.subtableau(&[1]);
        assert!(find_containment(&t, &only_second).is_none());
    }

    #[test]
    fn shared_symbol_consistency_enforced() {
        // D = (ab, bc): b' links the rows. Mapping both rows to a single
        // row of D' = (abc) is fine (b' -> b'), but folding Tab((ab, bc), a)
        // onto its FIRST row alone must fail: row bc needs its b-cell to
        // match row ab's b-cell (ok, b' -> b') and its c-cell (shared c')
        // to map to row ab's c-cell (a unique) — allowed! So that fold
        // actually succeeds. A genuine failure needs the target to
        // constrain two occurrences of one symbol differently:
        let t = tab("ab, bc", "ac"); // a, c distinguished; b' shared
        let only_first = t.subtableau(&[0]);
        // row bc has distinguished c; row ab's c-cell is unique -> no
        // candidate for row 1.
        assert!(find_containment(&t, &only_first).is_none());
    }

    #[test]
    fn equivalence_of_reordered_schemas() {
        let t1 = tab("ab, bc, cd", "ad");
        let t2 = tab("cd, ab, bc", "ad");
        assert!(equivalent(&t1, &t2));
        assert!(isomorphic(&t1, &t2));
    }

    #[test]
    fn composition_is_a_containment_mapping_fig3() {
        // Fig. 3's device: composing containment mappings yields a
        // containment mapping. Build T -> T' -> T'' and compose.
        let t = tab("abc, ab, bc", "b");
        let t_mid = t.subtableau(&[0, 1]);
        let t_small = t.subtableau(&[0]);
        let f = find_containment(&t, &t_mid).expect("fold bc into abc");
        let g = find_containment(&t_mid, &t_small).expect("fold ab into abc");
        // compose row maps and verify it is a containment mapping T -> T''.
        let composed: Vec<usize> = f.row_map.iter().map(|&j| g.row_map[j]).collect();
        // verify by symbol-consistency replay
        let mut sym: FxHashMap<Symbol, Symbol> = FxHashMap::default();
        for (i, &j) in composed.iter().enumerate() {
            for c in 0..t.attrs().len() {
                let from = t.rows()[i][c];
                let to = t_small.rows()[j][c];
                if from.is_distinguished() {
                    assert_eq!(from, to);
                } else {
                    let prev = sym.insert(from, to);
                    assert!(
                        prev.is_none() || prev == Some(to),
                        "inconsistent composition"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_tableaux_are_equivalent() {
        let t1 = Tableau::standard(&DbSchema::empty(), &AttrSet::empty());
        let t2 = Tableau::standard(&DbSchema::empty(), &AttrSet::empty());
        assert!(equivalent(&t1, &t2));
        assert!(isomorphic(&t1, &t2));
    }
}
