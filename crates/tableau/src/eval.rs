//! Direct tableau evaluation: a tableau *is* a conjunctive query over the
//! universal relation, and this module runs it as one.
//!
//! `evaluate(T, I)` finds every symbol assignment `ν` such that applying
//! `ν` to each row of `T` yields a tuple of `I`, and returns the summary
//! images `ν(X)` — by definition exactly `Tab(D, X)` evaluated as
//! `π_X(⋈_{R∈D} π_R I)`. The test suite proves that identity against the
//! relational engine, which gives the library two *independent* semantics
//! for every query: symbolic (this module) and algebraic (`gyo-relation`).
//!
//! The instance is a [`Relation`] and every tuple access is a `&[u64]`
//! row slice of its flat buffer; matches are collected into one flat
//! output buffer, so evaluation allocates nothing per tuple.
//!
//! Evaluation is backtracking join with most-constrained-row selection,
//! mirroring the containment-mapping search in [`crate::mapping`] — the
//! Chandra–Merlin correspondence made executable.

use gyo_relation::Relation;
use gyo_schema::FxHashMap;

use crate::symbol::Symbol;
use crate::tableau::Tableau;

/// Evaluates the tableau on the universal instance `universal` (a relation
/// whose column order matches `T.attrs()` order), returning the answer
/// relation over `T.target()` — normalized exactly like every other
/// [`Relation`].
///
/// # Panics
///
/// Panics if `universal`'s attribute set differs from `T.attrs()`.
pub fn evaluate(t: &Tableau, universal: &Relation) -> Relation {
    assert_eq!(
        universal.attrs(),
        t.attrs(),
        "universal instance must range over the tableau's attributes"
    );
    let mut results: Vec<u64> = Vec::new();
    let mut result_rows = 0usize;
    let mut binding: FxHashMap<Symbol, u64> = FxHashMap::default();
    let mut assigned = vec![usize::MAX; t.row_count()];

    // Empty tableau: one empty assignment; summary = distinguished values,
    // but with no rows there are no bindings — only valid if X is empty.
    if t.row_count() == 0 {
        return if t.target().is_empty() {
            Relation::identity()
        } else {
            Relation::empty(t.target().clone())
        };
    }

    search(
        t,
        universal,
        &mut assigned,
        &mut binding,
        &mut results,
        &mut result_rows,
    );
    Relation::from_row_major(t.target().clone(), result_rows, results)
}

fn row_matches(t: &Tableau, row: usize, tuple: &[u64], binding: &FxHashMap<Symbol, u64>) -> bool {
    t.rows()[row]
        .iter()
        .zip(tuple)
        .all(|(&sym, &v)| binding.get(&sym).is_none_or(|&b| b == v))
}

fn search(
    t: &Tableau,
    universal: &Relation,
    assigned: &mut [usize],
    binding: &mut FxHashMap<Symbol, u64>,
    results: &mut Vec<u64>,
    result_rows: &mut usize,
) {
    // pick the unassigned row with the fewest matching tuples
    let mut best: Option<(usize, Vec<usize>)> = None;
    for row in 0..t.row_count() {
        if assigned[row] != usize::MAX {
            continue;
        }
        let matches: Vec<usize> = (0..universal.len())
            .filter(|&u| row_matches(t, row, universal.row(u), binding))
            .collect();
        if matches.is_empty() {
            return; // dead end
        }
        let better = best.as_ref().is_none_or(|(_, m)| matches.len() < m.len());
        if better {
            let forced = matches.len() == 1;
            best = Some((row, matches));
            if forced {
                break;
            }
        }
    }
    let Some((row, matches)) = best else {
        // all rows assigned: read off the summary
        results.extend(
            t.target()
                .iter()
                .map(|a| binding[&Symbol::Distinguished(a)]),
        );
        *result_rows += 1;
        return;
    };
    for u in matches {
        let mut added: Vec<Symbol> = Vec::new();
        let mut ok = true;
        for (&sym, &v) in t.rows()[row].iter().zip(universal.row(u)) {
            match binding.get(&sym) {
                Some(&b) if b == v => {}
                Some(_) => {
                    ok = false;
                    break;
                }
                None => {
                    binding.insert(sym, v);
                    added.push(sym);
                }
            }
        }
        if ok {
            assigned[row] = u;
            search(t, universal, assigned, binding, results, result_rows);
            assigned[row] = usize::MAX;
        }
        for s in added {
            binding.remove(&s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::{AttrSet, Catalog, DbSchema};

    fn setup(schema: &str, x: &str) -> (Tableau, DbSchema, AttrSet) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(schema, &mut cat).unwrap();
        let xs = AttrSet::parse(x, &mut cat).unwrap();
        (Tableau::standard(&d, &xs), d, xs)
    }

    fn instance(t: &Tableau, rows: &[&[u64]]) -> Relation {
        Relation::new(t.attrs().clone(), rows.iter().map(|r| r.to_vec()).collect())
    }

    #[test]
    fn chain_query_on_tiny_instance() {
        let (t, _, _) = setup("ab, bc", "ac");
        // I = {(1,2,3), (4,2,5)} over abc: joining ab with bc through b=2
        // yields (a,c) ∈ {(1,3),(1,5),(4,3),(4,5)}.
        let i = instance(&t, &[&[1, 2, 3], &[4, 2, 5]]);
        let out = evaluate(&t, &i);
        assert_eq!(
            out.to_vecs(),
            vec![vec![1, 3], vec![1, 5], vec![4, 3], vec![4, 5]]
        );
    }

    #[test]
    fn empty_instance_empty_answer() {
        let (t, _, _) = setup("ab, bc", "ac");
        let empty = Relation::empty(t.attrs().clone());
        assert!(evaluate(&t, &empty).is_empty());
    }

    #[test]
    fn boolean_query_on_nonempty_instance() {
        let (t, _, _) = setup("ab, bc", "");
        let out = evaluate(&t, &instance(&t, &[&[1, 2, 3]]));
        assert_eq!(out, Relation::identity(), "π_∅ of a nonempty join");
    }

    #[test]
    fn cyclic_query_enforces_all_constraints() {
        let (t, _, _) = setup("ab, bc, ac", "abc");
        // Two tuples whose pairwise projections join freely but whose
        // triangle closes only on the original tuples.
        let i = instance(&t, &[&[0, 0, 1], &[1, 0, 0]]);
        let out = evaluate(&t, &i);
        assert_eq!(out, i);
    }

    #[test]
    fn agrees_with_relational_engine() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for (schema, x) in [
            ("ab, bc, cd", "ad"),
            ("ab, bc, ac", "ab"),
            ("abc, cde", "ae"),
            ("abg, bcg, acf, ad, de, ea", "abc"),
        ] {
            let (t, d, xs) = setup(schema, x);
            let u = d.attributes();
            for round in 0..5 {
                let data: Vec<u64> = (0..12 * u.len())
                    .map(|_| rng.random_range(0..4u64))
                    .collect();
                let i = Relation::from_row_major(u.clone(), 12, data);
                let state = gyo_relation::DbState::from_universal(&i, &d);
                let algebraic = state.eval_join_query(&xs);
                let symbolic = evaluate(&t, &i);
                assert_eq!(symbolic, algebraic, "case ({schema}, {x}), round {round}");
            }
        }
    }
}
