//! Tableau minimization by redundant-row removal.
//!
//! A tableau is *minimal* for its query if it is not equivalent to a tableau
//! with fewer rows. Two minimal tableaux for the same query are isomorphic
//! (Lemma 3.4), so the minimal tableau is unique up to isomorphism and can
//! be computed greedily: while some containment mapping from `T` into a
//! one-row-smaller subtableau exists, drop the row. Greedy removal cannot
//! get stuck early: if `T ≡ T_min` with `|T_min| < |T|`, composing the two
//! containment mappings gives an endomorphism of `T` whose image misses some
//! row `r`, and that endomorphism *is* a containment mapping into
//! `T − {r}`.

use crate::mapping::find_containment;
use crate::tableau::Tableau;

/// A minimization result.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The minimal subtableau.
    pub tableau: Tableau,
    /// Indices (into the input tableau's rows) of the kept rows, ascending.
    pub kept_rows: Vec<usize>,
}

/// Minimizes `t` by greedy redundant-row removal.
///
/// Runs the NP-hard containment search up to `O(n²)` times; fine for the
/// paper-scale and benchmark-scale tableaux this library targets.
pub fn minimize(t: &Tableau) -> Minimized {
    let mut kept: Vec<usize> = (0..t.row_count()).collect();
    let mut current = t.clone();
    'outer: loop {
        for drop_pos in 0..kept.len() {
            let mut smaller_keep: Vec<usize> = (0..kept.len()).collect();
            smaller_keep.remove(drop_pos);
            let candidate = current.subtableau(&smaller_keep);
            if find_containment(&current, &candidate).is_some() {
                kept.remove(drop_pos);
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    Minimized {
        tableau: current,
        kept_rows: kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{equivalent, isomorphic};
    use gyo_schema::{AttrSet, Catalog, DbSchema};

    fn tab(schema: &str, x: &str) -> Tableau {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(schema, &mut cat).unwrap();
        let xs = AttrSet::parse(x, &mut cat).unwrap();
        Tableau::standard(&d, &xs)
    }

    #[test]
    fn already_minimal_is_untouched() {
        let t = tab("ab, bc", "ac");
        let m = minimize(&t);
        assert_eq!(m.kept_rows, vec![0, 1]);
        assert_eq!(m.tableau, t);
    }

    #[test]
    fn duplicates_collapse() {
        let t = tab("ab, ab, ab", "ab");
        let m = minimize(&t);
        assert_eq!(m.tableau.row_count(), 1);
        assert!(equivalent(&t, &m.tableau));
    }

    #[test]
    fn subsumed_rows_fold_away() {
        // D = (abc, ab, bc), X = abc: rows ab and bc fold into abc.
        let t = tab("abc, ab, bc", "abc");
        let m = minimize(&t);
        assert_eq!(m.kept_rows, vec![0]);
        assert!(equivalent(&t, &m.tableau));
    }

    #[test]
    fn section6_example_minimizes_to_three_rows() {
        // §6: D = (abg, bcg, acf, ad, de, ea), X = abc. The rows for ad,
        // de, ea fold into abg's unique cells; rows abg, bcg, acf survive.
        let t = tab("abg, bcg, acf, ad, de, ea", "abc");
        let m = minimize(&t);
        assert_eq!(m.kept_rows, vec![0, 1, 2]);
    }

    #[test]
    fn minimization_is_canonical_up_to_isomorphism() {
        // Minimizing two differently-ordered presentations of the same
        // query yields isomorphic tableaux (Lemma 3.4).
        let t1 = minimize(&tab("abg, bcg, acf, ad, de, ea", "abc")).tableau;
        let t2 = minimize(&tab("ea, de, ad, acf, bcg, abg", "abc")).tableau;
        assert!(isomorphic(&t1, &t2));
    }

    #[test]
    fn cyclic_query_rows_all_survive() {
        let t = tab("ab, bc, ac", "abc");
        let m = minimize(&t);
        assert_eq!(m.tableau.row_count(), 3);
    }

    #[test]
    fn empty_tableau_minimizes_to_itself() {
        let t = Tableau::standard(&DbSchema::empty(), &AttrSet::empty());
        let m = minimize(&t);
        assert_eq!(m.tableau.row_count(), 0);
        assert!(m.kept_rows.is_empty());
    }

    #[test]
    fn minimal_result_is_equivalent_to_input() {
        for (d, x) in [
            ("ab, bc, cd, da", "ac"),
            ("abc, cde, ace, afe", "af"),
            ("ab, b, bc, c", "b"),
        ] {
            let t = tab(d, x);
            let m = minimize(&t);
            assert!(equivalent(&t, &m.tableau), "case ({d}, {x})");
        }
    }
}
