//! The tableau data structure and the standard tableau `Tab(D, X)`.

use std::fmt;

use gyo_schema::{AttrSet, Catalog, DbSchema, FxHashMap};

use crate::symbol::Symbol;

/// A tableau for a query with target `X` over attribute universe `attrs`.
///
/// Rows are symbol vectors in the column order of `attrs` (sorted attribute
/// ids). The summary is implicit: the distinguished variable of each `A ∈ X`
/// (the paper's item (iv)).
#[derive(Clone, PartialEq, Eq)]
pub struct Tableau {
    attrs: AttrSet,
    target: AttrSet,
    rows: Vec<Vec<Symbol>>,
}

impl Tableau {
    /// Builds the standard tableau `Tab(D, X)` (§3.4):
    ///
    /// * `(i, A) = Distinguished(A)` iff `A ∈ Rᵢ ∩ X`;
    /// * `(i, A) = Shared(A)` iff `A ∈ Rᵢ − X`;
    /// * all other entries are fresh unique nondistinguished variables.
    ///
    /// # Panics
    ///
    /// Panics if `X ⊄ U(D)` — the paper always takes `X ⊆ U(D)`.
    pub fn standard(d: &DbSchema, x: &AttrSet) -> Self {
        Self::standard_over(d, x, &d.attributes())
    }

    /// Builds the standard tableau of `(D, X)` over an enlarged attribute
    /// universe `U ⊇ U(D)`. Columns for attributes outside `U(D)` hold
    /// unique nondistinguished variables in every row, so freezing yields a
    /// canonical instance usable by queries over the larger universe
    /// (needed when comparing queries whose schemas span different
    /// attribute sets).
    ///
    /// # Panics
    ///
    /// Panics if `X ⊄ U` or `U(D) ⊄ U`.
    pub fn standard_over(d: &DbSchema, x: &AttrSet, universe: &AttrSet) -> Self {
        let attrs = universe.clone();
        assert!(
            d.attributes().is_subset(&attrs),
            "universe must contain U(D)"
        );
        assert!(x.is_subset(&attrs), "target X must be a subset of U(D)");
        let mut fresh = 0u32;
        let rows = d
            .iter()
            .map(|r| {
                attrs
                    .iter()
                    .map(|a| {
                        if r.contains(a) {
                            if x.contains(a) {
                                Symbol::Distinguished(a)
                            } else {
                                Symbol::Shared(a)
                            }
                        } else {
                            let s = Symbol::Unique(fresh);
                            fresh += 1;
                            s
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            attrs,
            target: x.clone(),
            rows,
        }
    }

    /// The column attributes (sorted).
    #[inline]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The summary target `X`.
    #[inline]
    pub fn target(&self) -> &AttrSet {
        &self.target
    }

    /// Number of rows.
    #[inline]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The rows (column order = `attrs` order).
    #[inline]
    pub fn rows(&self) -> &[Vec<Symbol>] {
        &self.rows
    }

    /// The subtableau keeping only `keep` (row indices, any order; the
    /// paper's subtableau has the same distinguished variables and a subset
    /// of the rows).
    pub fn subtableau(&self, keep: &[usize]) -> Tableau {
        Tableau {
            attrs: self.attrs.clone(),
            target: self.target.clone(),
            rows: keep.iter().map(|&i| self.rows[i].clone()).collect(),
        }
    }

    /// Counts how many rows each symbol occurs in (a symbol never repeats
    /// within a row because symbols are typed by column).
    pub fn occurrence_counts(&self) -> FxHashMap<Symbol, usize> {
        let mut counts = FxHashMap::default();
        for row in &self.rows {
            for &s in row {
                *counts.entry(s).or_insert(0) += 1;
            }
        }
        counts
    }

    /// **Freezes** the tableau into a canonical database instance: every
    /// distinct symbol becomes a distinct `u64` value and each row becomes a
    /// tuple over `attrs`. Returns the tuples (one flat row-major buffer,
    /// stride = `attrs.len()`, row order = tableau row order, duplicates
    /// kept) plus the frozen image of the summary row (the distinguished
    /// values, in `target` column order).
    ///
    /// Evaluating a query on the frozen instance implements the
    /// Chandra–Merlin containment test; see `gyo-query`.
    pub fn freeze(&self) -> FrozenTableau {
        let mut ids: FxHashMap<Symbol, u64> = FxHashMap::default();
        let mut next = 0u64;
        let mut value = |s: Symbol, ids: &mut FxHashMap<Symbol, u64>| -> u64 {
            *ids.entry(s).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        };
        let mut data = Vec::with_capacity(self.rows.len() * self.attrs.len());
        for row in &self.rows {
            data.extend(row.iter().map(|&s| value(s, &mut ids)));
        }
        let summary: Vec<u64> = self
            .target
            .iter()
            .map(|a| value(Symbol::Distinguished(a), &mut ids))
            .collect();
        FrozenTableau {
            attrs: self.attrs.clone(),
            target: self.target.clone(),
            rows: self.rows.len(),
            data,
            summary,
        }
    }

    /// Renders the tableau in a compact grid for diagnostics.
    pub fn display(&self, cat: &Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let header: Vec<String> = self.attrs.iter().map(|a| cat.name(a).to_owned()).collect();
        writeln!(out, "  {}", header.join("\t")).expect("write to string");
        let summary: Vec<String> = self
            .attrs
            .iter()
            .map(|a| {
                if self.target.contains(a) {
                    cat.name(a).to_owned()
                } else {
                    "·".to_owned()
                }
            })
            .collect();
        writeln!(out, "Σ {}", summary.join("\t")).expect("write to string");
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|s| s.display(cat)).collect();
            writeln!(out, "r{i} {}", cells.join("\t")).expect("write to string");
        }
        out
    }
}

impl fmt::Debug for Tableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tableau({} rows, {} cols, target {:?})",
            self.rows.len(),
            self.attrs.len(),
            self.target
        )
    }
}

/// The frozen (canonical) database instance of a tableau; see
/// [`Tableau::freeze`].
///
/// Tuples live in one flat row-major buffer (`data`), preserving the
/// tableau's row order *including duplicates* (distinct tableau rows can
/// freeze to equal tuples when `D` repeats a relation schema); converting
/// to a [`Relation`](gyo_relation::Relation) via
/// [`FrozenTableau::to_relation`] normalizes them away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenTableau {
    /// Column attributes of the tuples.
    pub attrs: AttrSet,
    /// The query target `X`.
    pub target: AttrSet,
    /// Number of frozen tuples (= tableau rows, duplicates included).
    /// Tracked explicitly because `data` alone cannot count rows when
    /// `attrs` is empty (zero-arity relation schemas are legal).
    pub rows: usize,
    /// Row-major tuple values: row `i` at `data[i·w..(i+1)·w]` for
    /// `w = attrs.len()` (column order = `attrs` order).
    pub data: Vec<u64>,
    /// The frozen summary row: distinguished values in `target` order.
    pub summary: Vec<u64>,
}

impl FrozenTableau {
    /// Number of frozen tuples (= tableau rows, duplicates included).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Frozen tuple `i` as a slice of the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.row_count()`.
    pub fn row(&self, i: usize) -> &[u64] {
        assert!(i < self.rows, "row {} out of range ({} rows)", i, self.rows);
        let w = self.attrs.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// The canonical instance as a normalized
    /// [`Relation`](gyo_relation::Relation) (sorted, deduplicated) over
    /// `attrs`.
    pub fn to_relation(&self) -> gyo_relation::Relation {
        gyo_relation::Relation::from_row_major(self.attrs.clone(), self.rows, self.data.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(schema: &str, x: &str) -> (Tableau, DbSchema, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(schema, &mut cat).unwrap();
        let xs = AttrSet::parse(x, &mut cat).unwrap();
        (Tableau::standard(&d, &xs), d, cat)
    }

    #[test]
    fn standard_tableau_symbols() {
        let (t, _, _) = setup("ab, bc", "a");
        // columns a, b, c; row 0 = (dist a, shared b, unique), row 1 =
        // (unique, shared b, shared c)
        assert_eq!(t.row_count(), 2);
        let r0 = &t.rows()[0];
        assert!(matches!(r0[0], Symbol::Distinguished(a) if a.0 == 0));
        assert!(matches!(r0[1], Symbol::Shared(b) if b.0 == 1));
        assert!(matches!(r0[2], Symbol::Unique(_)));
        let r1 = &t.rows()[1];
        assert!(matches!(r1[0], Symbol::Unique(_)));
        assert_eq!(r1[1], r0[1], "shared symbol is shared across rows");
        assert!(matches!(r1[2], Symbol::Shared(c) if c.0 == 2));
    }

    #[test]
    fn unique_symbols_are_unique() {
        let (t, _, _) = setup("ab, cd, ef", "");
        let counts = t.occurrence_counts();
        for (s, c) in counts {
            if matches!(s, Symbol::Unique(_)) {
                assert_eq!(c, 1, "{s:?} repeated");
            }
        }
    }

    #[test]
    #[should_panic(expected = "subset of U(D)")]
    fn target_outside_universe_panics() {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse("ab", &mut cat).unwrap();
        let x = AttrSet::parse("z", &mut cat).unwrap();
        Tableau::standard(&d, &x);
    }

    #[test]
    fn subtableau_keeps_selected_rows() {
        let (t, _, _) = setup("ab, bc, cd", "ad");
        let s = t.subtableau(&[0, 2]);
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.rows()[0], t.rows()[0]);
        assert_eq!(s.rows()[1], t.rows()[2]);
        assert_eq!(s.target(), t.target());
    }

    #[test]
    fn freeze_assigns_distinct_values_to_distinct_symbols() {
        let (t, _, _) = setup("ab, bc", "b");
        let f = t.freeze();
        assert_eq!(f.row_count(), 2);
        // shared/distinguished b is the same value in both rows
        assert_eq!(f.row(0)[1], f.row(1)[1]);
        // uniques differ from everything
        assert_ne!(f.row(0)[2], f.row(1)[2]);
        // summary carries the distinguished value of b
        assert_eq!(f.summary, vec![f.row(0)[1]]);
        // the canonical instance is the normalized relation over attrs
        let rel = f.to_relation();
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(f.row(0)) && rel.contains(f.row(1)));
    }

    #[test]
    fn display_contains_paper_notation() {
        let (t, _, cat) = setup("ab, bc", "a");
        let s = t.display(&cat);
        assert!(s.contains("a"), "{s}");
        assert!(s.contains("b'"), "{s}");
    }

    #[test]
    fn zero_arity_schema_freezes_to_identity() {
        // A zero-arity relation schema is legal; its tableau has one row
        // with no columns, and the canonical instance is {()} — the row
        // count must survive freezing even though `data` is empty.
        let d = DbSchema::new(vec![AttrSet::empty()]);
        let t = Tableau::standard(&d, &AttrSet::empty());
        assert_eq!(t.row_count(), 1);
        let f = t.freeze();
        assert_eq!(f.row_count(), 1);
        assert!(f.data.is_empty());
        assert_eq!(f.to_relation(), gyo_relation::Relation::identity());
    }

    #[test]
    fn empty_schema_tableau() {
        let d = DbSchema::empty();
        let t = Tableau::standard(&d, &AttrSet::empty());
        assert_eq!(t.row_count(), 0);
        let f = t.freeze();
        assert_eq!(f.row_count(), 0);
        assert!(f.data.is_empty());
        assert!(f.summary.is_empty());
    }
}
