//! Tableau symbols (variables).

use std::fmt;

use gyo_schema::{AttrId, Catalog};

/// A tableau variable. Symbols are *typed by column*: a symbol for attribute
/// `A` only ever appears in column `A`, mirroring the paper's convention of
/// writing the distinguished variable of attribute `a` as `a` and its shared
/// nondistinguished variable as `a'`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol {
    /// The distinguished variable of an attribute (`a`), used where
    /// `A ∈ Rᵢ ∩ X`; containment mappings must fix it.
    Distinguished(AttrId),
    /// The shared nondistinguished variable of an attribute (`a'`), used
    /// where `A ∈ Rᵢ − X`; all rows whose schema contains `A` share it.
    Shared(AttrId),
    /// A fresh nondistinguished variable appearing in exactly one cell
    /// (`bᵢ` in tableau notation), used where `A ∉ Rᵢ`. The payload is a
    /// tableau-unique counter.
    Unique(u32),
}

impl Symbol {
    /// Whether the symbol is distinguished.
    #[inline]
    pub fn is_distinguished(self) -> bool {
        matches!(self, Symbol::Distinguished(_))
    }

    /// Renders the symbol in the paper's notation (`a`, `a'`, `u17`).
    pub fn display(self, cat: &Catalog) -> String {
        match self {
            Symbol::Distinguished(a) => cat.name(a).to_owned(),
            Symbol::Shared(a) => format!("{}'", cat.name(a)),
            Symbol::Unique(n) => format!("u{n}"),
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Distinguished(a) => write!(f, "d{}", a.0),
            Symbol::Shared(a) => write!(f, "s{}", a.0),
            Symbol::Unique(n) => write!(f, "u{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_notation() {
        let cat = Catalog::alphabetic();
        assert_eq!(Symbol::Distinguished(AttrId(0)).display(&cat), "a");
        assert_eq!(Symbol::Shared(AttrId(1)).display(&cat), "b'");
        assert_eq!(Symbol::Unique(3).display(&cat), "u3");
    }

    #[test]
    fn distinguished_predicate() {
        assert!(Symbol::Distinguished(AttrId(0)).is_distinguished());
        assert!(!Symbol::Shared(AttrId(0)).is_distinguished());
        assert!(!Symbol::Unique(0).is_distinguished());
    }
}
