//! Canonical schemas `CS(D, X)` and canonical connections `CC(D, X)`
//! (§3.4), with the Theorem 3.3 fast paths.
//!
//! Given any tableau `T` for `(D, X)`, the **canonical schema** takes, per
//! row `rᵢ`, the attribute set
//! `Rᵢ = { A | (i,A) is distinguished, or (i,A) repeats in another row }`
//! and reduces the resulting schema. The **canonical connection**
//! `CC(D, X)` is the canonical schema of a *minimal* tableau for `(D, X)` —
//! well-defined because minimal tableaux are unique up to isomorphism
//! (Lemmas 3.3–3.4).
//!
//! Theorem 3.3 relates `CC` to GYO reductions:
//!
//! * (i) `CC(D, X) ≤ GR(D, X)` always;
//! * (ii) if `D` is a tree schema, `CC(D, X) = GR(D, X)`;
//! * (iii) if `U(GR(D, X)) ⊆ X`, then `CC(D, X) = GR(D, X)`.
//!
//! [`canonical_connection`] exploits (ii)/(iii) as fast paths and falls back
//! to tableau minimization; [`cc_via_minimization`] always minimizes, so the
//! two can be cross-checked.

use gyo_reduce::{gyo_reduce, is_tree_schema};
use gyo_schema::{AttrSet, DbSchema};

use crate::minimize::minimize;
use crate::symbol::Symbol;
use crate::tableau::Tableau;

/// The canonical schema `CS(T)` of a tableau: per-row distinguished or
/// repeated attributes, reduced.
pub fn canonical_schema(t: &Tableau) -> DbSchema {
    let counts = t.occurrence_counts();
    let rels: Vec<AttrSet> = t
        .rows()
        .iter()
        .map(|row| {
            AttrSet::from_iter(t.attrs().iter().zip(row.iter()).filter_map(|(a, &s)| {
                let keep = match s {
                    Symbol::Distinguished(_) => true,
                    Symbol::Shared(_) | Symbol::Unique(_) => counts[&s] >= 2,
                };
                keep.then_some(a)
            }))
        })
        .collect();
    DbSchema::new(rels).reduce()
}

/// `CC(D, X)` via explicit tableau minimization (the definition).
///
/// # Panics
///
/// Panics if `X ⊄ U(D)`.
pub fn cc_via_minimization(d: &DbSchema, x: &AttrSet) -> DbSchema {
    let t = Tableau::standard(d, x);
    canonical_schema(&minimize(&t).tableau)
}

/// `CC(D, X)`, using the Theorem 3.3 fast paths where they apply:
///
/// * `D` a tree schema ⟹ `CC(D, X) = GR(D, X)` (Thm 3.3(ii));
/// * `U(GR(D, X)) ⊆ X` ⟹ `CC(D, X) = GR(D, X)` (Thm 3.3(iii));
/// * otherwise tableau minimization.
///
/// # Panics
///
/// Panics if `X ⊄ U(D)`.
pub fn canonical_connection(d: &DbSchema, x: &AttrSet) -> DbSchema {
    assert!(
        x.is_subset(&d.attributes()),
        "target X must be a subset of U(D)"
    );
    let red = gyo_reduce(d, x);
    if is_tree_schema(d) || red.result.attributes().is_subset(x) {
        return normalize_gr(red.result);
    }
    cc_via_minimization(d, x)
}

/// `GR(D, X)` of a tree schema can be the degenerate `(∅)` (when `X = ∅`);
/// `CC` of the corresponding tableau is the reduction of per-row attribute
/// sets, which for a single all-unique row is also `(∅)`. No change is
/// needed beyond reduction — kept as a named function to document the
/// boundary.
fn normalize_gr(g: DbSchema) -> DbSchema {
    g.reduce()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyo_schema::Catalog;

    fn setup(schema: &str, x: &str) -> (DbSchema, AttrSet, Catalog) {
        let mut cat = Catalog::alphabetic();
        let d = DbSchema::parse(schema, &mut cat).unwrap();
        let xs = AttrSet::parse(x, &mut cat).unwrap();
        (d, xs, cat)
    }

    #[test]
    fn section6_example_cc() {
        // §6: D = (abg, bcg, acf, ad, de, ea), X = abc ⟹
        // CC(D, X) = (abg, bcg, ac).
        let (d, x, mut cat) = setup("abg, bcg, acf, ad, de, ea", "abc");
        let cc = canonical_connection(&d, &x);
        let expected = DbSchema::parse("abg, bcg, ac", &mut cat).unwrap();
        assert_eq!(cc, expected);
        assert_eq!(cc_via_minimization(&d, &x), expected);
    }

    #[test]
    fn tree_schema_fast_path_agrees_with_minimization() {
        for (s, xs) in [
            ("ab, bc, cd", "ad"),
            ("ab, bc, cd", "a"),
            ("abc, cde, ace, afe", "af"),
            ("abc, ab, bc", "abc"),
            ("ab, cd", "ac"),
        ] {
            let (d, x, _) = setup(s, xs);
            assert!(is_tree_schema(&d), "{s}");
            assert_eq!(
                canonical_connection(&d, &x),
                cc_via_minimization(&d, &x),
                "case ({s}, {xs})"
            );
        }
    }

    #[test]
    fn cyclic_schema_cc_equals_whole_ring() {
        // For an Aring with all attributes in X nothing can be removed.
        let (d, x, _) = setup("ab, bc, cd, da", "abcd");
        assert_eq!(canonical_connection(&d, &x), d);
    }

    #[test]
    fn theorem_3_3_i_cc_le_gr() {
        for (s, xs) in [
            ("abg, bcg, acf, ad, de, ea", "abc"),
            ("ab, bc, cd, da", "ac"),
            ("abc, cde, ace, afe", "ce"),
            ("ab, bc, ac", "ab"),
        ] {
            let (d, x, _) = setup(s, xs);
            let cc = canonical_connection(&d, &x);
            let g = gyo_reduce(&d, &x).result;
            assert!(cc.le(&g), "CC ≤ GR violated for ({s}, {xs})");
        }
    }

    #[test]
    fn theorem_3_3_iii_u_gr_inside_x() {
        // Aring, X = everything: U(GR) = abcd ⊆ X, so CC = GR without
        // minimizing.
        let (d, x, _) = setup("ab, bc, cd, da", "abcd");
        let g = gyo_reduce(&d, &x).result;
        assert!(g.attributes().is_subset(&x));
        assert_eq!(canonical_connection(&d, &x), g.reduce());
        assert_eq!(cc_via_minimization(&d, &x), g.reduce());
    }

    #[test]
    fn cc_is_reduced() {
        for (s, xs) in [
            ("abg, bcg, acf, ad, de, ea", "abc"),
            ("ab, ab, bc", "b"),
            ("ab, bc, cd, da", ""),
        ] {
            let (d, x, _) = setup(s, xs);
            assert!(canonical_connection(&d, &x).is_reduced(), "({s}, {xs})");
        }
    }

    #[test]
    fn lemma_3_5_cc_equality_iff_weak_equivalence() {
        // (D, X) ≡ (D', X) iff CC equal; spot-check with the §6 pruning:
        // dropping ad, de, ea preserves the query.
        let (d, x, mut cat) = setup("abg, bcg, acf, ad, de, ea", "abc");
        let d_pruned = DbSchema::parse("abg, bcg, acf", &mut cat).unwrap();
        assert_eq!(
            canonical_connection(&d, &x),
            canonical_connection(&d_pruned, &x)
        );
        // while dropping bcg changes it
        let d_broken = DbSchema::parse("abg, acf, ad, de, ea", &mut cat).unwrap();
        assert_ne!(
            canonical_connection(&d, &x),
            canonical_connection(&d_broken, &x)
        );
    }

    #[test]
    fn empty_target_on_tree_schema() {
        let (d, _, _) = setup("ab, bc", "");
        let cc = canonical_connection(&d, &AttrSet::empty());
        // GR(D, ∅) = (∅); CS of the 1-row all-unique minimal tableau is (∅).
        assert_eq!(cc.len(), 1);
        assert!(cc.rel(0).is_empty());
        assert_eq!(cc_via_minimization(&d, &AttrSet::empty()), cc);
    }

    #[test]
    fn canonical_schema_counts_repeats_not_kinds() {
        // A shared symbol occurring once (its attribute private to one
        // relation) is dropped from CS.
        let (d, x, cat) = setup("abg, bcg, acf", "abc");
        let t = Tableau::standard(&d, &x);
        let cs = canonical_schema(&t);
        // f is private to acf => row acf contributes ac only.
        let expected = DbSchema::parse("abg, bcg, ac", &mut cat.clone()).unwrap();
        assert_eq!(cs, expected);
    }
}
