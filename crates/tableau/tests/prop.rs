//! Property tests for tableau machinery: minimization laws, equivalence
//! structure, and the CS/CC laws of §3.4.

use gyo_reduce::is_tree_schema;
use gyo_schema::{AttrSet, DbSchema};
use gyo_tableau::{
    canonical_connection, canonical_schema, cc_via_minimization, equivalent, find_containment,
    isomorphic, minimize, Tableau,
};
use proptest::prelude::*;

fn schema() -> impl Strategy<Value = DbSchema> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..7, 1..4).prop_map(|v| AttrSet::from_raw(&v)),
        1..5,
    )
    .prop_map(DbSchema::new)
}

fn target_of(d: &DbSchema, k: usize) -> AttrSet {
    AttrSet::from_iter(d.attributes().iter().take(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Minimization is idempotent and produces an equivalent tableau.
    #[test]
    fn minimize_idempotent_and_equivalent(d in schema(), k in 0usize..3) {
        let x = target_of(&d, k);
        let t = Tableau::standard(&d, &x);
        let m1 = minimize(&t);
        prop_assert!(equivalent(&t, &m1.tableau));
        let m2 = minimize(&m1.tableau);
        prop_assert_eq!(m2.tableau.row_count(), m1.tableau.row_count());
        prop_assert!(isomorphic(&m1.tableau, &m2.tableau));
    }

    /// Lemma 3.4: two minimal tableaux for the same query are isomorphic,
    /// regardless of presentation order.
    #[test]
    fn minimal_tableaux_are_isomorphic(d in schema(), k in 0usize..3) {
        let x = target_of(&d, k);
        let t1 = minimize(&Tableau::standard(&d, &x)).tableau;
        let mut rels: Vec<AttrSet> = d.iter().cloned().collect();
        rels.reverse();
        let d2 = DbSchema::new(rels);
        let t2 = minimize(&Tableau::standard(&d2, &x)).tableau;
        prop_assert!(isomorphic(&t1, &t2));
    }

    /// The identity containment always exists; containment is reflexive
    /// and composition-closed on subtableaux chains.
    #[test]
    fn identity_containment_exists(d in schema(), k in 0usize..3) {
        let x = target_of(&d, k);
        let t = Tableau::standard(&d, &x);
        let m = find_containment(&t, &t);
        prop_assert!(m.is_some());
        let m = m.unwrap();
        // every row maps to a row with compatible distinguished cells
        prop_assert_eq!(m.row_map.len(), t.row_count());
    }

    /// CS of the full-target standard tableau is the reduction of D
    /// (every cell in Rᵢ is distinguished, everything else unique).
    #[test]
    fn cs_of_full_target_is_reduce(d in schema()) {
        let u = d.attributes();
        let t = Tableau::standard(&d, &u);
        prop_assert_eq!(canonical_schema(&t), d.reduce());
    }

    /// CC(D, U(D)) = reduce(D) — Theorem 3.3(iii) in its simplest clothes.
    #[test]
    fn cc_of_full_target_is_reduce(d in schema()) {
        let u = d.attributes();
        prop_assert_eq!(canonical_connection(&d, &u), d.reduce());
        prop_assert_eq!(cc_via_minimization(&d, &u), d.reduce());
    }

    /// The fast-path CC always agrees with the definitional CC.
    #[test]
    fn cc_fast_path_agrees(d in schema(), k in 0usize..4) {
        let x = target_of(&d, k);
        prop_assert_eq!(canonical_connection(&d, &x), cc_via_minimization(&d, &x));
    }

    /// CC is invariant under duplicating a relation (duplicates minimize
    /// away).
    #[test]
    fn cc_ignores_duplicates(d in schema(), k in 0usize..3) {
        let x = target_of(&d, k);
        let mut rels: Vec<AttrSet> = d.iter().cloned().collect();
        rels.push(rels[0].clone());
        let dup = DbSchema::new(rels);
        prop_assert_eq!(canonical_connection(&d, &x), canonical_connection(&dup, &x));
    }

    /// For tree schemas the minimal tableau has |GR(D, X)| rows
    /// (Theorem 3.3(ii) seen through row counts).
    #[test]
    fn tree_minimal_rows_equal_gr_size(d in schema(), k in 0usize..3) {
        if !is_tree_schema(&d) {
            return Ok(());
        }
        let x = target_of(&d, k);
        let rows = minimize(&Tableau::standard(&d, &x)).tableau.row_count();
        let g = gyo_reduce::gr(&d, &x);
        prop_assert_eq!(rows, g.len(), "D = {:?}, X = {:?}", d, x);
    }

    /// The Maier–Ullman step inside Theorem 3.3(i):
    /// `Tab(D, X) ≡ Tab(GR(D, X), X)` — GYO reduction preserves the query.
    #[test]
    fn gyo_reduction_preserves_tableau_equivalence(d in schema(), k in 0usize..3) {
        let x = target_of(&d, k);
        let g = gyo_reduce::gr(&d, &x);
        // Build both tableaux over the joint universe so columns align.
        let universe = d.attributes().union(&g.attributes());
        let t_d = Tableau::standard_over(&d, &x, &universe);
        let t_g = Tableau::standard_over(&g, &x, &universe);
        prop_assert!(equivalent(&t_d, &t_g), "D = {:?}, GR = {:?}, X = {:?}", d, g, x);
    }

    /// Frozen instances give distinct values to distinct symbols and the
    /// tuple count equals the row count.
    #[test]
    fn freeze_is_faithful(d in schema(), k in 0usize..3) {
        let x = target_of(&d, k);
        let t = Tableau::standard(&d, &x);
        let f = t.freeze();
        prop_assert_eq!(f.row_count(), t.row_count());
        prop_assert_eq!(f.summary.len(), x.len());
        // each column's values: shared symbols appear as equal values in
        // the rows whose schema holds the attribute
        for (c, a) in t.attrs().iter().enumerate() {
            let holders: Vec<usize> = (0..d.len()).filter(|&i| d.rel(i).contains(a)).collect();
            for w in holders.windows(2) {
                prop_assert_eq!(f.row(w[0])[c], f.row(w[1])[c]);
            }
        }
    }
}
