//! Offline stand-in for the subset of
//! [`criterion`](https://docs.rs/criterion) that the workspace's bench
//! targets use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal wall-clock harness with the same API: benches written
//! against real Criterion ([`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`]) compile and run unchanged.
//!
//! What you get per benchmark is a single line —
//! `group/function/param  time: [median ± spread]  (N samples × M iters)` —
//! computed from medians over `sample_size` samples after a warm-up phase.
//! No HTML reports and no statistical regression analysis; when a future PR
//! needs those, swapping this shim for the real crate is a manifest-only
//! change.
//!
//! **Baseline capture:** when the `GYO_BENCH_SAVE` environment variable
//! names a file, every result is also appended there as one JSON object per
//! line (`{"id": …, "median_ns": …, "samples": …, "iters": …}`) — the
//! format `BENCH_BASELINE.json` and the `bench_compare` binary in
//! `gyo-bench` consume. Use an **absolute** path: cargo runs each bench
//! binary with the package directory as its working directory. The
//! repository's `scripts/bench_baseline.sh` wraps this.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness: measurement settings plus a registry of results.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time spent running the routine untimed before sampling begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    ///
    /// The group starts from the parent's settings; overrides made through
    /// the group stay scoped to it, as in the real crate.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            settings: self.clone(),
            _parent: self,
            name: name.into(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().0;
        let settings = self.clone();
        run_one(&settings, &label, &mut f);
        self
    }
}

/// A named collection of benchmarks. Starts from the parent harness
/// settings; overrides stay scoped to the group.
pub struct BenchmarkGroup<'a> {
    // Held only to keep the parent borrowed while the group is alive,
    // matching the real crate's API shape.
    _parent: &'a mut Criterion,
    settings: Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    /// Override the measurement budget for the rest of this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Run `f` as the benchmark `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&self.settings, &label, &mut f);
        self
    }

    /// Run `f(bencher, input)` as the benchmark `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&self.settings, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group. (The real crate finalizes reports here; the shim has
    /// already printed each result line.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function name, a parameter
/// value, or both.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just a parameter value (for groups whose axis is one parameter).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Iterations to run in the current sample batch.
    iters: u64,
    /// Time the batch took; read back by the harness.
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `routine`.
    ///
    /// Return values are passed through [`black_box`] so the optimizer
    /// cannot delete the work, mirroring the real crate's contract.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Warm up, pick a batch size that fits the budget, take samples, report.
fn run_one(settings: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: also yields a first per-iteration estimate.
    let mut iters: u64 = 1;
    let warm_up_start = Instant::now();
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_up_start.elapsed() >= settings.warm_up_time {
            break b
                .elapsed
                .checked_div(iters as u32)
                .unwrap_or(Duration::ZERO);
        }
        iters = iters.saturating_mul(2).min(1 << 40);
    };

    // Batch size so that sample_size samples fill the measurement budget.
    let per_sample = settings.measurement_time.as_nanos() / settings.sample_size as u128;
    let batch = if per_iter.as_nanos() == 0 {
        iters.max(1)
    } else {
        ((per_sample / per_iter.as_nanos().max(1)) as u64).clamp(1, 1 << 40)
    };

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[samples.len() / 10];
    let hi = samples[samples.len() - 1 - samples.len() / 10];

    println!(
        "{label:<50} time: [{} {} {}]  ({} samples x {batch} iters)",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        settings.sample_size,
    );
    save_baseline_line(label, median, settings.sample_size, batch);
}

/// Appends the result to `$GYO_BENCH_SAVE` (one JSON object per line) when
/// the variable is set and nonempty. IO failures abort loudly — a silently
/// truncated baseline is worse than a failed capture run.
fn save_baseline_line(label: &str, median_ns: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("GYO_BENCH_SAVE") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("GYO_BENCH_SAVE: cannot open {path}: {e}"));
    writeln!(
        file,
        r#"{{"id":"{label}","median_ns":{median_ns:.1},"samples":{samples},"iters":{iters}}}"#
    )
    .unwrap_or_else(|e| panic!("GYO_BENCH_SAVE: cannot write {path}: {e}"));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a group runner, optionally with a custom
/// [`Criterion`] configuration — both real-crate forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main()` running the given [`criterion_group!`]s.
///
/// Cargo passes harness flags (`--bench`, filters) on the command line; the
/// shim accepts and ignores them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("chain", 100).0, "chain/100");
        assert_eq!(BenchmarkId::from_parameter("grid").0, "grid");
    }

    #[test]
    fn baseline_save_writes_flat_json_objects_and_is_off_by_default() {
        // One test (not two) because it mutates the process environment,
        // which would race against itself if split across test threads.
        std::env::remove_var("GYO_BENCH_SAVE");
        save_baseline_line("unsaved/id", 1.0, 2, 3); // inert without the var

        let path = std::env::temp_dir().join(format!(
            "gyo-criterion-shim-baseline-{}.jsonl",
            std::process::id()
        ));
        let path_str = path.to_str().expect("utf-8 temp path");
        std::env::set_var("GYO_BENCH_SAVE", path_str);
        save_baseline_line("group/fn/8", 1234.5678, 10, 42);
        save_baseline_line("group/fn/16", 99.0, 10, 7);
        std::env::remove_var("GYO_BENCH_SAVE");

        let content = std::fs::read_to_string(&path).expect("baseline file written");
        std::fs::remove_file(&path).ok();
        // Filter to this test's ids: a concurrently running bench test
        // could legitimately append its own lines while the var was set.
        let lines: Vec<&str> = content
            .lines()
            .filter(|l| l.contains(r#""id":"group/fn/"#))
            .collect();
        assert_eq!(lines.len(), 2, "{content}");
        assert!(
            lines[0].contains(r#""id":"group/fn/8""#) && lines[0].contains(r#""median_ns":1234.6"#),
            "{content}"
        );
        assert!(!content.contains("unsaved/id"));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn group_overrides_do_not_leak_to_parent() {
        let mut c = Criterion::default().sample_size(10);
        {
            let mut group = c.benchmark_group("scoped");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(1));
            assert_eq!(group.settings.sample_size, 3);
            group.finish();
        }
        assert_eq!(c.sample_size, 10, "group override leaked into parent");
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        assert!(ran);
    }
}
