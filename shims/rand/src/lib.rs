//! Offline stand-in for the subset of [`rand` 0.9](https://docs.rs/rand/0.9)
//! that this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny, dependency-free implementation of exactly the API surface the code
//! calls: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] and [`Rng::random_bool`]. Every RNG in the workspace
//! is seeded explicitly (tests and benches want reproducibility), so no
//! OS-entropy constructors are provided.
//!
//! The generator is SplitMix64 — statistically solid for test-workload
//! generation, *not* cryptographic, and `random_range` uses a plain modulo
//! (its bias is negligible for the small ranges used here). If the real
//! `rand` ever becomes installable, deleting `shims/rand` and pointing the
//! manifests at crates.io should be a drop-in swap.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x = rng.random_range(0..10u64);
//! assert!(x < 10);
//! let again = StdRng::seed_from_u64(42).random_range(0..10u64);
//! assert_eq!(x, again); // same seed, same stream
//! ```

#![warn(missing_docs)]

/// The raw source of randomness: a stream of `u64`s.
///
/// Mirrors `rand_core::RngCore`, reduced to the one method everything else
/// derives from.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only the explicit-seed constructor is offered — all
/// workspace call sites pin their seeds for reproducibility.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (matching `rand`'s `Rng: RngCore` extension-trait design, so
/// `R: Rng + ?Sized` bounds work unchanged).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} not in [0, 1]"
        );
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators ([`StdRng`](rngs::StdRng) only).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// The real `StdRng` is a ChaCha cipher; this stand-in keeps the name so
    /// call sites compile unchanged, and keeps the determinism contract:
    /// the stream is a pure function of the seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): the standard seeding
            // mixer; passes BigCrush when used as a generator.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Range-sampling support for [`Rng::random_range`].
pub mod distr {
    use super::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// Types usable as the argument of [`Rng::random_range`](super::Rng::random_range).
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "random_range: empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "random_range: empty range");
                    let span = (end as u128) - (start as u128) + 1;
                    start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_sample_range!(u8, u16, u32, u64, usize);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.random_range(3..17u32);
            assert_eq!(x, b.random_range(3..17u32));
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn unsized_rng_bound_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 100);
    }
}
