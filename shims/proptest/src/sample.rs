//! Sampling strategies: [`select`], mirroring `proptest::sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy drawing one element uniformly from a fixed pool (clone per
/// case). Mirrors the real crate's `sample::select` for `Vec` inputs.
///
/// # Panics
///
/// Panics (on first generation) if the pool is empty.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    Select { values }
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.values.is_empty(), "select requires a nonempty pool");
        let i = rand::Rng::random_range(rng, 0..self.values.len());
        self.values[i].clone()
    }
}
