//! `any::<T>()` — the canonical whole-domain strategy for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::RngCore;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy generating any value of `T`; see [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
