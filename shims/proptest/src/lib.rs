//! Offline stand-in for the subset of [`proptest`](https://docs.rs/proptest)
//! that this workspace's property suites use.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small random-testing harness exposing the same names the tests already
//! import: the [`proptest!`] macro (with `#![proptest_config(..)]` and
//! multiple `#[test]` functions whose arguments are drawn from strategies),
//! [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map` /
//! `prop_filter`, integer
//! ranges and tuples as strategies, [`collection::vec`], [`arbitrary::any`],
//! [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case index; cases are
//!   generated from a deterministic per-test seed, so every failure is
//!   reproducible by rerunning the same test binary.
//! * **Assertions panic** instead of returning `Err(TestCaseError)`; the
//!   test body still has `Result` type so `return Ok(());` works unchanged.
//! * `PROPTEST_CASES` (env var) caps the case count, like the real crate's
//!   `ProptestConfig` env override — CI uses it to trade coverage for time.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     // (in a test file this would also carry `#[test]`)
//!     fn reverse_is_involutive(v in proptest::collection::vec(0u32..100, 0..10)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(v, w);
//!     }
//! }
//! # reverse_is_involutive();
//! ```

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// One-line import for test files: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies producing one value type, mirroring
/// the real crate's `prop_oneof!`:
///
/// ```
/// use proptest::prelude::*;
/// let mixed = prop_oneof![
///     4 => 0u64..10,         // 80%: small
///     1 => 1_000u64..2_000,  // 20%: large
/// ];
/// # let _ = mixed;
/// ```
///
/// Arms without weights (`prop_oneof![a, b, c]`) are uniform.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($weight as u32, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declare property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(N))]   // optional
///     /// doc comments and other attributes are preserved
///     #[test]
///     fn name(arg in strategy_expr, ...) { body }
///     ...
/// }
/// ```
///
/// Each function becomes a plain `#[test]` that draws `cases` inputs from
/// the strategies and runs the body on each. The body is typed
/// `Result<(), TestCaseError>`, so `return Ok(());` exits one case early.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                    let run = |rng: &mut $crate::test_runner::TestRng|
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), rng);)+
                        { $body }
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    if let Err(e) = run(&mut rng) {
                        panic!("{test_path}: case {case}/{cases} rejected: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert a boolean condition inside a [`proptest!`] body.
///
/// Panics on failure (the real crate returns `Err`; see the crate docs for
/// why panicking is equivalent here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("prop_assert!({}) failed: {}", stringify!($cond), format_args!($($fmt)+));
        }
    };
}

/// Assert two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            panic!(
                "prop_assert_eq! failed\n  left: {:?}\n right: {:?}",
                l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            panic!(
                "prop_assert_eq! failed: {}\n  left: {:?}\n right: {:?}",
                format_args!($($fmt)+), l, r
            );
        }
    }};
}

/// Assert two values are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if *l == *r {
            panic!("prop_assert_ne! failed: both sides = {:?}", l);
        }
    }};
}
