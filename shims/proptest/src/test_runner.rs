//! Configuration, the per-case RNG, and the error type test bodies return.

use std::fmt;

/// Per-suite configuration; only the `cases` knob is implemented.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// `cases`, capped by the `PROPTEST_CASES` environment variable when set
    /// (CI uses this to bound runtime without touching the suites).
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case failed. Never constructed by the shim itself (assertions
/// panic), but test bodies are typed `Result<(), TestCaseError>` so the
/// `return Ok(());` early-exit idiom from the real crate keeps compiling.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic generator strategies draw from — the sibling rand
/// shim's `StdRng`, wrapped (mirroring real proptest, whose `TestRng` is
/// built on `rand`; one SplitMix64 implementation serves both shims).
///
/// Seeded from the test's module path and the case index, so (a) distinct
/// tests explore distinct streams, (b) case `k` of a given test is the same
/// on every run and machine — failures reproduce without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// RNG for case number `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        use rand::SeedableRng;
        // FNV-1a over the path, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(
                h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        use rand::Rng;
        self.inner.random_range(0..bound)
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
