//! Collection strategies ([`vec()`](fn@vec)) and the [`SizeRange`] conversions they
//! accept for their length argument.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A length distribution for collection strategies: uniform over
/// `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "collection size range is empty");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size` and elements
/// drawn independently from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
