//! The [`Strategy`] trait, its combinators, and the primitive strategies
//! (integer ranges, tuples, [`Just`]).

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// The real crate's strategies produce shrinkable *value trees*; this shim
/// generates plain values — same composition API, no shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Discard values for which `f` is false, retrying (bounded) until one
    /// passes. `whence` labels the filter in the panic raised if the filter
    /// rejects too often.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted union of boxed strategies over one value type — the engine
/// behind [`prop_oneof!`](crate::prop_oneof). Each case picks an arm with
/// probability proportional to its weight, then generates from it.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if no arm is given or every weight is zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            arms.iter().map(|&(w, _)| w as u64).sum::<u64>() > 0,
            "prop_oneof needs at least one arm with nonzero weight"
        );
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
        let mut pick = rand::Rng::random_range(rng, 0..total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick < total by construction");
    }
}

/// Boxes one [`prop_oneof!`](crate::prop_oneof) arm (a helper so the macro
/// can collect heterogeneous strategy types without naming them).
pub fn union_arm<T, S>(weight: u32, s: S) -> (u32, Box<dyn Strategy<Value = T>>)
where
    S: Strategy<Value = T> + 'static,
{
    (weight, Box::new(s))
}

// Sampling delegates to the rand shim so the range arithmetic (emptiness
// checks, modulo sampling) lives in exactly one place.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
