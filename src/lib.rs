//! Facade package for workspace-level examples and integration tests.
//!
//! The real library lives in [`gyo_core`]; this package simply re-exports it
//! so that `examples/` and `tests/` at the repository root can use one import.
pub use gyo_core::*;
