//! A schema-design assistant built on the paper's theory: feed it a
//! database schema and it reports everything the paper can tell you about
//! it — acyclicity class, cyclic cores, lossless sub-databases, γ-level
//! guarantees, and the cheapest fix for cyclicity.
//!
//! ```sh
//! cargo run --release --example schema_designer            # built-in demo
//! cargo run --release --example schema_designer "ab, bc, ac"
//! ```

use gyo::gamma::{acyclicity_report, is_gamma_acyclic, AcyclicityLevel};
use gyo::prelude::*;

fn main() {
    let arg = std::env::args().nth(1);
    let schemas: Vec<String> = match arg {
        Some(s) => vec![s],
        None => vec![
            "ab, bc, cd".to_owned(),                        // γ-acyclic chain
            "abc, ab, bc".to_owned(),                       // tree but γ-cyclic (§5.1)
            "ab, bc, cd, da".to_owned(),                    // the Aring
            "abce, bef, dif, cda, dab, bcd, cg".to_owned(), // Fig. 2c spirit
        ],
    };
    for s in schemas {
        report(&s);
        println!();
    }
}

fn report(s: &str) {
    let mut cat = Catalog::alphabetic();
    let d = match DbSchema::parse(s, &mut cat) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {s:?}: {e}");
            return;
        }
    };
    println!("schema D = {}", d.to_notation(&cat));
    println!(
        "  |D| = {}, U(D) = {}",
        d.len(),
        d.attributes().to_notation(&cat)
    );

    // --- acyclicity ladder ------------------------------------------------
    let kind = classify(&d);
    println!("  α-acyclic (tree schema): {}", kind == SchemaKind::Tree);
    let gamma = is_gamma_acyclic(&d);
    println!("  γ-acyclic              : {gamma}");
    let report = acyclicity_report(&d);
    let ladder = match report.level {
        AcyclicityLevel::Gamma => "γ-acyclic (strongest: every connected sub-database lossless)",
        AcyclicityLevel::Beta => "β-acyclic (hereditarily α, but some connected sub-join is lossy)",
        AcyclicityLevel::Alpha => "α-acyclic only (some sub-database is cyclic)",
        AcyclicityLevel::Cyclic => "cyclic",
    };
    println!("  ladder level           : {ladder}");

    match kind {
        SchemaKind::Tree => {
            let red = gyo_reduce(&d, &AttrSet::empty());
            let tree = gyo::join_tree_from_trace(&d, &red).expect("tree schema");
            println!("  a qual tree:");
            for &(u, v) in tree.edges() {
                println!(
                    "    {} — {}",
                    d.rel(u).to_notation(&cat),
                    d.rel(v).to_notation(&cat)
                );
            }
            if !gamma {
                if let Some(cycle) = find_weak_gamma_cycle(&d) {
                    let rels: Vec<String> = cycle
                        .rels
                        .iter()
                        .map(|&r| d.rel(r).to_notation(&cat))
                        .collect();
                    println!(
                        "  warning: weak γ-cycle through ({}) — some connected \
                         sub-database has a lossy join (Fagin)",
                        rels.join(", ")
                    );
                }
            } else {
                println!("  every connected sub-database has a lossless join (Cor. 5.3)");
            }
        }
        SchemaKind::Cyclic => {
            if let Some(w) = find_cyclic_core(&d) {
                println!(
                    "  cyclic core (Lemma 3.1): delete {} ⇒ {:?} {}",
                    w.deleted.to_notation(&cat),
                    w.kind,
                    w.core.to_notation(&cat)
                );
            }
            let fix = treeifying_relation(&d);
            println!(
                "  cheapest single-relation fix (Cor. 3.2): add {}",
                fix.to_notation(&cat)
            );
        }
    }

    // --- lossless sub-databases -------------------------------------------
    if d.len() <= 8 {
        println!("  lossless connected sub-databases (⋈D ⊨ ⋈D'):");
        let n = d.len();
        for mask in 1u32..(1 << n) {
            let nodes: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if nodes.len() < 2 || nodes.len() == n {
                continue;
            }
            if !d.project_rels(&nodes).is_connected() {
                continue;
            }
            if implies_lossless(&d, &nodes) {
                let names: Vec<String> =
                    nodes.iter().map(|&i| d.rel(i).to_notation(&cat)).collect();
                println!("    ({})", names.join(", "));
            }
        }
    }
}
