//! Query planning over UR databases, end to end: the §4/§6 strategies
//! compared on generated data with wall-clock timings.
//!
//! Strategies:
//!   1. monolithic join-then-project (the §2 definition);
//!   2. CC-pruned join (§6: drop irrelevant relations and columns);
//!   3. Yannakakis semijoin processing (tree schemas);
//!   4. treeification: add U(GR(D)) and semijoin (cyclic schemas, §4) —
//!      per call, and through `TreeifyEngine`'s cached plan (repeat calls
//!      pay only the data-dependent work).
//!
//! ```sh
//! cargo run --release --example query_planning
//! ```

use gyo::prelude::*;
use std::time::Instant;

fn time<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!(
        "  {:<28} {:>9.3} ms",
        label,
        start.elapsed().as_secs_f64() * 1e3
    );
    out
}

fn main() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2024);

    // ------------------------------------------------------------------
    // Scenario A: a tree schema — an 8-relation chain (e.g. a star-join
    // pipeline). Target: the two endpoint attributes.
    // ------------------------------------------------------------------
    println!("Scenario A: 5-relation chain, dense middle, selective dead end");
    // The textbook dangling-tuple catastrophe (§4's motivation for semijoin
    // preprocessing): four dense many-to-many relations whose monolithic
    // join grows multiplicatively, closed by a final relation that keeps
    // only one value. The full reducer kills the dangling tuples *before*
    // any join happens.
    let m = 16u64;
    let d = gyo_workloads::chain(5);
    let x = AttrSet::from_raw(&[0, 5]);
    let dense: Vec<Vec<u64>> = (0..m)
        .flat_map(|a| (0..m).map(move |b| vec![a, b]))
        .collect();
    let mut rels: Vec<Relation> = (0..4)
        .map(|k| Relation::new(d.rel(k).clone(), dense.clone()))
        .collect();
    rels.push(Relation::new(
        d.rel(4).clone(),
        (0..m).map(|y| vec![0, y]).collect(), // only a4 = 0 survives
    ));
    let state = DbState::new(&d, rels);

    let naive = time("monolithic join", || state.eval_join_query(&x));
    let yann = time("yannakakis (full reducer)", || {
        solve_tree_query(&d, &state, &x).expect("chain is a tree schema")
    });
    assert_eq!(naive, yann);
    println!("  -> {} answer tuples, identical\n", naive.len());

    // ------------------------------------------------------------------
    // Scenario B: the §6 schema with a long irrelevant tail.
    // ------------------------------------------------------------------
    println!("Scenario B: relevant core of 3 relations + 24-relation tail, 1200 rows");
    let (d, x) = pruning_family(24);
    let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 1200, 200_000);
    let state = DbState::from_universal(&i, &d);
    let q = JoinQuery::new(d.clone(), x.clone());

    let naive = time("monolithic join", || q.eval(&state));
    let pruned_q = prune_irrelevant(&d, &x);
    let pruned = time("CC-pruned join", || pruned_q.eval(&d, &state));
    assert_eq!(naive, pruned);
    println!(
        "  -> CC kept {}/{} relations; identical {}-tuple answers\n",
        pruned_q.schema.len(),
        d.len(),
        naive.len()
    );

    // ------------------------------------------------------------------
    // Scenario C: a cyclic core with a large acyclic fringe.
    // ------------------------------------------------------------------
    println!("Scenario C: 4-ring with 24 pendant relations, 1200 rows, mild fan-out");
    let d = ring_with_fringe(4, 24);
    let x = AttrSet::from_raw(&[0, 2]);
    // domain ~ 12x rows: every pendant join multiplies the monolithic
    // intermediate by ~1.09, while the tree solver's early projection keeps
    // its accumulators flat.
    let i = gyo_workloads::random_universal(&mut rng, &d.attributes(), 1200, 14_000);
    let state = DbState::from_universal(&i, &d);

    let naive = time("monolithic join", || state.eval_join_query(&x));
    let tre = time("treeified (Cor. 3.2 + semijoins)", || {
        solve_via_treeification(&d, &state, &x)
    });
    assert_eq!(naive, tre);
    let engine = TreeifyEngine::new();
    let warm = time("treeify engine (cold plan)", || {
        engine.answer(&d, &state, &x).expect("treeify is total")
    });
    assert_eq!(naive, warm);
    let cached = time("treeify engine (cached plan)", || {
        engine.answer(&d, &state, &x).expect("treeify is total")
    });
    assert_eq!(naive, cached);
    println!("  -> identical {}-tuple answers", naive.len());
    println!(
        "  -> treeifying relation: {} (the GYO residue)",
        treeifying_relation(&d).len()
    );
}

/// The §6 schema family (copied from the bench helpers to keep the example
/// self-contained): a 3-relation core sharing the target plus a hanging
/// path of irrelevant relations.
fn pruning_family(tail: usize) -> (DbSchema, AttrSet) {
    let mut rels = vec![
        AttrSet::from_raw(&[0, 1, 3]),
        AttrSet::from_raw(&[1, 2, 3]),
        AttrSet::from_raw(&[0, 2, 4]),
    ];
    let mut prev = 0u32;
    for t in 0..tail as u32 {
        let next = 5 + t;
        rels.push(AttrSet::from_iter([AttrId(prev), AttrId(next)]));
        prev = next;
    }
    (DbSchema::new(rels), AttrSet::from_raw(&[0, 1, 2]))
}

/// A ring of `n` relations with `pendants` tree-shaped appendages.
fn ring_with_fringe(n: usize, pendants: usize) -> DbSchema {
    let mut rels: Vec<AttrSet> = (0..n as u32)
        .map(|i| AttrSet::from_raw(&[i, (i + 1) % n as u32]))
        .collect();
    for p in 0..pendants as u32 {
        rels.push(AttrSet::from_raw(&[p % n as u32, n as u32 + p]));
    }
    DbSchema::new(rels)
}
