//! Fagin's acyclicity ladder, climbed live: γ ⊂ β ⊂ α ⊂ all schemas,
//! with one separating schema per rung and the witness that places it
//! there.
//!
//! ```sh
//! cargo run --release --example acyclicity_ladder
//! ```

use gyo::gamma::{acyclicity_report, AcyclicityLevel};
use gyo::prelude::*;

fn main() {
    let mut cat = Catalog::alphabetic();
    let rungs = [
        ("ab, bc, cd", AcyclicityLevel::Gamma, "the chain"),
        ("abc, ab, bc", AcyclicityLevel::Beta, "§5.1's example"),
        (
            "abc, ab, bc, ac",
            AcyclicityLevel::Alpha,
            "triangle with a roof",
        ),
        (
            "ab, bc, cd, da",
            AcyclicityLevel::Cyclic,
            "the Aring of size 4",
        ),
    ];
    println!("level   schema                 separating witness");
    println!("{:-<78}", "");
    for (s, expected, nickname) in rungs {
        let d = DbSchema::parse(s, &mut cat).unwrap();
        let r = acyclicity_report(&d);
        assert_eq!(r.level, expected);
        let witness = match r.level {
            AcyclicityLevel::Gamma => {
                "none needed — every connected sub-join is lossless (Cor. 5.3)".to_owned()
            }
            AcyclicityLevel::Beta => {
                let c = r.gamma_witness.expect("β-not-γ has a weak γ-cycle");
                let names: Vec<String> =
                    c.rels.iter().map(|&i| d.rel(i).to_notation(&cat)).collect();
                format!("weak γ-cycle through ({})", names.join(", "))
            }
            AcyclicityLevel::Alpha => {
                let v = r.beta_witness.expect("α-not-β has a cyclic subset");
                let names: Vec<String> = v.iter().map(|&i| d.rel(i).to_notation(&cat)).collect();
                format!("cyclic sub-schema ({})", names.join(", "))
            }
            AcyclicityLevel::Cyclic => {
                let w = r.cyclic_core.expect("Lemma 3.1 witness");
                format!("delete {} ⇒ {:?}", w.deleted.to_notation(&cat), w.kind)
            }
        };
        println!("{:<7?} {:<22} {}  [{nickname}]", r.level, s, witness);
    }

    println!();
    println!("Guarantees per level:");
    println!("  γ: every connected sub-database has a lossless join (Fagin via Cor. 5.3)");
    println!("  β: every sub-database is still a tree schema (hereditary α)");
    println!("  α: full reducers exist; ⋈D itself is lossless; Yannakakis applies");
    println!("  cyclic: joins-only processing needs CC(D, X); treeify via U(GR(D)) (Cor. 3.2)");
}
