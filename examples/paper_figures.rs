//! Regenerates every figure of the paper as text, from the library's own
//! computations — the figures are worked examples, so each one is
//! recomputed, not hard-coded.
//!
//! ```sh
//! cargo run --release --example paper_figures
//! ```

use gyo::gamma::cycles::{contract_cycle, shorten_path};
use gyo::gamma::violating_pair;
use gyo::prelude::*;
use gyo::reduce::cores::classify_core;
use gyo::GammaCycle;

fn main() {
    fig1();
    fig2();
    fig3();
    fig4();
    fig5();
    fig6();
    fig7();
    fig8();
}

fn parse(s: &str, cat: &mut Catalog) -> DbSchema {
    DbSchema::parse(s, cat).unwrap()
}

fn show_tree(d: &DbSchema, cat: &Catalog) {
    let red = gyo_reduce(d, &AttrSet::empty());
    match gyo::join_tree_from_trace(d, &red) {
        Some(t) => {
            for &(u, v) in t.edges() {
                println!(
                    "      {} — {}",
                    d.rel(u).to_notation(cat),
                    d.rel(v).to_notation(cat)
                );
            }
        }
        None => println!("      (cyclic: no qual tree)"),
    }
}

fn fig1() {
    println!("Fig. 1 — tree and cyclic schemas");
    let mut cat = Catalog::alphabetic();
    for s in ["ab, bc, cd", "ab, bc, ac", "abc, cde, ace, afe"] {
        let d = parse(s, &mut cat);
        println!(
            "    D = {:<28} type: {:?}",
            d.to_notation(&cat),
            classify(&d)
        );
        show_tree(&d, &cat);
    }
    println!();
}

fn fig2() {
    println!("Fig. 2 — Arings and Acliques");
    let mut cat = Catalog::alphabetic();
    let ring = parse("ab, bc, cd, da", &mut cat);
    let clique = parse("bcd, acd, abd, abc", &mut cat);
    println!(
        "    (a) {} : {:?}",
        ring.to_notation(&cat),
        classify_core(&ring)
    );
    println!(
        "    (b) {} : {:?}",
        clique.to_notation(&cat),
        classify_core(&clique)
    );
    let d = parse("abce, bef, dif, cda, dab, bcd, cg", &mut cat);
    println!("    (c) D = {}", d.to_notation(&cat));
    for xs in ["abgi", "efgi"] {
        let x = AttrSet::parse(xs, &mut cat).unwrap();
        let core = d.delete_attrs(&x).reduce();
        println!(
            "        delete {xs}, eliminate subsets ⇒ {} : {:?}",
            core.to_notation(&cat),
            classify_core(&core)
        );
    }
    println!();
}

fn fig3() {
    println!("Fig. 3 — composing containment mappings (Thm 5.2's device)");
    let mut cat = Catalog::alphabetic();
    let d = parse("abc, ab, bc", &mut cat);
    let x = AttrSet::parse("b", &mut cat).unwrap();
    let t = Tableau::standard(&d, &x);
    println!("    Tab(D, b):");
    for line in t.display(&cat).lines() {
        println!("      {line}");
    }
    let mid = t.subtableau(&[0, 1]);
    let small = t.subtableau(&[0]);
    let f = gyo::find_containment(&t, &mid).unwrap();
    let g = gyo::find_containment(&mid, &small).unwrap();
    let composed: Vec<usize> = f.row_map.iter().map(|&j| g.row_map[j]).collect();
    println!(
        "    h1: {:?},  h: {:?},  h∘h1: {:?}",
        f.row_map, g.row_map, composed
    );
    println!();
}

fn fig4() {
    println!("Fig. 4 — shortening a connecting path");
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, bc, acd, de", &mut cat);
    let path = vec![0, 1, 2, 3];
    let short = shorten_path(&d, &path);
    let names =
        |p: &[usize]| -> Vec<String> { p.iter().map(|&i| d.rel(i).to_notation(&cat)).collect() };
    println!("    before: {}", names(&path).join(" — "));
    println!(
        "    after : {}  (chord ab∩acd = a)",
        names(&short).join(" — ")
    );
    println!();
}

fn fig5() {
    println!("Fig. 5 — contracting a γ-cycle");
    let mut cat = Catalog::alphabetic();
    let d = parse("acd, ab, bc, cd", &mut cat);
    let cycle = GammaCycle {
        rels: vec![0, 1, 2, 3],
        attrs: vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)],
    };
    let show = |c: &GammaCycle| -> String {
        (0..c.len())
            .map(|i| {
                format!(
                    "{}, {}",
                    d.rel(c.rels[i]).to_notation(&cat),
                    cat.name(c.attrs[i])
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("    before: ({})", show(&cycle));
    let contracted = contract_cycle(&d, &cycle);
    println!("    after : ({})   [bc∩cd ⊆ cd∩acd]", show(&contracted));
    println!();
}

fn fig6() {
    println!("Fig. 6 — deleting R'₁∩R'ₘ does not disconnect the cycle path");
    let mut cat = Catalog::alphabetic();
    let d = parse("acd, ab, bc, cd", &mut cat);
    let (i, j) = violating_pair(&d).unwrap();
    let x = d.rel(i).intersect(d.rel(j));
    let deleted = d.delete_attrs(&x);
    println!(
        "    pair ({}, {}), X = {}",
        d.rel(i).to_notation(&cat),
        d.rel(j).to_notation(&cat),
        x.to_notation(&cat)
    );
    println!(
        "    after deletion: {} — residues stay connected: {}",
        deleted.to_notation(&cat),
        deleted
            .connected_components()
            .iter()
            .any(|c| c.contains(&i) && c.contains(&j))
    );
    println!();
}

fn fig7() {
    println!("Fig. 7 — cores survive pairwise intersection deletion");
    let mut cat = Catalog::alphabetic();
    for s in ["ab, bc, cd, da", "bcd, acd, abd, abc"] {
        let d = parse(s, &mut cat);
        let (i, j) = violating_pair(&d).unwrap();
        let x = d.rel(i).intersect(d.rel(j));
        println!(
            "    {}: deleting {} = {}∩{} leaves them connected",
            d.to_notation(&cat),
            x.to_notation(&cat),
            d.rel(i).to_notation(&cat),
            d.rel(j).to_notation(&cat)
        );
    }
    println!();
}

fn fig8() {
    println!("Fig. 8 — extending a subtree by one relation (γ-acyclic case)");
    let mut cat = Catalog::alphabetic();
    let d = parse("ab, abc, cd, ce", &mut cat);
    assert!(is_gamma_acyclic(&d));
    // grow connected subsets one relation at a time; each stays a subtree
    let mut nodes = vec![0usize];
    for &next in &[1usize, 2, 3] {
        nodes.push(next);
        let names: Vec<String> = nodes.iter().map(|&i| d.rel(i).to_notation(&cat)).collect();
        println!(
            "    D″ ∪ {{{}}} = ({}) — subtree: {}",
            d.rel(next).to_notation(&cat),
            names.join(", "),
            is_subtree(&d, &nodes)
        );
    }
    println!();
}
