//! Quickstart: classify schemas, reduce them, build join trees, compute
//! canonical connections, and run a query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gyo::prelude::*;
use gyo::reduce::GyoStep;

fn main() {
    let mut cat = Catalog::alphabetic();

    // --- 1. Tree or cyclic? (Fig. 1) -------------------------------------
    println!("== Classification (Fig. 1) ==");
    for s in ["ab, bc, cd", "ab, bc, ac", "abc, cde, ace, afe"] {
        let d = DbSchema::parse(s, &mut cat).unwrap();
        println!("  {:<24} {:?}", s, classify(&d));
    }

    // --- 2. A GYO reduction trace ----------------------------------------
    println!("\n== GYO reduction of (abc, cde, ace, afe) ==");
    let d = DbSchema::parse("abc, cde, ace, afe", &mut cat).unwrap();
    let red = gyo_reduce(&d, &AttrSet::empty());
    for step in &red.trace {
        match *step {
            GyoStep::DeleteAttr { attr, rel } => {
                println!("  delete isolated attribute {} from R{rel}", cat.name(attr));
            }
            GyoStep::RemoveSubset { removed, witness } => {
                println!("  eliminate R{removed} (subset of R{witness})");
            }
        }
    }
    println!("  result: {}", red.result.to_notation(&cat));

    // --- 3. The join tree the trace implies (Theorem 3.1) ----------------
    let tree = gyo::join_tree_from_trace(&d, &red).expect("tree schema");
    println!("\n== Join tree ==");
    for &(u, v) in tree.edges() {
        println!(
            "  {} — {}",
            d.rel(u).to_notation(&cat),
            d.rel(v).to_notation(&cat)
        );
    }

    // --- 4. Canonical connections prune joins (§6) ------------------------
    println!("\n== Canonical connection ==");
    let big = DbSchema::parse("abg, bcg, acf, ad, de, ea", &mut cat).unwrap();
    let x = AttrSet::parse("abc", &mut cat).unwrap();
    let cc = canonical_connection(&big, &x);
    println!(
        "  CC({}, {}) = {}",
        big.to_notation(&cat),
        x.to_notation(&cat),
        cc.to_notation(&cat)
    );

    // --- 5. Run the query both ways on real data -------------------------
    println!("\n== Executing (D, abc) on a random UR database ==");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let i = gyo_workloads::random_universal(&mut rng, &big.attributes(), 50, 4);
    let state = DbState::from_universal(&i, &big);
    let q = JoinQuery::new(big.clone(), x.clone());
    let full = q.eval(&state);
    let pruned = prune_irrelevant(&big, &x).eval(&big, &state);
    println!("  full join-project : {} tuples", full.len());
    println!("  CC-pruned         : {} tuples", pruned.len());
    assert_eq!(full, pruned, "Theorem 4.1 in action");
    println!("  identical answers — three of six relations were irrelevant.");
}
