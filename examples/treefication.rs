//! Theorem 4.2 live: fixed treefication is bin packing in disguise.
//!
//! Builds a bin packing instance, reduces it to a fixed-treefication
//! instance (disjoint Acliques), solves both sides, and maps the witnesses
//! back and forth.
//!
//! ```sh
//! cargo run --release --example treefication
//! ```

use gyo::prelude::*;
use gyo::treefy::{
    bin_packing_to_treefication, first_fit_decreasing, solve_aclique_treefication,
    solve_bin_packing, solve_treefication_exact, treefication_witness_to_packing, BinPacking,
};

fn main() {
    let inst = BinPacking::new(vec![3, 3, 4, 5], 2, 8);
    println!(
        "bin packing: items {:?}, K = {} bins, capacity B = {}",
        inst.sizes, inst.bins, inst.capacity
    );

    // --- direct solvers ----------------------------------------------------
    match solve_bin_packing(&inst) {
        Some(a) => println!("  exact solver : assignment {a:?}"),
        None => println!("  exact solver : infeasible"),
    }
    match first_fit_decreasing(&inst) {
        Some(a) => println!("  FFD heuristic: assignment {a:?}"),
        None => println!("  FFD heuristic: did not fit (not a proof of infeasibility)"),
    }

    // --- the Theorem 4.2 reduction ------------------------------------------
    let (d, blocks) = bin_packing_to_treefication(&inst);
    let cat = gyo_workloads::numbered_catalog(d.attributes().len());
    println!(
        "\nreduced schema D: {} relations over {} attributes",
        d.len(),
        d.attributes().len()
    );
    println!("  (one Aclique per item; all attribute blocks disjoint)");
    println!("  D is cyclic: {}", classify(&d) == SchemaKind::Cyclic);

    match solve_aclique_treefication(&d, inst.bins, inst.capacity).unwrap() {
        Some(added) => {
            println!("  treefication witness (added relations):");
            for r in &added {
                println!("    {} (|R'| = {})", r.to_notation(&cat), r.len());
            }
            let extended = added
                .iter()
                .fold(d.clone(), |acc, r| acc.with_rel(r.clone()));
            println!(
                "  D ∪ added is a tree schema: {}",
                is_tree_schema(&extended)
            );
            let back = treefication_witness_to_packing(&blocks, &added)
                .expect("witness covers every block");
            println!("  mapped back to bin assignment: {back:?}");
            assert!(inst.is_valid(&back));
        }
        None => println!("  treefication infeasible"),
    }

    // --- an infeasible sibling ----------------------------------------------
    let tight = BinPacking::new(vec![3, 3, 4, 5], 2, 7);
    let (d2, _) = bin_packing_to_treefication(&tight);
    let via_schema = solve_aclique_treefication(&d2, tight.bins, tight.capacity).unwrap();
    println!(
        "\nwith B = 7 instead: bin packing {} / treefication {}",
        if solve_bin_packing(&tight).is_some() {
            "feasible"
        } else {
            "infeasible"
        },
        if via_schema.is_some() {
            "feasible"
        } else {
            "infeasible"
        },
    );

    // --- the generic exact solver on a non-Aclique instance ------------------
    let mut cat2 = Catalog::alphabetic();
    let ring = DbSchema::parse("ab, bc, cd, da", &mut cat2).unwrap();
    println!("\ngeneric exact treefication on the 4-ring:");
    for (k, b) in [(1usize, 3u64), (1, 4), (2, 3)] {
        match solve_treefication_exact(&ring, k, b) {
            Some(added) => {
                let names: Vec<String> = added.iter().map(|r| r.to_notation(&cat2)).collect();
                println!("  K={k}, B={b}: add ({})", names.join(", "));
            }
            None => println!("  K={k}, B={b}: impossible"),
        }
    }
}
