#!/usr/bin/env bash
# Verify that every relative link/path reference in the given markdown files
# points at something that exists in the repository.
#
# Checks two classes of reference:
#   1. markdown links  [text](path)      — external URLs and #anchors skipped
#   2. backtick paths  `crates/...`, `docs/...`, `scripts/...`, `tests/...`,
#      `shims/...`, `examples/...`, `src/...` — the path prefixes this repo
#      uses when naming files in prose (an optional trailing :line or
#      in-path anchor is stripped)
#
# Usage: scripts/check_doc_links.sh [FILE...]   (default: docs/ARCHITECTURE.md README.md)
set -euo pipefail

cd "$(dirname "$0")/.."
files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(docs/ARCHITECTURE.md README.md)
fi

fail=0
# check SRC REF BASEDIR — BASEDIR is what relative REFs resolve against
# (the containing file's directory for markdown links, the repo root for
# backtick paths).
check() {
  local src="$1" ref="$2" base="$3"
  # strip anchors (#section) and :line suffixes
  local path="${ref%%#*}"
  path="${path%:*([0-9])}"
  [ -z "$path" ] && return 0
  if [ ! -e "$base/$path" ]; then
    echo "BROKEN: $src -> $ref"
    fail=1
  fi
}
shopt -s extglob

for f in "${files[@]}"; do
  if [ ! -f "$f" ]; then
    echo "BROKEN: missing input file $f"
    fail=1
    continue
  fi
  dir="$(dirname "$f")"
  # 1. markdown links (skip http(s), mailto, and pure anchors)
  while IFS= read -r ref; do
    case "$ref" in
      http://*|https://*|mailto:*|'#'*) ;;
      *) check "$f" "$ref" "$dir" ;;
    esac
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
  # 2. backtick-quoted repo paths
  while IFS= read -r ref; do
    check "$f" "$ref" "."
  done < <(grep -oE '`(crates|docs|scripts|tests|shims|examples|src)/[A-Za-z0-9_./:-]+`' "$f" \
           | tr -d '`')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check failed"
  exit 1
fi
echo "doc links OK (${files[*]})"
