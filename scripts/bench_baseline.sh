#!/usr/bin/env bash
# Capture a committed bench baseline.
#
# Runs the full `cargo bench` suite with the criterion shim's GYO_BENCH_SAVE
# hook enabled, writing one JSON object per bench id to the output file
# (default: BENCH_BASELINE.json at the repository root). Compare a later
# capture against it with:
#
#   cargo run --release -p gyo-bench --bin bench_compare -- \
#       BENCH_BASELINE.json current.json
#
# Usage: scripts/bench_baseline.sh [OUTPUT_FILE] [-- extra cargo bench args]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_BASELINE.json}"
shift || true
case "$out" in
  /*) abs="$out" ;;
  *) abs="$(pwd)/$out" ;;
esac

rm -f "$abs"
# Absolute path: cargo runs each bench binary from the package directory.
GYO_BENCH_SAVE="$abs" cargo bench "$@"
echo
echo "captured $(wc -l <"$abs") bench ids into $out"
